"""Numerical validation of the MLP's backpropagation.

The deep-learning workload is only a credible substrate if its gradients
are right; this test checks the analytic gradients used by the trainer
against central finite differences on the cross-entropy loss.
"""

import numpy as np
import pytest


def forward_loss(x, y, w1, b1, w2, b2):
    pre = x @ w1 + b1
    hid = np.maximum(pre, 0.0)
    logits = hid @ w2 + b2
    logits = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(logits)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(y)
    return -np.mean(np.log(probs[np.arange(n), y] + 1e-300)), (pre, hid, probs)


def analytic_grads(x, y, w1, b1, w2, b2):
    """The exact gradient computation used in MLPTrainer.train."""
    loss, (pre, hid, probs) = forward_loss(x, y, w1, b1, w2, b2)
    n = len(y)
    grad_logits = probs.copy()
    grad_logits[np.arange(n), y] -= 1.0
    grad_logits /= n
    g_w2 = hid.T @ grad_logits
    g_b2 = grad_logits.sum(axis=0)
    grad_hid = grad_logits @ w2.T
    grad_hid[pre <= 0.0] = 0.0
    g_w1 = x.T @ grad_hid
    g_b1 = grad_hid.sum(axis=0)
    return g_w1, g_b1, g_w2, g_b2


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(7)
    x = rng.normal(0, 1, size=(12, 6))
    y = rng.integers(0, 4, size=12)
    w1 = rng.normal(0, 0.5, size=(6, 5))
    b1 = rng.normal(0, 0.1, size=5)
    w2 = rng.normal(0, 0.5, size=(5, 4))
    b2 = rng.normal(0, 0.1, size=4)
    return x, y, w1, b1, w2, b2


def numeric_grad(param, index, eps, x, y, w1, b1, w2, b2):
    params = [w1.copy(), b1.copy(), w2.copy(), b2.copy()]
    params[param].flat[index] += eps
    plus, _ = forward_loss(x, y, *params)
    params[param].flat[index] -= 2 * eps
    minus, _ = forward_loss(x, y, *params)
    return (plus - minus) / (2 * eps)


@pytest.mark.parametrize("param", [0, 1, 2, 3])
def test_gradients_match_finite_differences(setup, param):
    x, y, w1, b1, w2, b2 = setup
    grads = analytic_grads(x, y, w1, b1, w2, b2)
    analytic = grads[param]
    rng = np.random.default_rng(param)
    for index in rng.choice(analytic.size, size=min(10, analytic.size), replace=False):
        numeric = numeric_grad(param, index, 1e-6, x, y, w1, b1, w2, b2)
        assert analytic.flat[index] == pytest.approx(numeric, abs=1e-5)


def test_training_improves_over_untrained(setup):
    """Epochs of the real trainer must beat the untrained model."""
    from repro.workloads.datagen import cifar_like
    from repro.workloads.deeplearning import MLPTrainer

    data = cifar_like(400, features=16, seed=1)
    train, val = data.split(0.2, seed=0)
    untrained = MLPTrainer(hidden=8, epochs=0, seed=2).train(
        train, val, "gaussian-0.1", 0.05, 0.9
    )
    trained = MLPTrainer(hidden=8, epochs=8, seed=2).train(
        train, val, "gaussian-0.1", 0.05, 0.9
    )
    assert trained.accuracy > untrained.accuracy
