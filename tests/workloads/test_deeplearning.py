"""Tests for the numpy MLP trainer and the deep-learning substrate."""

import numpy as np
import pytest

from repro.workloads.datagen import cifar_like
from repro.workloads.deeplearning import (
    INIT_STRATEGIES,
    LEARNING_RATES,
    MOMENTA,
    MLPTrainer,
    TrainedModel,
    accuracy_of_payload,
    init_names,
    preprocess_images,
)


@pytest.fixture(scope="module")
def data():
    return cifar_like(800, features=64, seed=11)


@pytest.fixture(scope="module")
def split(data):
    return data.split(0.25, seed=0)


class TestInitStrategies:
    def test_eight_strategies(self):
        assert len(INIT_STRATEGIES) == 8

    def test_gaussian_and_uniform_families(self):
        families = {fam for fam, _ in INIT_STRATEGIES.values()}
        assert families == {"gaussian", "uniform"}

    def test_paper_hyper_domains(self):
        assert LEARNING_RATES == (0.0001, 0.001, 0.005, 0.01)
        assert MOMENTA == (0.25, 0.5, 0.75, 0.9)


class TestTraining:
    def test_beats_random_guessing(self, split):
        train, val = split
        trainer = MLPTrainer(hidden=32, epochs=10, seed=1)
        model = trainer.train(train, val, "gaussian-0.1", 0.01, 0.9)
        assert model.accuracy > 0.3  # 10 classes -> random is 0.1

    def test_accuracy_recorded(self, split):
        train, val = split
        model = MLPTrainer(hidden=8, epochs=1).train(train, val, "uniform-0.1", 0.005, 0.5)
        assert 0.0 <= model.accuracy <= 1.0

    def test_deterministic(self, split):
        train, val = split
        a = MLPTrainer(hidden=8, epochs=1, seed=4).train(train, val, "gaussian-0.1", 0.005, 0.5)
        b = MLPTrainer(hidden=8, epochs=1, seed=4).train(train, val, "gaussian-0.1", 0.005, 0.5)
        assert a.accuracy == b.accuracy
        assert np.array_equal(a.weights1, b.weights1)

    def test_hyper_parameters_matter(self, split):
        """Different learning rates must produce different models —
        otherwise the explore/choose decision would be vacuous."""
        train, val = split
        trainer = MLPTrainer(hidden=16, epochs=1, seed=2)
        slow = trainer.train(train, val, "gaussian-0.1", 0.0001, 0.25)
        fast = trainer.train(train, val, "gaussian-0.1", 0.01, 0.9)
        assert slow.accuracy != fast.accuracy

    def test_init_matters(self, split):
        train, val = split
        trainer = MLPTrainer(hidden=16, epochs=1, seed=2)
        accs = {
            name: trainer.train(train, val, name, 0.005, 0.5).accuracy
            for name in list(INIT_STRATEGIES)[:4]
        }
        assert len(set(accs.values())) > 1

    def test_model_metadata(self, split):
        train, val = split
        model = MLPTrainer(hidden=8, epochs=1).train(train, val, "uniform-0.5", 0.001, 0.75)
        assert model.init == "uniform-0.5"
        assert model.learning_rate == 0.001
        assert model.momentum == 0.75


class TestAdapters:
    def test_accuracy_of_payload(self, split):
        train, val = split
        model = MLPTrainer(hidden=8, epochs=1).train(train, val, "gaussian-0.1", 0.005, 0.5)
        assert accuracy_of_payload([model]) == model.accuracy

    def test_accuracy_of_empty_payload(self):
        assert accuracy_of_payload([]) == 0.0

    def test_accuracy_filters_non_models(self, split):
        train, val = split
        model = MLPTrainer(hidden=8, epochs=1).train(train, val, "gaussian-0.1", 0.005, 0.5)
        assert accuracy_of_payload(["junk", model]) == model.accuracy

    def test_preprocess_standardises(self, data):
        out = preprocess_images(data)
        assert out.x.shape == data.x.shape
        # standardised then rescaled: mean near 128
        assert abs(out.x.mean() - 128.0) < 2.0

    def test_preprocess_accepts_list(self, data):
        out = preprocess_images([data])
        assert out.x.shape == data.x.shape
