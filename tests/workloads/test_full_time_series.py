"""Tests for the five-explorable time-series MDF (chained scopes)."""

import numpy as np
import pytest

from repro import Cluster, GB, KThreshold, MB, RatioEvaluator
from repro.engine import run_mdf
from repro.workloads import granularity_grid, oil_well_trace, time_series_full_mdf


@pytest.fixture(scope="module")
def trace():
    return oil_well_trace(8000)


class TestFullTimeSeries:
    def test_three_chained_scopes(self, trace):
        mdf = time_series_full_mdf(trace, granularity_grid(16), nominal_bytes=64 * MB)
        assert set(mdf.scopes) == {"explore-mask", "explore-mark", "explore-detect"}
        mdf.validate()

    def test_executes_and_detects(self, trace):
        mdf = time_series_full_mdf(trace, granularity_grid(16), nominal_bytes=64 * MB)
        result = run_mdf(mdf, Cluster(4, 1 * GB))
        assert result.decision_for("choose-mask").scores
        assert len(result.decision_for("choose-mark").kept) == 1
        assert len(result.decision_for("choose-detect").kept) == 1
        rows = np.asarray(result.output)
        assert rows.ndim == 2 and rows.shape[1] == 3

    def test_total_branch_count(self, trace):
        mdf = time_series_full_mdf(
            trace,
            granularity_grid(16),
            mark_windows=(3, 5),
            mark_magnitudes=(1.0, 2.0),
            durations=(500.0, 1000.0),
            nominal_bytes=64 * MB,
        )
        total = sum(len(s.branches) for s in mdf.scopes.values())
        assert total == 16 + 4 + 2

    def test_downstream_scopes_see_kept_composite(self, trace):
        """The marking scope runs once over the kept maskings' composite,
        not once per masking — the R2 reuse the chained structure buys."""
        mdf = time_series_full_mdf(trace, granularity_grid(16), nominal_bytes=64 * MB)
        result = run_mdf(mdf, Cluster(4, 1 * GB))
        kept_masks = len(result.decision_for("choose-mask").kept)
        assert kept_masks > 1  # several maskings survive
        marked_scores = result.decision_for("choose-mark").scores
        assert len(marked_scores) == 9  # 3x3 markings, not 9 * kept_masks

    def test_early_mask_choose_prunes(self, trace):
        mdf = time_series_full_mdf(
            trace,
            granularity_grid(16),
            mask_selection=KThreshold(2, 0.8, above=True),
            nominal_bytes=64 * MB,
        )
        result = run_mdf(mdf, Cluster(4, 1 * GB))
        decision = result.decision_for("choose-mask")
        assert len(decision.kept) == 2
        assert len(decision.pruned) >= 1

    def test_schedulers_agree(self, trace):
        mdf = time_series_full_mdf(trace, granularity_grid(16), nominal_bytes=64 * MB)
        bas = run_mdf(mdf, Cluster(4, 1 * GB), scheduler="bas")
        bfs = run_mdf(mdf, Cluster(4, 1 * GB), scheduler="bfs")
        # composite member order is scheduler-dependent; the row sets match
        rows_bas = sorted(map(tuple, np.asarray(bas.output)))
        rows_bfs = sorted(map(tuple, np.asarray(bfs.output)))
        assert rows_bas == rows_bfs
