"""Tests for the time-series operators: masking, marking, detection."""

import numpy as np
import pytest

from repro.workloads.datagen import oil_well_trace
from repro.workloads.timeseries import (
    TimeSeriesGrid,
    detect_sequences,
    granularity_grid,
    mark_events,
    mask_series,
)


class TestMasking:
    def test_flat_series_survives(self):
        mask = mask_series(4, 1.01)
        out = mask(np.full(100, 10.0))
        assert out.shape[0] == 97  # n - window + 1 positions

    def test_volatile_series_masked(self):
        rng = np.random.default_rng(0)
        mask = mask_series(4, 1.0001)
        noisy = 10.0 + rng.normal(0, 5.0, size=100)
        out = mask(noisy)
        assert out.shape[0] < 50

    def test_threshold_monotone(self):
        """Looser thresholds keep at least as many points — the property
        Fig. 3c's monotone evaluator relies on."""
        trace = oil_well_trace(5000)
        counts = [
            mask_series(4, t)(trace).shape[0] for t in (1.001, 1.01, 1.1, 1.5)
        ]
        assert counts == sorted(counts)

    def test_short_input(self):
        assert mask_series(5, 1.1)(np.array([1.0, 2.0])).shape == (0, 2)

    def test_output_rows_are_index_value(self):
        mask = mask_series(2, 2.0)
        out = mask(np.array([1.0, 1.0, 1.0, 1.0]))
        assert out[:, 0].tolist() == [1.0, 2.0, 3.0]
        assert out[:, 1].tolist() == [1.0, 1.0, 1.0]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            mask_series(1, 1.1)
        with pytest.raises(ValueError):
            mask_series(3, 0.5)

    def test_negative_values_handled(self):
        mask = mask_series(3, 1.5)
        out = mask(np.array([-5.0, -5.0, -5.0, -5.0]))
        assert out.shape[0] == 2  # flat series survives even below zero


class TestMarking:
    def test_step_change_marked(self):
        rows = np.column_stack([np.arange(20.0), np.r_[np.zeros(10), np.full(10, 8.0)]])
        marked = mark_events(2, 5.0)(rows)
        assert marked.shape[0] == 1
        assert marked[0, 0] == 10.0  # the step position

    def test_no_events_in_flat(self):
        rows = np.column_stack([np.arange(20.0), np.zeros(20)])
        assert mark_events(3, 1.0)(rows).shape[0] == 0

    def test_magnitude_threshold(self):
        rows = np.column_stack([np.arange(20.0), np.r_[np.zeros(10), np.full(10, 3.0)]])
        assert mark_events(2, 5.0)(rows).shape[0] == 0
        assert mark_events(2, 2.0)(rows).shape[0] == 1

    def test_empty_input(self):
        assert mark_events(3, 1.0)(np.empty((0, 2))).shape == (0, 2)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            mark_events(1, 1.0)


class TestDetection:
    def test_dense_run_detected(self):
        events = np.column_stack([np.arange(0, 50, 5.0), np.ones(10)])
        out = detect_sequences(duration=100.0, min_events=3)(events)
        assert out.shape[0] == 1
        start, end, count = out[0]
        assert count == 10

    def test_sparse_events_not_detected(self):
        events = np.column_stack([np.arange(0, 10_000, 1000.0), np.ones(10)])
        out = detect_sequences(duration=50.0, min_events=3)(events)
        assert out.shape[0] == 0

    def test_two_separate_sequences(self):
        idx = np.r_[np.arange(0, 30, 10.0), np.arange(5000, 5030, 10.0)]
        events = np.column_stack([idx, np.ones_like(idx)])
        out = detect_sequences(duration=100.0, min_events=3)(events)
        assert out.shape[0] == 2

    def test_empty(self):
        assert detect_sequences(10.0)(np.empty((0, 2))).shape == (0, 3)


class TestGrids:
    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_granularity_sizes(self, n):
        grid = granularity_grid(n)
        assert grid.num_branches == n

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            granularity_grid(20)

    def test_thresholds_span_paper_range(self):
        grid = granularity_grid(64)
        assert grid.thresholds[0] == pytest.approx(1.0001)
        assert grid.thresholds[-1] == pytest.approx(1.5)

    def test_windows_distinct(self):
        grid = granularity_grid(1024)
        assert len(set(grid.windows)) == 32
