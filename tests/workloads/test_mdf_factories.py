"""End-to-end tests for the ready-made workload MDFs (App. C listings)."""

import numpy as np
import pytest

from repro import Cluster, GB, MB
from repro.baselines import run_sequential, seep_mdf
from repro.engine import run_mdf
from repro.workloads import (
    DensityEstimate,
    MLPTrainer,
    TrainedModel,
    cifar_like,
    deep_learning_combinations,
    deep_learning_job,
    deep_learning_mdf,
    granularity_grid,
    kde_combinations,
    kde_job,
    kde_mdf,
    kde_scoped_mdf,
    normal_values,
    oil_well_trace,
    string_int_pairs,
    synthetic_combinations,
    synthetic_job,
    synthetic_mdf,
    time_series_combinations,
    time_series_job,
    time_series_mdf,
)

NOMINAL = 64 * MB


@pytest.fixture
def cluster():
    return Cluster(4, 1 * GB)


class TestKdeMdf:
    def test_structure(self):
        mdf = kde_mdf(normal_values(2000), nominal_bytes=NOMINAL)
        # one outer scope (preprocess) + two inner scopes (kernels)
        assert len(mdf.scopes) == 3
        mdf.validate()

    def test_executes_and_returns_estimate(self, cluster):
        mdf = kde_mdf(normal_values(4000), nominal_bytes=NOMINAL)
        result = run_mdf(mdf, cluster)
        estimate = result.output[0]
        assert isinstance(estimate, DensityEstimate)
        assert estimate.kernel in ("gaussian", "top-hat", "biweight", "triweight")

    def test_winner_close_to_truth(self, cluster):
        from repro.workloads import normal_pdf

        values = normal_values(8000)
        mdf = kde_mdf(values, nominal_bytes=NOMINAL)
        result = run_mdf(mdf, cluster)
        estimate = result.output[0]
        # the chosen estimate over standardised/normalised data is a real
        # density and scores finitely on its own grid
        assert np.all(np.isfinite(estimate.density))

    def test_combinations_count(self):
        combos = kde_combinations()
        assert len(combos) == 2 * 4 * 3

    def test_concrete_job(self, cluster):
        values = normal_values(3000)
        job = kde_job(values, kde_combinations()[0], nominal_bytes=NOMINAL)
        result = run_mdf(job, cluster)
        assert isinstance(result.output[0], DensityEstimate)


class TestScopedKdeMdf:
    def test_early_choose_prunes_thresholds(self, cluster):
        mdf = kde_scoped_mdf(normal_values(4000), nominal_bytes=NOMINAL)
        result = run_mdf(mdf, cluster)
        decision = result.decision_for("choose-outlier")
        # first-k threshold selection: one kept, the rest pruned/discarded
        assert len(decision.kept) == 1
        assert len(decision.pruned) >= 1

    def test_final_output_estimate(self, cluster):
        mdf = kde_scoped_mdf(normal_values(4000), nominal_bytes=NOMINAL)
        result = run_mdf(mdf, cluster)
        assert isinstance(result.output[0], DensityEstimate)


class TestTimeSeriesMdf:
    def test_structure(self):
        grid = granularity_grid(16)
        mdf = time_series_mdf(oil_well_trace(3000), grid, nominal_bytes=NOMINAL)
        assert len(mdf.scopes) == 1
        assert len(mdf.scopes["explore-mask"].branches) == 16

    def test_executes(self, cluster):
        grid = granularity_grid(16)
        trace = oil_well_trace(5000)
        mdf = time_series_mdf(trace, grid, nominal_bytes=NOMINAL)
        result = run_mdf(mdf, cluster)
        assert isinstance(result.output, np.ndarray)
        decision = result.decision_for("choose-mask")
        assert 0 < len(decision.kept) <= 16

    def test_concrete_jobs_match_family(self, cluster):
        grid = granularity_grid(16)
        combos = time_series_combinations(grid)
        assert len(combos) == 16
        job = time_series_job(oil_well_trace(2000), combos[0], grid, nominal_bytes=NOMINAL)
        result = run_mdf(job, cluster)
        assert result.output is not None


class TestDeepLearningMdf:
    @pytest.fixture(scope="class")
    def data(self):
        return cifar_like(400, features=32, seed=6)

    @pytest.fixture(scope="class")
    def trainer(self):
        return MLPTrainer(hidden=8, epochs=1, seed=1)

    def test_modes_path_counts(self, data, trainer):
        for mode, expected in (
            ("weights_only", 8),
            ("hyper_only", 16),
            ("exhaustive", 128),
        ):
            mdf = deep_learning_mdf(
                data, mode=mode, trainer=trainer, nominal_bytes=NOMINAL
            )
            total = sum(len(s.branches) for s in mdf.scopes.values())
            assert total == expected

    def test_early_choose_paths(self, data, trainer):
        mdf = deep_learning_mdf(
            data, mode="early_choose", trainer=trainer, nominal_bytes=NOMINAL
        )
        total = sum(len(s.branches) for s in mdf.scopes.values())
        assert total == 8 + 16

    def test_weights_only_executes(self, cluster, data, trainer):
        mdf = deep_learning_mdf(
            data, mode="weights_only", trainer=trainer, nominal_bytes=NOMINAL
        )
        result = run_mdf(mdf, cluster)
        model = result.output[0]
        assert isinstance(model, TrainedModel)

    def test_early_choose_propagates_winner_init(self, cluster, data, trainer):
        mdf = deep_learning_mdf(
            data, mode="early_choose", trainer=trainer, nominal_bytes=NOMINAL
        )
        result = run_mdf(mdf, cluster)
        weights_decision = result.decision_for("choose-weights")
        winner_scores = weights_decision.scores
        final = result.output[0]
        # the final model's init must be one the first stage explored
        assert final.init in set(list(__import__("repro.workloads", fromlist=["INIT_STRATEGIES"]).INIT_STRATEGIES))

    def test_unknown_mode(self, data, trainer):
        with pytest.raises(ValueError):
            deep_learning_mdf(data, mode="grid_search", trainer=trainer)

    def test_combination_counts(self):
        assert len(deep_learning_combinations("weights_only")) == 8
        assert len(deep_learning_combinations("hyper_only")) == 16
        assert len(deep_learning_combinations("exhaustive")) == 128
        assert len(deep_learning_combinations("early_choose")) == 128

    def test_concrete_job(self, cluster, data, trainer):
        combo = deep_learning_combinations("weights_only")[0]
        job = deep_learning_job(data, combo, trainer=trainer, nominal_bytes=NOMINAL)
        result = run_mdf(job, cluster)
        assert isinstance(result.output[0], TrainedModel)


class TestSyntheticMdf:
    def test_structure(self):
        mdf = synthetic_mdf(string_int_pairs(200), b1=3, b2=2, nominal_bytes=NOMINAL)
        assert len(mdf.scopes) == 1 + 3  # outer + one inner per outer branch

    def test_mdf_equals_best_job(self, cluster):
        pairs = string_int_pairs(300)
        mdf = synthetic_mdf(pairs, b1=2, b2=2, nominal_bytes=NOMINAL)
        mdf_result = seep_mdf(mdf, cluster)
        jobs = [
            synthetic_job(pairs, p, nominal_bytes=NOMINAL)
            for p in synthetic_combinations(2, 2)
        ]
        family = run_sequential(jobs, cluster)
        best = max(
            (sum(v for _, v in out) for out in family.outputs()),
        )
        assert sum(v for _, v in mdf_result.output) == best

    def test_work_parameter(self, cluster):
        pairs = string_int_pairs(100)
        light = synthetic_mdf(pairs, b1=2, b2=2, work=1, nominal_bytes=NOMINAL)
        heavy = synthetic_mdf(pairs, b1=2, b2=2, work=8, nominal_bytes=NOMINAL)
        t_light = run_mdf(light, cluster).completion_time
        t_heavy = run_mdf(heavy, Cluster(4, 1 * GB)).completion_time
        assert t_heavy > t_light
