"""Tests for outlier filtering, preprocessing, and the synthetic job."""

import numpy as np
import pytest

from repro.workloads.datagen import normal_values
from repro.workloads.outliers import sigma_filter, surviving_fraction
from repro.workloads.preprocess import normalize, preprocessor, standardize
from repro.workloads.synthetic import (
    DEFAULT_MULTIPLIERS,
    int_value,
    math_op,
    multipliers,
)


class TestSigmaFilter:
    def test_outliers_removed(self):
        data = np.r_[normal_values(1000, seed=1), [50.0, -50.0]]
        out = sigma_filter(3.0)(data)
        assert len(out) < len(data)
        assert np.abs(out).max() < 10.0

    def test_monotone_in_threshold(self):
        data = normal_values(5000)
        counts = [len(sigma_filter(t)(data)) for t in (0.5, 1.0, 2.0, 3.0)]
        assert counts == sorted(counts)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            sigma_filter(0.0)

    def test_constant_data_kept(self):
        data = np.full(100, 7.0)
        assert len(sigma_filter(1.0)(data)) == 100

    def test_empty(self):
        assert len(sigma_filter(1.0)(np.array([]))) == 0

    def test_surviving_fraction(self):
        frac = surviving_fraction(100)
        assert frac(list(range(50))) == 0.5


class TestPreprocess:
    def test_normalize_range(self):
        out = normalize(np.array([2.0, 4.0, 6.0]))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalize_constant(self):
        out = normalize(np.full(5, 3.0))
        assert np.all(out == 0.0)

    def test_standardize_moments(self):
        out = standardize(normal_values(10_000, mu=5, sigma=2))
        assert abs(out.mean()) < 0.01
        assert abs(out.std() - 1.0) < 0.01

    def test_standardize_constant(self):
        out = standardize(np.full(5, 3.0))
        assert np.all(out == 0.0)

    def test_empty(self):
        assert normalize(np.array([])).size == 0
        assert standardize(np.array([])).size == 0

    def test_factory(self):
        assert preprocessor("normalize") is normalize
        assert preprocessor("standardize") is standardize
        with pytest.raises(ValueError):
            preprocessor("whiten")


class TestSyntheticJob:
    def test_math_op_updates_values(self):
        op = math_op(10)
        out = op([("k", 5)])
        assert out == [("k", 57)]  # (5*10+7) % 1_000_003

    def test_work_repeats(self):
        once = math_op(10, work=1)([("k", 5)])
        twice = math_op(10, work=2)([("k", 5)])
        assert twice == math_op(10)(once)

    def test_keys_preserved(self):
        op = math_op(100)
        out = op([("a", 1), ("b", 2)])
        assert [k for k, _ in out] == ["a", "b"]

    def test_invalid_work(self):
        with pytest.raises(ValueError):
            math_op(10, work=0)

    def test_int_value_sum(self):
        assert int_value([("a", 1), ("b", 2)]) == 3.0

    def test_multipliers_extends_paper_domain(self):
        assert tuple(multipliers(4)) == DEFAULT_MULTIPLIERS
        longer = multipliers(10)
        assert len(longer) == 10
        assert len(set(longer)) == 10

    def test_multipliers_truncates(self):
        assert multipliers(2) == [10, 100]

    def test_multipliers_invalid(self):
        with pytest.raises(ValueError):
            multipliers(0)
