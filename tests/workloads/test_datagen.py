"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.workloads.datagen import (
    LabelledImages,
    cifar_like,
    normal_values,
    oil_well_trace,
    string_int_pairs,
)


class TestNormalValues:
    def test_shape_and_distribution(self):
        values = normal_values(50_000, mu=2.0, sigma=3.0, seed=1)
        assert values.shape == (50_000,)
        assert abs(values.mean() - 2.0) < 0.1
        assert abs(values.std() - 3.0) < 0.1

    def test_deterministic(self):
        assert np.array_equal(normal_values(100, seed=5), normal_values(100, seed=5))

    def test_seeds_differ(self):
        assert not np.array_equal(normal_values(100, seed=1), normal_values(100, seed=2))


class TestOilWellTrace:
    def test_length(self):
        assert oil_well_trace(5000).shape == (5000,)

    def test_contains_outlier_spikes(self):
        trace = oil_well_trace(20_000, seed=3)
        sigma = trace.std()
        mu = trace.mean()
        assert np.any(np.abs(trace - mu) > 4 * sigma)

    def test_baseline_magnitude(self):
        trace = oil_well_trace(10_000)
        assert 50 < np.median(trace) < 150

    def test_deterministic(self):
        assert np.array_equal(oil_well_trace(1000, seed=2), oil_well_trace(1000, seed=2))


class TestCifarLike:
    def test_shape(self):
        data = cifar_like(100, features=3072)
        assert data.x.shape == (100, 3072)
        assert data.y.shape == (100,)

    def test_pixel_range(self):
        data = cifar_like(200, features=64)
        assert data.x.min() >= 0.0 and data.x.max() <= 255.0

    def test_classes(self):
        data = cifar_like(500, num_classes=10, features=32)
        assert set(np.unique(data.y)) <= set(range(10))

    def test_classes_separable(self):
        """A nearest-centroid classifier must beat random guessing by far —
        otherwise hyper-parameter choices would not move accuracy."""
        data = cifar_like(1000, features=64, seed=9, class_separation=2.0)
        centroids = np.stack([data.x[data.y == c].mean(axis=0) for c in range(10)])
        dists = ((data.x[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == data.y).mean()
        assert acc > 0.5

    def test_split(self):
        data = cifar_like(100, features=16)
        train, val = data.split(0.2, seed=0)
        assert len(train) == 80 and len(val) == 20

    def test_split_into_concat_roundtrip(self):
        data = cifar_like(100, features=16)
        parts = data.split_into(3)
        assert sum(len(p) for p in parts) == 100
        merged = parts[0]
        for p in parts[1:]:
            merged = merged.concat_with(p)
        assert np.array_equal(merged.x, data.x)


class TestStringIntPairs:
    def test_structure(self):
        pairs = string_int_pairs(100)
        assert len(pairs) == 100
        assert all(isinstance(k, str) and isinstance(v, int) for k, v in pairs)

    def test_deterministic(self):
        assert string_int_pairs(50, seed=1) == string_int_pairs(50, seed=1)
