"""Tests for kernel density estimation (the data-profiling substrate)."""

import numpy as np
import pytest

from repro.workloads.datagen import normal_values
from repro.workloads.kde import (
    KERNELS,
    DensityEstimate,
    KernelDensityEstimator,
    kde_fit_payload,
    kernel_names,
    loglik_of_payload,
    mise_of_payload,
    normal_pdf,
)


class TestKernels:
    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_integrates_to_one(self, name):
        """Every kernel is a density: ∫K(u)du = 1."""
        u = np.linspace(-5, 5, 20_001)
        k = KERNELS[name](u)
        integral = np.trapezoid(k, u)
        assert integral == pytest.approx(1.0, abs=0.01)

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_nonnegative(self, name):
        u = np.linspace(-3, 3, 1001)
        assert (KERNELS[name](u) >= -1e-12).all()

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_symmetric(self, name):
        u = np.linspace(0.0, 2.0, 100)
        assert np.allclose(KERNELS[name](u), KERNELS[name](-u))


class TestEstimator:
    def test_recovers_normal_density(self):
        data = normal_values(20_000, seed=2)
        est = KernelDensityEstimator("gaussian", 0.3).fit(data)
        true = normal_pdf()(est.grid)
        assert est.mise(normal_pdf()) < 0.01
        assert np.max(np.abs(est.density - true)) < 0.1

    def test_density_integrates_to_one(self):
        data = normal_values(5000)
        est = KernelDensityEstimator("epanechnikov", 0.4).fit(data)
        dx = est.grid[1] - est.grid[0]
        assert np.sum(est.density) * dx == pytest.approx(1.0, abs=0.05)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            KernelDensityEstimator("sinc", 0.2)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            KernelDensityEstimator("gaussian", 0.0)

    def test_empty_data(self):
        est = KernelDensityEstimator().fit(np.array([]))
        assert est.sample_size == 0
        assert np.all(est.density == 0)

    def test_subsampling_bounded(self):
        est = KernelDensityEstimator(max_fit_sample=100).fit(normal_values(10_000))
        assert est.sample_size == 100

    def test_bandwidth_affects_smoothness(self):
        data = normal_values(3000)
        grid = np.linspace(-4, 4, 256)
        rough = KernelDensityEstimator("gaussian", 0.05).fit(data, grid)
        smooth = KernelDensityEstimator("gaussian", 1.0).fit(data, grid)
        assert np.var(np.diff(rough.density)) > np.var(np.diff(smooth.density))

    def test_deterministic(self):
        data = normal_values(5000)
        a = KernelDensityEstimator("gaussian", 0.2).fit(data)
        b = KernelDensityEstimator("gaussian", 0.2).fit(data)
        assert np.array_equal(a.density, b.density)


class TestDensityEstimate:
    def test_pdf_interpolation(self):
        est = DensityEstimate(
            np.array([0.0, 1.0]), np.array([1.0, 3.0]), "gaussian", 0.1, 10
        )
        assert est.pdf(np.array([0.5]))[0] == pytest.approx(2.0)

    def test_pdf_outside_grid_zero(self):
        est = DensityEstimate(
            np.array([0.0, 1.0]), np.array([1.0, 1.0]), "gaussian", 0.1, 10
        )
        assert est.pdf(np.array([-5.0, 5.0])).tolist() == [0.0, 0.0]

    def test_log_likelihood_prefers_good_fit(self):
        data = normal_values(10_000, seed=4)
        holdout = normal_values(500, seed=5)
        good = KernelDensityEstimator("gaussian", 0.3).fit(data)
        bad = KernelDensityEstimator("gaussian", 5.0).fit(data)
        assert good.log_likelihood(holdout) > bad.log_likelihood(holdout)

    def test_mise_prefers_good_fit(self):
        data = normal_values(10_000, seed=4)
        good = KernelDensityEstimator("gaussian", 0.3).fit(data)
        bad = KernelDensityEstimator("top-hat", 3.0).fit(data)
        assert good.mise(normal_pdf()) < bad.mise(normal_pdf())


class TestDataflowAdapters:
    def test_fit_payload(self):
        fit = kde_fit_payload("gaussian", 0.3)
        out = fit(normal_values(2000))
        assert len(out) == 1 and isinstance(out[0], DensityEstimate)

    def test_mise_evaluator_payload(self):
        fit = kde_fit_payload("gaussian", 0.3)
        estimates = fit(normal_values(5000))
        mise = mise_of_payload(normal_pdf())
        assert 0 <= mise(estimates) < 0.05

    def test_mise_empty_payload_inf(self):
        mise = mise_of_payload(normal_pdf())
        assert mise([]) == float("inf")

    def test_loglik_evaluator_payload(self):
        fit = kde_fit_payload("gaussian", 0.3)
        estimates = fit(normal_values(5000))
        loglik = loglik_of_payload(normal_values(200, seed=9))
        assert loglik(estimates) > -5.0

    def test_loglik_empty_payload(self):
        loglik = loglik_of_payload(np.array([0.0]))
        assert loglik([]) == float("-inf")
