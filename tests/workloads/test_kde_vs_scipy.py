"""Cross-check our KDE against scipy.stats.gaussian_kde.

A reproduction is only as credible as its substrates; the Gaussian-kernel
estimator must agree with SciPy's reference implementation when given the
same bandwidth.
"""

import numpy as np
import pytest
from scipy.stats import gaussian_kde

from repro.workloads.datagen import normal_values
from repro.workloads.kde import KernelDensityEstimator


@pytest.mark.parametrize("bandwidth", [0.2, 0.4, 0.8])
def test_gaussian_kde_matches_scipy(bandwidth):
    data = normal_values(3000, seed=21)
    ours = KernelDensityEstimator(
        "gaussian", bandwidth, grid_points=200, max_fit_sample=10_000
    ).fit(data)
    # scipy's bw_method scalar is a factor multiplied by the data std
    ref = gaussian_kde(data, bw_method=bandwidth / data.std(ddof=1))
    theirs = ref(ours.grid)
    assert np.max(np.abs(ours.density - theirs)) < 0.01


def test_gaussian_kde_matches_scipy_shifted_scaled():
    rng = np.random.default_rng(5)
    data = rng.normal(50.0, 12.0, size=4000)
    bandwidth = 4.0
    ours = KernelDensityEstimator(
        "gaussian", bandwidth, grid_points=300, max_fit_sample=10_000
    ).fit(data)
    ref = gaussian_kde(data, bw_method=bandwidth / data.std(ddof=1))
    theirs = ref(ours.grid)
    assert np.max(np.abs(ours.density - theirs)) < 0.005


def test_loglik_values_agree_with_scipy():
    """Held-out log-likelihoods match SciPy's per bandwidth."""
    data = normal_values(4000, seed=3)
    holdout = normal_values(400, seed=4)
    for bw in (0.1, 0.3, 2.0):
        ours = KernelDensityEstimator(
            "gaussian", bw, grid_points=400, max_fit_sample=10_000
        ).fit(data)
        ref = gaussian_kde(data, bw_method=bw / data.std(ddof=1))
        theirs = float(np.mean(np.log(np.maximum(ref(holdout), 1e-12))))
        assert ours.log_likelihood(holdout) == pytest.approx(theirs, abs=0.01)
