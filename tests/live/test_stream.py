"""StreamWriter byte-identity, the prefix property, and the follow reader."""

from __future__ import annotations

import io

import pytest

from repro import Cluster, GB, MB, run_mdf
from repro.live import StreamWriter
from repro.live.stream import follow_events, read_events
from repro.obs.bridge import diff_registries, registry_from_trace
from repro.trace import Trace

from ..conftest import build_filter_mdf, build_nested_mdf


class TestByteIdentity:
    def test_streamed_ndjson_equals_posthoc_export(self):
        buffer = io.StringIO()
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=buffer)
        assert buffer.getvalue() == result.events.to_jsonl()
        assert buffer.getvalue()  # non-empty

    def test_every_prefix_is_a_byte_prefix_of_the_final_jsonl(self):
        """Property: after each committed event, the stream so far is a
        byte-prefix of the final JSONL.  A checker subscriber registered
        *after* the StreamWriter observes the buffer post-write."""
        buffer = io.StringIO()
        writer = StreamWriter(buffer)
        prefixes = []
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        mdf = build_nested_mdf()
        mdf.validate()
        cluster.reset()
        writer.attach(cluster.trace)
        cluster.trace.subscribe(lambda e: prefixes.append(buffer.getvalue()))
        result = run_mdf(mdf, cluster, reset=False, live=False)
        final = result.events.to_jsonl()
        assert len(prefixes) == len(result.events.events)
        for prefix in prefixes:
            assert final.startswith(prefix)
        assert prefixes[-1] == final

    def test_stream_survives_memory_pressure_runs(self):
        """Eviction/spill-heavy traces stream byte-identically too."""
        buffer = io.StringIO()
        cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
        result = run_mdf(build_filter_mdf(), cluster, live=buffer)
        assert buffer.getvalue() == result.events.to_jsonl()

    def test_file_target_round_trips(self, tmp_path):
        path = tmp_path / "run.ndjson"
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=str(path))
        assert path.read_text() == result.events.to_jsonl()
        # the monitor owned the handle and closed it on detach
        assert result.live.stream.closed

    def test_bridge_parity_over_streamed_file(self):
        """registry_from_trace over the *streamed* NDJSON reconciles with
        the live registry exactly like the post-hoc trace does."""
        buffer = io.StringIO()
        cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
        run_mdf(build_filter_mdf(), cluster, live=buffer)
        rebuilt = registry_from_trace(Trace.from_jsonl(buffer.getvalue()))
        assert diff_registries(cluster.obs, rebuilt) == []


class TestStreamWriter:
    def make_event_trace(self, n=3):
        class FakeClock:
            now = 0.0

        trace = Trace(clock=FakeClock())
        for i in range(n):
            trace.emit("dataset_discarded", dataset=f"d{i}")
        return trace

    def test_counts_events_and_bytes(self):
        trace = self.make_event_trace()
        buffer = io.StringIO()
        writer = StreamWriter(buffer)
        for event in trace.events:
            writer(event)
        assert writer.events_written == 3
        assert writer.bytes_written == len(buffer.getvalue().encode())
        assert buffer.getvalue() == trace.to_jsonl()

    def test_caller_owned_handle_is_not_closed(self):
        buffer = io.StringIO()
        writer = StreamWriter(buffer)
        writer.close()
        assert writer.closed
        assert not buffer.closed  # caller keeps ownership

    def test_write_after_close_raises(self):
        writer = StreamWriter(io.StringIO())
        writer.close()
        with pytest.raises(ValueError):
            writer(self.make_event_trace(1).events[0])

    def test_attach_detach(self):
        class FakeClock:
            now = 0.0

        trace = Trace(clock=FakeClock())
        buffer = io.StringIO()
        writer = StreamWriter(buffer).attach(trace)
        trace.emit("dataset_discarded", dataset="a")
        assert writer.detach(trace) is True
        trace.emit("dataset_discarded", dataset="b")
        assert writer.events_written == 1
        assert writer.detach(trace) is False


class TestReaders:
    def test_read_events_round_trip(self):
        trace = TestStreamWriter().make_event_trace(4)
        events = list(read_events(trace.to_jsonl()))
        assert [e.seq for e in events] == [0, 1, 2, 3]
        assert [e.data["dataset"] for e in events] == ["d0", "d1", "d2", "d3"]

    def test_follow_skips_incomplete_lines(self, tmp_path):
        trace = TestStreamWriter().make_event_trace(2)
        lines = trace.to_jsonl().splitlines(keepends=True)
        path = tmp_path / "partial.ndjson"
        path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        events = list(follow_events(path, follow=False))
        assert len(events) == 1  # the torn second line is never parsed

    def test_follow_tails_until_idle_timeout(self, tmp_path):
        trace = TestStreamWriter().make_event_trace(3)
        lines = trace.to_jsonl().splitlines(keepends=True)
        path = tmp_path / "tail.ndjson"
        path.write_text(lines[0])

        wall = {"t": 0.0}
        appended = {"n": 1}

        def clock():
            return wall["t"]

        def sleep(seconds):
            wall["t"] += seconds
            # the "producer": one more line per poll until the file is done
            if appended["n"] < len(lines):
                with open(path, "a") as fh:
                    fh.write(lines[appended["n"]])
                appended["n"] += 1

        events = list(
            follow_events(
                path,
                follow=True,
                poll_interval=0.1,
                idle_timeout=0.3,
                sleep=sleep,
                clock=clock,
            )
        )
        assert [e.seq for e in events] == [0, 1, 2]
        assert wall["t"] >= 0.3  # terminated by idle timeout, not EOF
