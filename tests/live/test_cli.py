"""The ``python -m repro.live`` follow-mode dashboard CLI."""

from __future__ import annotations

import io
import json

from repro.live.__main__ import USAGE, main

from ..golden.regenerate import GOLDEN_FILES


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def golden_path():
    return str(GOLDEN_FILES["explore_choose"])


class TestBatchMode:
    def test_renders_final_dashboard_from_a_trace_file(self):
        code, output = run_cli([golden_path()])
        assert code == 0
        assert output.startswith("repro.live ")
        assert "stages" in output
        assert "eta n/a" in output  # trace-only: no plan, no ETA
        assert "pruned" in output  # the golden prunes branches

    def test_works_on_the_quickstart_golden(self):
        code, output = run_cli([str(GOLDEN_FILES["quickstart"])])
        assert code == 0
        assert "explore-threshold#0" in output

    def test_missing_file(self):
        code, output = run_cli(["/no/such/trace.ndjson"])
        assert code == 2
        assert "no such trace file" in output

    def test_no_args_prints_usage(self):
        code, output = run_cli([])
        assert code == 2
        assert output == USAGE

    def test_help(self):
        code, output = run_cli(["--help"])
        assert code == 0
        assert output == USAGE

    def test_bad_numeric_flag(self):
        import pytest

        with pytest.raises(SystemExit):
            run_cli(["--interval", "fast", golden_path()])


class TestFollowMode:
    def test_follow_terminates_on_idle_timeout(self, tmp_path):
        path = tmp_path / "static.ndjson"
        path.write_text(GOLDEN_FILES["quickstart"].read_text())
        code, output = run_cli(
            [
                "--follow",
                "--interval",
                "0.01",
                "--idle-timeout",
                "0.03",
                "--plain",
                str(path),
            ]
        )
        assert code == 0
        # plain mode appended at least one intermediate progress line
        # before the final dashboard
        assert output.count("stages") >= 2
        assert "repro.live " in output


class TestFailOnAlert:
    def write_retry_storm(self, tmp_path):
        """A minimal NDJSON stream whose retries trip the storm watchdog."""
        lines = []
        for seq, attempts in enumerate((1, 2, 3)):
            lines.append(
                json.dumps(
                    {
                        "seq": seq,
                        "t": 0.1 * seq,
                        "kind": "task_retried",
                        "data": {
                            "node": "worker-0",
                            "attempts": attempts,
                            "seconds": 0.05,
                        },
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        path = tmp_path / "storm.ndjson"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_alerts_reported_but_exit_zero_by_default(self, tmp_path):
        code, output = run_cli([self.write_retry_storm(tmp_path)])
        assert code == 0
        assert "1 alert(s) raised" in output
        assert "[retry_storm]" in output

    def test_fail_on_alert_exits_nonzero(self, tmp_path):
        code, output = run_cli(
            ["--fail-on-alert", self.write_retry_storm(tmp_path)]
        )
        assert code == 1

    def test_fail_on_alert_passes_clean_traces(self):
        code, _ = run_cli(["--fail-on-alert", golden_path()])
        assert code == 0
