"""LiveMonitor lifecycle, run_mdf wiring, the bench hook, and renderers."""

from __future__ import annotations

import io

import pytest

from repro import Cluster, GB, run_mdf
from repro.live import LiveMonitor, StreamWriter
from repro.live.hook import LiveHook, active_live_hook, set_live_hook
from repro.trace import Trace

from ..conftest import build_filter_mdf, build_nested_mdf


class TestRunMdfWiring:
    def test_monitoring_never_changes_the_trace(self):
        """The invariance contract: live=True produces byte-identical
        decisions to live=False."""
        mdf = build_filter_mdf()
        plain = run_mdf(
            mdf, Cluster(num_workers=4, mem_per_worker=1 * GB), live=False
        )
        live = run_mdf(
            mdf, Cluster(num_workers=4, mem_per_worker=1 * GB), live=True
        )
        assert live.events.to_jsonl() == plain.events.to_jsonl()
        assert live.completion_time == plain.completion_time

    def test_live_default_is_off(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster)
        assert result.live is None
        assert cluster.trace.subscribers == []

    def test_live_true_attaches_and_detaches_a_monitor(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=True)
        assert isinstance(result.live, LiveMonitor)
        assert not result.live.attached  # detached in the runner's finally
        assert cluster.trace.subscribers == []
        assert result.live.plan is not None

    def test_explicit_monitor_instance_is_used(self):
        buffer = io.StringIO()
        monitor = LiveMonitor(stream=buffer)
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=monitor)
        assert result.live is monitor
        assert buffer.getvalue() == result.events.to_jsonl()

    def test_detach_even_when_the_run_raises(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        monitor = LiveMonitor()
        with pytest.raises(Exception):
            run_mdf(build_filter_mdf(), cluster, scheduler="nope", live=monitor)
        assert not monitor.attached
        assert cluster.trace.subscribers == []


class TestLifecycle:
    def test_attach_twice_is_an_error(self):
        class FakeClock:
            now = 0.0

        trace = Trace(clock=FakeClock())
        monitor = LiveMonitor().attach(trace)
        with pytest.raises(RuntimeError):
            monitor.attach(trace)
        monitor.detach()

    def test_detach_is_idempotent(self):
        class FakeClock:
            now = 0.0

        trace = Trace(clock=FakeClock())
        monitor = LiveMonitor(stream=io.StringIO()).attach(trace)
        monitor.detach()
        monitor.detach()  # second call is a no-op
        assert trace.subscribers == []
        assert monitor.progress.finished

    def test_snapshot_before_attach_is_an_error(self):
        with pytest.raises(RuntimeError):
            LiveMonitor().snapshot()

    def test_catch_up_replay_preserves_byte_identity(self):
        """Attaching to a trace that already holds committed events (a
        warm ``reset=False`` continuation) replays them first, so the
        streamed file still equals the full export."""

        class FakeClock:
            now = 0.0

        trace = Trace(clock=FakeClock())
        for i in range(3):
            trace.emit("dataset_discarded", dataset=f"early-{i}")
        buffer = io.StringIO()
        monitor = LiveMonitor(stream=buffer).attach(trace)
        for i in range(2):
            trace.emit("dataset_discarded", dataset=f"late-{i}")
        monitor.detach()
        assert buffer.getvalue() == trace.to_jsonl()
        assert monitor.progress.events_seen == 5

    def test_warm_continuation_run_streams_the_whole_trace(self):
        """The engine-level version: run once, then a reset=False rerun
        with a monitor — its stream covers both runs' events."""
        mdf = build_filter_mdf()
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        run_mdf(mdf, cluster)
        buffer = io.StringIO()
        result = run_mdf(mdf, cluster, reset=False, live=buffer)
        assert buffer.getvalue() == result.events.to_jsonl()


class TestHook:
    def setup_method(self):
        set_live_hook(None)

    def teardown_method(self):
        set_live_hook(None)

    def test_hook_records_default_runs(self):
        hook = LiveHook()
        set_live_hook(hook)
        assert active_live_hook() is hook
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster)  # live=None
        assert len(hook.runs) == 1
        assert hook.runs[0].byte_identical
        assert hook.all_byte_identical
        assert hook.total_alerts() == 0
        assert result.live is hook.runs[0].monitor

    def test_explicit_live_false_beats_the_hook(self):
        hook = LiveHook()
        set_live_hook(hook)
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=False)
        assert hook.runs == []
        assert result.live is None

    def test_custom_factory_gets_a_stream(self):
        hook = LiveHook(make_monitor=lambda: LiveMonitor())
        monitor, buffer = hook.monitor_for_run()
        assert isinstance(monitor.stream, StreamWriter)


class TestRenderers:
    def run_monitored(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        return run_mdf(build_nested_mdf(), cluster, live=True)

    def test_progress_line_shape(self):
        result = self.run_monitored()
        line = result.live.progress_line()
        assert "stages" in line
        assert "done @" in line  # finished run renders completion, not ETA
        assert "kept" in line
        assert "0 alerts" in line

    def test_dashboard_lists_every_branch(self):
        result = self.run_monitored()
        board = result.live.dashboard()
        assert board.startswith("repro.live ")
        snap = result.live.snapshot()
        for branch_id in snap.branch_status:
            assert branch_id in board

    def test_dashboard_renders_alerts(self):
        from repro.live.monitor import render_dashboard
        from repro.live.watchdogs import Alert

        result = self.run_monitored()
        snap = result.live.snapshot()
        alert = Alert("stall", 1.0, "stream", "no event for 12.0 wall seconds")
        board = render_dashboard(snap, [alert])
        assert "alerts (1):" in board
        assert "[stall]" in board
