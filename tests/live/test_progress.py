"""Online progress/ETA estimator: exact convergence and monotone tightening.

The two acceptance properties from the live-telemetry issue:

* on every golden workload, the ETA at the final event equals the job's
  completion time to 1e-9 (the pending set is empty, ``now`` has caught
  up to the last ``finished`` timestamp);
* across a ``branch_pruned`` or ``choose_finalized`` event the ETA never
  grows — pruning removes modelled work without advancing the clock —
  and the estimate never references a pruned branch again.
"""

from __future__ import annotations

import pytest

from repro import Cluster, GB, MB
from repro.live import LivePlan, ProgressEstimator
from repro.live.hook import LiveHook, set_live_hook
from repro.trace import Trace

from ..conftest import build_filter_mdf
from ..golden.regenerate import (
    GOLDEN_FILES,
    RECORDERS,
    build_explore_choose_mdf,
)


@pytest.fixture
def live_hook():
    hook = LiveHook()
    set_live_hook(hook)
    yield hook
    set_live_hook(None)


def explore_choose_plan():
    """The LivePlan matching the explore_choose golden recording."""
    cluster = Cluster(num_workers=2, mem_per_worker=48 * MB)
    return LivePlan.from_mdf(
        build_explore_choose_mdf(), workers=2, cost_model=cluster.cost_model
    )


@pytest.mark.parametrize("name", sorted(RECORDERS))
class TestExactConvergence:
    def test_eta_equals_completion_time_at_final_event(self, name, live_hook):
        """Every golden workload, run under the live hook: the monitor's
        final ETA is the completion time, exactly."""
        result = RECORDERS[name]()
        monitor = result.live
        assert monitor is not None, "hooked run must carry its monitor"
        snap = monitor.snapshot()
        assert snap.eta is not None
        assert abs(snap.eta - result.completion_time) <= 1e-9
        assert snap.remaining_seconds == 0.0
        assert snap.critical_path_seconds == 0.0
        assert snap.fraction == 1.0
        # and the hooked stream stayed byte-identical to the export
        assert live_hook.all_byte_identical


class TestMonotoneTightening:
    def fold_with_trajectory(self):
        """Replay the explore_choose golden through a planned estimator,
        recording the ETA before/after every prune/finalize event."""
        plan = explore_choose_plan()
        estimator = ProgressEstimator(plan=plan)
        trace = Trace.load_jsonl(GOLDEN_FILES["explore_choose"])
        transitions = []
        for event in trace.events:
            if event.kind in ("branch_pruned", "choose_finalized"):
                before = estimator.eta
                estimator.on_event(event)
                transitions.append((event.kind, before, estimator.eta))
            else:
                estimator.on_event(event)
        return plan, estimator, trace, transitions

    def test_eta_shrinks_across_prunes_and_finalize(self):
        plan, estimator, trace, transitions = self.fold_with_trajectory()
        assert any(kind == "branch_pruned" for kind, _, _ in transitions)
        assert any(kind == "choose_finalized" for kind, _, _ in transitions)
        for kind, before, after in transitions:
            assert after <= before + 1e-9, (
                f"{kind} grew the ETA: {before} -> {after}"
            )

    def test_replayed_eta_matches_engine_completion_time(self):
        """Golden-file replay (events only, no engine state): the final
        ETA equals the completion time the engine itself reports."""
        plan, estimator, trace, _ = self.fold_with_trajectory()
        completion = RECORDERS["explore_choose"]().completion_time
        assert estimator.eta is not None
        assert abs(estimator.eta - completion) <= 1e-9
        assert estimator.remaining_seconds == 0.0

    def test_pruned_branches_never_referenced_again(self):
        plan = explore_choose_plan()
        estimator = ProgressEstimator(plan=plan)
        trace = Trace.load_jsonl(GOLDEN_FILES["explore_choose"])
        pruned = set()
        for event in trace.events:
            estimator.on_event(event)
            if event.kind == "branch_pruned":
                pruned.add(event.data["branch"])
            for branch in pruned:
                assert branch not in estimator.remaining_by_branch()
                assert estimator.branch_status[branch] == "pruned"
        assert pruned, "golden trace must contain prunes"
        # the stages of pruned branches left the pending universe for good
        pruned_stage_ids = set().union(
            *(plan.branch_stages[b] for b in pruned)
        )
        assert not pruned_stage_ids & set(estimator.pending_stage_ids())

    def test_pruned_stages_counted_but_not_completed(self):
        plan, estimator, trace, _ = self.fold_with_trajectory()
        assert estimator.pruned_stages
        assert not estimator.pruned_stages & estimator.completed
        snap = estimator.snapshot()
        assert snap.stages_total == len(plan.real_stage_ids)
        assert (
            snap.stages_completed
            == snap.stages_total - snap.stages_pruned
        )


class TestTraceOnlyMode:
    def test_no_plan_still_tracks_progress_without_eta(self):
        estimator = ProgressEstimator()  # what the CLI uses
        trace = Trace.load_jsonl(GOLDEN_FILES["explore_choose"])
        for event in trace.events:
            estimator.on_event(event)
        snap = estimator.snapshot()
        assert snap.eta is None
        assert snap.remaining_seconds is None
        assert snap.stages_total is None
        assert snap.fraction is None
        assert snap.stages_completed > 0
        assert snap.now > 0.0
        # branch lifecycle is learned from the events themselves
        counts = snap.branch_counts()
        assert counts["pruned"] > 0
        assert counts["kept"] == 1
        assert estimator.remaining_by_branch() == {}

    def test_mark_finished(self):
        estimator = ProgressEstimator()
        assert not estimator.snapshot().finished
        estimator.mark_finished()
        assert estimator.snapshot().finished


class TestCalibration:
    def test_calibration_reflects_observed_over_modelled(self):
        """After a monitored run the calibration is positive and the
        estimator saw walls for every estimated stage."""
        from repro import run_mdf

        mdf = build_filter_mdf()
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(mdf, cluster, live=True)
        progress = result.live.progress
        assert 0.0 < progress.calibration
        # observed clean-run walls land at or under the pessimistic model
        assert progress.calibration <= 1.0 + 1e-9

    def test_recovery_reruns_do_not_double_count(self):
        estimator = ProgressEstimator()
        event = Trace.from_jsonl(
            '{"data":{"branch":null,"ops":[],"overhead":0.0,'
            '"per_node_compute":{},"per_node_io":{},"stage":"stage-1",'
            '"started":0.0,"finished":1.0},"kind":"stage_completed",'
            '"seq":0,"t":0.0}\n'
        ).events[0]
        estimator.on_event(event)
        estimator.on_event(event)
        assert estimator.snapshot().stages_completed == 1
