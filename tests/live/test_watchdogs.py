"""Watchdogs: injected anomalies raise exactly the expected alerts,
clean runs raise none, and alerts land in the obs registry."""

from __future__ import annotations

from repro import (
    Cluster,
    EngineConfig,
    FailureInjector,
    GB,
    MetricsRegistry,
    SpeculationConfig,
    StragglerProfile,
    run_mdf,
)
from repro.live import LiveMonitor
from repro.live.watchdogs import (
    ALERT_KINDS,
    MemoryPressureWatchdog,
    RetryStormWatchdog,
    StallWatchdog,
    StragglerWatchdog,
    default_watchdogs,
)
from repro.trace import Trace

from ..conftest import build_filter_mdf, build_nested_mdf


def event(kind, t=0.0, seq=0, **data):
    """A hand-built TraceEvent (watchdogs fold plain events)."""

    class FakeClock:
        pass

    clock = FakeClock()
    clock.now = t
    trace = Trace(clock=clock, strict=True)
    return trace.emit(kind, **data)


class TestInjectedStraggler:
    def test_injected_slowdown_raises_exactly_one_straggler_alert(self):
        """A 20x slow node (speculation off, so nothing masks it) trips
        the plan-overrun detector — and nothing else."""
        config = EngineConfig(
            stragglers=StragglerProfile({"worker-0": 20.0}),
            speculation=SpeculationConfig(enabled=False),
        )
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(
            build_filter_mdf(), cluster, config=config, live=True
        )
        monitor = result.live
        assert monitor.alert_kinds() == {"straggler": 1}
        alert = monitor.alerts[0]
        assert alert.kind == "straggler"
        assert alert.details["wall"] > alert.details["serialized"]
        # the alert was counted in the cluster's obs registry
        assert cluster.obs.value("live_alerts", policy="straggler") == 1.0

    def test_clean_run_raises_nothing(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, live=True)
        assert result.live.alerts == []

    def test_clean_nested_run_raises_nothing(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_nested_mdf(), cluster, live=True)
        assert result.live.alerts == []

    def test_skew_alone_stays_under_the_serialized_bound(self):
        """The skew-proof bound: a wall of (workers x estimate) is NOT a
        straggler — only rate degradation beyond it is."""
        dog = StragglerWatchdog(plan=None, node_factor=None)
        # without a plan the overrun detector is inert
        dog(
            event(
                "stage_completed",
                t=1.0,
                stage="stage-1",
                ops=["op"],
                branch=None,
                started=0.0,
                finished=1.0,
                overhead=0.0,
                compute=0.0,
                io=0.0,
                network=0.0,
                per_node_io={},
                per_node_compute={},
            )
        )
        assert dog.alerts == []


class TestInjectedRetryStorm:
    def test_injected_task_failures_raise_exactly_retry_storm(self):
        config = EngineConfig(
            failures=FailureInjector.task_failures([(1, "worker-1", 3)])
        )
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(
            build_filter_mdf(), cluster, config=config, live=True
        )
        monitor = result.live
        assert set(monitor.alert_kinds()) == {"retry_storm"}
        assert all(a.subject == "worker-1" for a in monitor.alerts)
        # recovery is costed, the estimator still converges exactly
        snap = monitor.snapshot()
        assert abs(snap.eta - result.completion_time) <= 1e-9

    def test_threshold_fires_once_per_node(self):
        dog = RetryStormWatchdog(threshold=3)
        for attempts in (1, 2, 3, 4):
            dog(event("task_retried", node="w0", attempts=attempts, seconds=0.1))
        assert len(dog.alerts) == 1
        assert dog.alerts[0].details["attempts"] == 3.0

    def test_exhausted_budget_always_fires(self):
        dog = RetryStormWatchdog(threshold=99)
        dog(event("task_retries_exhausted", node="w3", attempts=4, max_retries=3))
        assert [a.kind for a in dog.alerts] == ["retry_storm"]
        assert dog.alerts[0].subject == "w3"


class TestMemoryPressure:
    def spill(self, t, node="w0"):
        return event(
            "partition_evicted",
            t=t,
            node=node,
            dataset="d",
            index=0,
            nbytes=1,
            spilled=True,
            policy="amm",
            alpha=0.5,
            ranking=[],
        )

    def test_spill_burst_raises_then_cools_down(self):
        dog = MemoryPressureWatchdog(window=0.5, threshold=4, cooldown=1.0)
        for i in range(4):
            dog(self.spill(t=0.1 * i))
        assert len(dog.alerts) == 1  # threshold hit
        dog(self.spill(t=0.45))
        assert len(dog.alerts) == 1  # muted during cooldown
        for i in range(4):
            dog(self.spill(t=1.5 + 0.1 * i))
        assert len(dog.alerts) == 2  # a second storm after cooldown

    def test_in_memory_evictions_are_not_pressure(self):
        dog = MemoryPressureWatchdog(window=0.5, threshold=1)
        dog(
            event(
                "partition_evicted",
                node="w0",
                dataset="d",
                index=0,
                nbytes=1,
                spilled=False,
                policy="amm",
                alpha=0.5,
                ranking=[],
            )
        )
        assert dog.alerts == []


class TestStall:
    def test_silence_raises_once_per_period(self):
        wall = {"t": 0.0}
        dog = StallWatchdog(threshold_seconds=10.0, clock=lambda: wall["t"])
        assert dog.poll() is None
        wall["t"] = 11.0
        alert = dog.poll()
        assert alert is not None and alert.kind == "stall"
        assert dog.poll() is None  # disarmed until a new event
        dog(event("dataset_discarded", t=1.0, dataset="d"))
        wall["t"] = 30.0
        assert dog.poll() is not None  # re-armed by the event

    def test_finished_stream_cannot_stall(self):
        wall = {"t": 0.0}
        dog = StallWatchdog(threshold_seconds=1.0, clock=lambda: wall["t"])
        dog.mark_finished()
        wall["t"] = 100.0
        assert dog.poll() is None


class TestRegistryAccounting:
    def test_alert_counts_by_kind(self):
        registry = MetricsRegistry()
        dog = RetryStormWatchdog(registry=registry, threshold=1)
        dog(event("task_retried", node="w0", attempts=1, seconds=0.1))
        dog(event("task_retried", node="w1", attempts=1, seconds=0.1))
        assert registry.value("live_alerts", policy="retry_storm") == 2.0

    def test_default_set_excludes_stall(self):
        dogs = default_watchdogs()
        kinds = {d.kind for d in dogs}
        assert kinds == {"straggler", "memory_pressure", "retry_storm"}
        assert set(kinds) < set(ALERT_KINDS)


class TestDetachedMonitorWatchdogs:
    def test_explicit_watchdog_list_is_used_verbatim(self):
        dog = RetryStormWatchdog(threshold=1)
        monitor = LiveMonitor(watchdogs=[dog])
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        run_mdf(build_filter_mdf(), cluster, live=monitor)
        assert monitor.watchdogs == [dog]
        assert dog.registry is cluster.obs  # wired at attach time
