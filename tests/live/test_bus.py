"""The trace subscriber bus: ordering, isolation, and the emit contract."""

from __future__ import annotations

import pytest

from repro import Cluster, GB, run_mdf
from repro.trace import Trace, TraceEvent

from ..conftest import build_filter_mdf


def make_trace():
    """A standalone strict trace with a manual clock."""

    class FakeClock:
        now = 0.0

    return Trace(clock=FakeClock())


def emit_read(trace, name="d0"):
    return trace.emit("dataset_discarded", dataset=name)


class TestSubscription:
    def test_subscriber_sees_committed_events_in_order(self):
        trace = make_trace()
        seen = []
        trace.subscribe(seen.append)
        for i in range(5):
            emit_read(trace, name=f"d{i}")
        assert seen == trace.events
        assert [e.data["dataset"] for e in seen] == [f"d{i}" for i in range(5)]

    def test_subscribers_run_in_registration_order(self):
        trace = make_trace()
        calls = []
        trace.subscribe(lambda e: calls.append("first"))
        trace.subscribe(lambda e: calls.append("second"))
        emit_read(trace)
        assert calls == ["first", "second"]

    def test_duplicate_subscribe_is_an_error(self):
        trace = make_trace()
        cb = trace.subscribe(lambda e: None)
        with pytest.raises(ValueError):
            trace.subscribe(cb)

    def test_unsubscribe_reports_membership(self):
        trace = make_trace()
        cb = trace.subscribe(lambda e: None)
        assert trace.unsubscribe(cb) is True
        assert trace.unsubscribe(cb) is False
        emit_read(trace)  # no longer delivered, must not raise

    def test_subscribers_property_is_a_copy(self):
        trace = make_trace()
        cb = trace.subscribe(lambda e: None)
        listed = trace.subscribers
        assert listed == [cb]
        listed.clear()
        assert trace.subscribers == [cb]


class TestEmitReturnContract:
    """Satellite: ``emit`` returns the committed event, or ``None`` iff
    the trace is disabled — so subscribers never observe ``None``."""

    def test_emit_returns_the_committed_event(self):
        trace = make_trace()
        event = emit_read(trace)
        assert isinstance(event, TraceEvent)
        assert trace.events[-1] is event

    def test_emit_returns_none_iff_disabled(self):
        trace = make_trace()
        trace.enabled = False
        assert emit_read(trace) is None
        assert trace.events == []
        trace.enabled = True
        assert emit_read(trace) is not None

    def test_disabled_emit_never_notifies(self):
        trace = make_trace()
        seen = []
        trace.subscribe(seen.append)
        trace.enabled = False
        emit_read(trace)
        assert seen == []

    def test_subscribers_never_see_none_or_rejected_events(self):
        trace = make_trace()
        seen = []
        trace.subscribe(seen.append)
        with pytest.raises(ValueError):
            trace.emit("no_such_event_kind", foo=1)
        emit_read(trace)
        assert all(isinstance(e, TraceEvent) for e in seen)
        assert len(seen) == 1


class TestExceptionIsolation:
    def test_raising_subscriber_is_detached_after_one_failure(self):
        trace = make_trace()
        calls = []

        def bad(event):
            calls.append(event.seq)
            raise RuntimeError("boom")

        good = []
        trace.subscribe(bad)
        trace.subscribe(good.append)
        emit_read(trace)
        emit_read(trace)
        assert calls == [0]  # invoked once, then detached
        assert len(good) == 2  # later subscribers unaffected
        assert trace.subscribers == [good.append] or len(trace.subscribers) == 1

    def test_failure_is_logged_and_hooked(self, caplog):
        trace = make_trace()
        hooked = []
        trace.on_subscriber_error = lambda cb, exc: hooked.append((cb, exc))

        def bad(event):
            raise RuntimeError("boom")

        trace.subscribe(bad)
        with caplog.at_level("WARNING"):
            emit_read(trace)
        assert len(hooked) == 1
        assert hooked[0][0] is bad
        assert isinstance(hooked[0][1], RuntimeError)
        assert any("detached" in r.getMessage() for r in caplog.records)

    def test_engine_run_survives_a_raising_subscriber(self):
        """Non-fatal by construction: the run completes, the counter
        increments, and the trace bytes are unchanged."""
        mdf = build_filter_mdf()
        baseline = run_mdf(
            mdf, Cluster(num_workers=4, mem_per_worker=1 * GB), live=False
        )

        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)

        def bad(event):
            raise RuntimeError("dashboard fell over")

        # reset=False: run_mdf's cluster reset would recreate the trace
        # and silently drop the subscription made above
        cluster.trace.subscribe(bad)
        result = run_mdf(mdf, cluster, live=False, reset=False)
        assert result.completion_time == baseline.completion_time
        assert result.events.to_jsonl() == baseline.events.to_jsonl()
        assert cluster.obs.value("live_subscriber_errors") == 1.0

    def test_counter_rewired_across_cluster_reset(self):
        cluster = Cluster(num_workers=2, mem_per_worker=1 * GB)
        cluster.reset()

        def bad(event):
            raise RuntimeError("boom")

        cluster.trace.subscribe(bad)
        cluster.trace.emit("dataset_discarded", dataset="d")
        assert cluster.obs.value("live_subscriber_errors") == 1.0
