"""Tests for the explicit checkpointing cost model (§5)."""

import pytest

from repro import Cluster, FailureInjector, GB
from repro.cluster.fault import CheckpointConfig
from repro.engine import EngineConfig, run_mdf

from ..conftest import build_filter_mdf


class TestCheckpointConfig:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval_stages=0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            CheckpointConfig(overhead_fraction=1.5)


class TestCheckpointCosts:
    def run(self, config=None):
        return run_mdf(build_filter_mdf(), Cluster(4, 1 * GB), config=config)

    def test_checkpointing_costs_time(self):
        plain = self.run()
        ckpt = self.run(
            EngineConfig(checkpointing=CheckpointConfig(1, overhead_fraction=0.2))
        )
        assert ckpt.completion_time > plain.completion_time
        assert ckpt.metrics.bytes_written_disk > plain.metrics.bytes_written_disk

    def test_interval_reduces_overhead(self):
        dense = self.run(
            EngineConfig(checkpointing=CheckpointConfig(1, overhead_fraction=0.2))
        )
        sparse = self.run(
            EngineConfig(checkpointing=CheckpointConfig(3, overhead_fraction=0.2))
        )
        assert sparse.completion_time < dense.completion_time

    def test_fraction_scales_overhead(self):
        light = self.run(
            EngineConfig(checkpointing=CheckpointConfig(1, overhead_fraction=0.05))
        )
        heavy = self.run(
            EngineConfig(checkpointing=CheckpointConfig(1, overhead_fraction=0.5))
        )
        assert light.completion_time < heavy.completion_time

    def test_results_unchanged(self):
        plain = self.run()
        ckpt = self.run(
            EngineConfig(checkpointing=CheckpointConfig(1, overhead_fraction=0.3))
        )
        assert ckpt.output == plain.output

    def test_checkpointing_with_failures(self):
        config = EngineConfig(
            checkpointing=CheckpointConfig(1, overhead_fraction=0.1),
            failures=FailureInjector.at_stages([(2, "worker-0")]),
        )
        result = self.run(config)
        assert result.output == list(range(10))
        assert result.metrics.recoveries > 0
