"""Execution-backend tests: registry, serial/mp data planes, transport,
prefetch bookkeeping — plus the PR's executor-layer bugfix regressions
(fault-drain scope, cache-hit payload aliasing, wide-stage byte splits)."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro import CallableEvaluator, Cluster, GB, MB, MDFBuilder
from repro.cache import DiskCacheStore, ResultCache
from repro.core.errors import ExecutionError
from repro.core.operators import Aggregate, Filter, Map, Transform
from repro.core.stages import StageGraph
from repro.engine import EngineConfig, run_mdf
from repro.engine.backends import (
    ExecutionBackend,
    MPBackend,
    SerialBackend,
    available_backends,
    make_backend,
)
from repro.engine.executor import StageExecutor, _split_bytes

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="mp backend parallelism needs the fork start method"
)


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "serial" in names and "mp" in names

    def test_none_resolves_to_serial(self):
        assert isinstance(make_backend(None), SerialBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="serial"):
            make_backend("spark")


# -------------------------------------------------------------------- serial
class TestSerialBackend:
    def test_map_chain_order_and_stats(self):
        backend = SerialBackend()
        ops = [Map(lambda x: x + 1, name="inc"), Filter(lambda x: x % 2 == 0, name="even")]
        out = backend.map_chain(ops, [[1, 2, 3], [4, 5, 6]])
        assert out == [[2, 4], [6]]
        assert backend.stats.chains_run == 2


# ------------------------------------------------------------------------ mp
@needs_fork
class TestMPBackend:
    def test_map_chain_matches_serial(self):
        backend = MPBackend(processes=2)
        try:
            ops = [
                Map(lambda x: x + 1, name="inc"),
                Filter(lambda x: x % 2 == 0, name="even"),
            ]
            backend.prepare(ops)
            out = backend.map_chain(ops, [[1, 2, 3], [4, 5, 6]])
            assert out == [[2, 4], [6]]
            assert backend.stats.chains_run == 2
            assert backend.stats.fallbacks == 0
        finally:
            backend.close()

    def test_large_arrays_travel_via_shared_memory(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Transform(lambda a: a * 2, name="dbl")]
            payload = np.arange(100_000, dtype=np.float64)  # 800 KB
            (out,) = backend.map_chain(ops, [payload])
            assert np.array_equal(out, payload * 2)
            assert backend.stats.shm_transfers >= 1
        finally:
            backend.close()

    def test_unpicklable_payload_falls_back_inline(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Transform(lambda xs: ["ok"], name="const")]
            out = backend.map_chain(ops, [[lambda: 1]])
            assert out == [["ok"]]
            assert backend.stats.fallbacks == 1
        finally:
            backend.close()

    def test_unpicklable_result_recomputed_inline(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Transform(lambda xs: (lambda: xs), name="thunk")]
            (out,) = backend.map_chain(ops, [[1, 2]])
            assert callable(out) and out() == [1, 2]
            assert backend.stats.fallbacks == 1
        finally:
            backend.close()

    def test_operator_error_crosses_process_boundary(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Transform(lambda xs: 1 / 0, name="boom")]
            with pytest.raises(ExecutionError) as excinfo:
                backend.map_chain(ops, [[1]])
            assert excinfo.value.operator_name == "boom"
        finally:
            backend.close()

    def test_narrow_prefetch_take(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Map(lambda x: x * 2, name="dbl")]
            backend.prepare(ops)
            assert backend.prefetch_stage("s1", "narrow", ops, [[1, 2], [3]])
            assert backend.has_prefetched("s1")
            assert backend.take_prefetched("s1") == [[2, 4], [6]]
            assert not backend.has_prefetched("s1")
            assert backend.stats.prefetches == 1
            assert backend.stats.prefetch_hits == 1
        finally:
            backend.close()

    def test_wide_prefetch_runs_head_then_rest(self):
        backend = MPBackend(processes=2)
        try:
            ops = [
                Aggregate(lambda xs: sorted(xs), name="agg", selectivity=1.0),
                Map(lambda x: x * 10, name="x10"),
            ]
            backend.prepare(ops)
            assert backend.prefetch_stage("w1", "wide", ops, [[3, 1], [2]])
            assert backend.take_prefetched("w1") == [[10, 20], [30]]
        finally:
            backend.close()

    def test_dropped_prefetch_is_reaped_not_served(self):
        backend = MPBackend(processes=2)
        try:
            ops = [Map(lambda x: x + 1, name="inc")]
            backend.prepare(ops)
            assert backend.prefetch_stage("s2", "narrow", ops, [[5]])
            backend.drop_prefetched("s2")
            assert not backend.has_prefetched("s2")
            assert backend.take_prefetched("s2") is None
            assert backend.stats.prefetch_drops == 1
        finally:
            backend.close()


def test_execution_error_pickle_roundtrip():
    err = ExecutionError("op-name", "went sideways")
    clone = pickle.loads(pickle.dumps(err, protocol=5))
    assert isinstance(clone, ExecutionError)
    assert clone.operator_name == "op-name"
    assert clone.message == "went sideways"


# ------------------------------------------------------- executor ownership
def test_executor_owns_named_backend_only():
    cluster = Cluster(2, 1 * GB)
    executor = StageExecutor(cluster, EngineConfig(backend="serial"))
    assert executor._owns_backend
    shared = SerialBackend()
    executor2 = StageExecutor(Cluster(2, 1 * GB), EngineConfig(backend=shared))
    assert executor2.backend is shared
    assert not executor2._owns_backend
    executor2.close()  # must not close a caller-owned instance


# --------------------------------------------------- bugfix 1: fault drain
def _wide_mdf():
    b = MDFBuilder()
    (
        b.read_data(list(range(100)), name="src", nominal_bytes=64 * MB)
        .aggregate(lambda xs: [sum(xs)], name="agg", selectivity=0.01)
        .write(name="out")
    )
    return b.build()


class TestFaultDrainScope:
    def test_choose_evaluation_leaves_faults_pending(self):
        """Injected task faults are scheduled "for the next executed
        stage": a choose evaluation between injection and that stage must
        not silently drain them (the pre-fix ``_wall`` did)."""
        cluster = Cluster(2, 1 * GB)
        sg = StageGraph(_wide_mdf())
        executor = StageExecutor(cluster, EngineConfig())
        first = executor.execute(sg.stages[0], None)
        executor.inject_task_faults({"worker-0": 2})
        evaluator = CallableEvaluator(lambda xs: float(len(xs)), name="count")
        executor.evaluate_branch(evaluator, first.output_dataset_id)
        assert executor._pending_task_faults == {"worker-0": 2}
        second = executor.execute(sg.stages[1], first.output_dataset_id)
        assert executor._pending_task_faults == {}
        assert second.times.compute > 0

    def test_next_real_stage_pays_for_the_faults(self):
        clean_cluster = Cluster(2, 1 * GB)
        clean_sg = StageGraph(_wide_mdf())
        clean_exec = StageExecutor(clean_cluster, EngineConfig())
        clean_first = clean_exec.execute(clean_sg.stages[0], None)
        clean_second = clean_exec.execute(
            clean_sg.stages[1], clean_first.output_dataset_id
        )

        cluster = Cluster(2, 1 * GB)
        sg = StageGraph(_wide_mdf())
        executor = StageExecutor(cluster, EngineConfig())
        first = executor.execute(sg.stages[0], None)
        executor.inject_task_faults({"worker-0": 2})
        evaluator = CallableEvaluator(lambda xs: float(len(xs)), name="count")
        executor.evaluate_branch(evaluator, first.output_dataset_id)
        second = executor.execute(sg.stages[1], first.output_dataset_id)
        # the retried attempts + backoff land on the stage, not the choose
        assert second.times.compute > clean_second.times.compute
        retried = [e for e in cluster.trace.events if e.kind == "task_retried"]
        assert len(retried) == 1 and retried[0].data["attempts"] == 2


# ------------------------------------------- bugfix 2: cache-hit aliasing
def _sorted_all(xs):
    return sorted(xs)


def _make_mutator(tag):
    def mutate(xs, _tag=tag):  # distinct fingerprint per run via default arg
        xs.append(-1)  # in-place: would corrupt an aliased cache blob
        return list(xs)

    return mutate


def _run_with_mutator(store, tag):
    cluster = Cluster(1, 1 * GB)  # one partition: concat aliases the payload
    cache = ResultCache(store=store, cost_based=False)
    b = MDFBuilder("alias-check")
    (
        b.read_data([5, 3, 7, 1], name="src", nominal_bytes=32 * MB)
        .aggregate(_sorted_all, name="agg", selectivity=0.5)
        .aggregate(_make_mutator(tag), name=f"mut-{tag}", selectivity=0.5)
        .write(name="out")
    )
    result = run_mdf(b.build(), cluster, config=EngineConfig(cache=cache))
    return result, cache


class TestStoreHitIsolation:
    def test_mutating_consumer_cannot_corrupt_later_hits(self, tmp_path):
        """A store-tier hit must serve a private copy: the downstream
        stage here mutates its input in place, and before the fix that
        mutation landed in the cached blob every later hit was served
        from."""
        store = DiskCacheStore(str(tmp_path))
        cold, _ = _run_with_mutator(store, 0)
        warm1, cache1 = _run_with_mutator(store, 1)
        warm2, cache2 = _run_with_mutator(store, 2)
        assert cache1.stats.store_hits >= 1  # the aliasing path really ran
        assert cache2.stats.store_hits >= 1
        assert warm1.output == cold.output == [1, 3, 5, 7, -1]
        assert warm2.output == warm1.output


# -------------------------------------------- bugfix 3: byte-split totals
class TestByteSplit:
    def test_split_bytes_exact(self):
        assert _split_bytes(10, 3) == [4, 3, 3]
        assert _split_bytes(2, 4) == [1, 1, 0, 0]
        assert _split_bytes(0, 3) == [0, 0, 0]
        for total, count in [(7, 4), (1, 1), (999, 7), (12, 5)]:
            parts = _split_bytes(total, count)
            assert sum(parts) == total
            assert max(parts) - min(parts) <= 1

    def test_wide_stage_partition_bytes_sum_to_output_total(self):
        """With a remainder (10 bytes over 3 partitions) the pre-fix
        ``out_total // n`` split summed to 9, silently losing a byte of
        nominal accounting on every wide stage."""
        cluster = Cluster(3, 1 * GB)
        b = MDFBuilder()
        (
            # 102 bytes split 34/34/34 by the source, so the wide head
            # sees 102 in-bytes and emits output_bytes = 10 over 3 parts
            b.read_data(list(range(99)), name="src", nominal_bytes=102)
            .aggregate(lambda xs: list(xs), name="agg", selectivity=0.1)
            .write(name="out")
        )
        sg = StageGraph(b.build())
        executor = StageExecutor(cluster, EngineConfig())
        first = executor.execute(sg.stages[0], None)
        second = executor.execute(sg.stages[1], first.output_dataset_id)
        record = cluster.record(second.output_dataset_id)
        assert record.num_partitions == 3
        assert sum(record.partition_bytes) == 10  # == output_bytes(100)
        assert max(record.partition_bytes) - min(record.partition_bytes) <= 1
