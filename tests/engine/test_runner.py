"""Tests for the top-level run_mdf API."""

import pytest

from repro import Cluster, GB, MB
from repro.cluster.memory import AMMPolicy, LRUPolicy
from repro.engine import BFSScheduler, BranchAwareScheduler, EngineConfig, run_mdf
from repro.engine.runner import make_scheduler

from ..conftest import build_filter_mdf


class TestMakeScheduler:
    def test_bfs(self):
        assert isinstance(make_scheduler("bfs"), BFSScheduler)

    def test_bas(self):
        assert isinstance(make_scheduler("bas"), BranchAwareScheduler)

    def test_bas_inherits_hint(self):
        from repro.engine import RandomHint

        config = EngineConfig(hint=RandomHint(0))
        sched = make_scheduler("bas", config)
        assert isinstance(sched.hint, RandomHint)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("dfs")


class TestRunMdf:
    def test_returns_result(self, small_cluster, filter_mdf):
        result = run_mdf(filter_mdf, small_cluster)
        assert result.completion_time > 0
        assert result.output == list(range(10))

    def test_scheduler_objects_accepted(self, small_cluster, filter_mdf):
        result = run_mdf(filter_mdf, small_cluster, scheduler=BFSScheduler())
        assert result.output == list(range(10))

    def test_memory_string(self, small_cluster, filter_mdf):
        run_mdf(filter_mdf, small_cluster, memory="amm")
        assert isinstance(small_cluster.policy, AMMPolicy)

    def test_memory_object(self, small_cluster, filter_mdf):
        policy = LRUPolicy()
        run_mdf(filter_mdf, small_cluster, memory=policy)
        assert small_cluster.policy is policy

    def test_memory_none_keeps_policy(self, filter_mdf):
        cluster = Cluster(2, 1 * GB, policy=AMMPolicy())
        run_mdf(filter_mdf, cluster, memory=None)
        assert isinstance(cluster.policy, AMMPolicy)

    def test_reset_clears_state(self, small_cluster, filter_mdf):
        run_mdf(filter_mdf, small_cluster)
        t1 = small_cluster.clock.now
        result = run_mdf(filter_mdf, small_cluster)  # reset=True default
        assert result.completion_time == pytest.approx(t1)

    def test_no_reset_continues_clock(self, small_cluster, filter_mdf):
        first = run_mdf(filter_mdf, small_cluster)
        second = run_mdf(filter_mdf, small_cluster, reset=False)
        assert second.completion_time > first.completion_time

    def test_deterministic(self, filter_mdf):
        a = run_mdf(filter_mdf, Cluster(4, 1 * GB))
        b = run_mdf(filter_mdf, Cluster(4, 1 * GB))
        assert a.completion_time == b.completion_time
        assert a.output == b.output

    def test_decisions_recorded(self, small_cluster, filter_mdf):
        result = run_mdf(filter_mdf, small_cluster)
        decision = result.decision_for("choose-min")
        assert len(decision.scores) == 3
        assert decision.kept  # one winner

    def test_trace_recorded(self, small_cluster, filter_mdf):
        result = run_mdf(filter_mdf, small_cluster)
        assert result.trace
        assert result.trace[0].started <= result.trace[0].finished

    def test_invalid_mdf_rejected(self, small_cluster):
        from repro.core.mdf import MDF
        from repro.core.errors import MDFError

        with pytest.raises(MDFError):
            run_mdf(MDF("empty"), small_cluster)
