"""Tests for the static cost estimator: its bounds must bracket real runs."""

import pytest

from repro import Cluster, GB, MB
from repro.engine import EngineConfig, run_mdf
from repro.engine.estimate import estimate_mdf
from repro.workloads import (
    granularity_grid,
    oil_well_trace,
    string_int_pairs,
    synthetic_mdf,
    time_series_mdf,
)

from ..conftest import build_filter_mdf, build_nested_mdf


def no_optimisation_config():
    """Make the real run comparable to the no-pruning estimate."""
    return EngineConfig(incremental_choose=False, pruning=False)


class TestBounds:
    @pytest.mark.parametrize("workers,mem_gb", [(4, 1), (8, 2)])
    def test_filter_mdf_bracketed(self, workers, mem_gb):
        mdf = build_filter_mdf()
        est = estimate_mdf(mdf, workers=workers)
        actual = run_mdf(
            mdf, Cluster(workers, mem_gb * GB), config=no_optimisation_config()
        )
        assert est.optimistic_seconds <= actual.completion_time * 1.05
        assert actual.completion_time <= est.pessimistic_seconds * 1.5

    def test_nested_mdf_bracketed(self):
        mdf = build_nested_mdf()
        est = estimate_mdf(mdf, workers=4)
        actual = run_mdf(mdf, Cluster(4, 1 * GB), config=no_optimisation_config())
        assert est.optimistic_seconds <= actual.completion_time * 1.05
        assert actual.completion_time <= est.pessimistic_seconds * 1.5

    def test_synthetic_mdf_bracketed(self):
        mdf = synthetic_mdf(
            string_int_pairs(500), b1=3, b2=3, nominal_bytes=256 * MB
        )
        est = estimate_mdf(mdf, workers=4)
        actual = run_mdf(mdf, Cluster(4, 1 * GB), config=no_optimisation_config())
        assert est.optimistic_seconds <= actual.completion_time * 1.05
        assert actual.completion_time <= est.pessimistic_seconds * 1.5

    def test_time_series_bracketed(self):
        trace = oil_well_trace(5000)
        mdf = time_series_mdf(trace, granularity_grid(16), nominal_bytes=128 * MB)
        est = estimate_mdf(mdf, workers=8)
        actual = run_mdf(mdf, Cluster(8, 2 * GB), config=no_optimisation_config())
        assert est.optimistic_seconds <= actual.completion_time * 1.1


class TestStructureCounts:
    def test_counts(self):
        mdf = synthetic_mdf(string_int_pairs(200), b1=3, b2=2, nominal_bytes=64 * MB)
        est = estimate_mdf(mdf, workers=4)
        assert est.num_branches == 3 + 3 * 2
        assert est.num_stages == len(est.stages) + 1 + 3 + 4  # + explores/chooses

    def test_compute_grows_with_branches(self):
        small = estimate_mdf(
            synthetic_mdf(string_int_pairs(200), b1=2, b2=2, nominal_bytes=64 * MB),
            workers=4,
        )
        big = estimate_mdf(
            synthetic_mdf(string_int_pairs(200), b1=4, b2=4, nominal_bytes=64 * MB),
            workers=4,
        )
        assert big.total_compute_units > small.total_compute_units
        assert big.peak_live_bytes >= small.peak_live_bytes

    def test_fits_in_memory(self):
        mdf = build_filter_mdf(nominal=64 * MB)
        est = estimate_mdf(mdf, workers=4)
        assert est.fits_in_memory(4, 1 * GB)
        assert not est.fits_in_memory(1, 32 * MB)

    def test_optimistic_below_pessimistic(self):
        mdf = build_nested_mdf()
        est = estimate_mdf(mdf, workers=4)
        assert est.optimistic_seconds < est.pessimistic_seconds
