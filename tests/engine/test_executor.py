"""Tests for worker-side stage execution: loading, compute, stores, walls."""

import pytest

from repro import Cluster, GB, MB, MDFBuilder
from repro.core.stages import StageGraph
from repro.engine import EngineConfig
from repro.engine.executor import StageExecutor


def simple_mdf(nominal=64 * MB):
    b = MDFBuilder()
    (
        b.read_data(list(range(100)), name="src", nominal_bytes=nominal)
        .transform(lambda xs: [x * 2 for x in xs], name="dbl", cost_factor=2.0)
        .write(name="out")
    )
    return b.build()


def wide_mdf(nominal=64 * MB):
    b = MDFBuilder()
    (
        b.read_data(list(range(100)), name="src", nominal_bytes=nominal)
        .aggregate(lambda xs: [sum(xs)], name="agg", selectivity=0.01)
        .write(name="out")
    )
    return b.build()


class TestSourceStage:
    def test_source_reads_from_disk(self):
        cluster = Cluster(4, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        outcome = executor.execute(sg.stages[0], None)
        assert cluster.metrics.bytes_read_disk == 64 * MB
        assert outcome.times.io > 0

    def test_chain_applied(self):
        cluster = Cluster(4, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        outcome = executor.execute(sg.stages[0], None)
        payload = cluster.materialize(outcome.output_dataset_id).collect()
        assert payload == [x * 2 for x in range(100)]

    def test_partitions_per_worker(self):
        cluster = Cluster(4, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig(partitions_per_worker=3))
        outcome = executor.execute(sg.stages[0], None)
        assert outcome.num_tasks == 12

    def test_compute_charged(self):
        cluster = Cluster(4, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        outcome = executor.execute(sg.stages[0], None)
        # 64 MB * cost_factor 2 / compute_rate 500 MB/s / 4 workers
        assert outcome.times.compute == pytest.approx(64 * 2 / 500 / 4, rel=0.01)


class TestWideStage:
    def test_shuffle_charged(self):
        cluster = Cluster(4, 1 * GB)
        mdf = wide_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        first = executor.execute(sg.stages[0], None)
        second = executor.execute(sg.stages[1], first.output_dataset_id)
        assert second.times.network > 0

    def test_global_semantics(self):
        cluster = Cluster(4, 1 * GB)
        mdf = wide_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        first = executor.execute(sg.stages[0], None)
        second = executor.execute(sg.stages[1], first.output_dataset_id)
        payload = cluster.materialize(second.output_dataset_id).collect()
        assert payload == [sum(range(100))]


class TestDeferredStore:
    def test_pending_not_registered(self):
        cluster = Cluster(4, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig())
        src_outcome = executor.execute(sg.stages[0], None)
        # re-run the source stage chain's output through a deferred store
        # by executing a narrow stage manually is covered in master tests;
        # here: commit_store registers and charges
        from repro.core.datasets import Dataset

        ds = Dataset.from_data([1, 2], dataset_id="pending", nominal_bytes=8 * MB,
                               producer="x")
        times = executor.commit_store(ds)
        assert cluster.has_dataset("pending")
        assert times.io > 0


class TestTaskOverhead:
    def test_overhead_scales_with_tasks(self):
        cluster = Cluster(8, 1 * GB)
        mdf = simple_mdf()
        sg = StageGraph(mdf)
        executor = StageExecutor(cluster, EngineConfig(task_overhead=0.01))
        outcome = executor.execute(sg.stages[0], None)
        assert outcome.times.overhead == pytest.approx(0.01 * 8)
