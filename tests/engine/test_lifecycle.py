"""Tests for dataset lifecycle at the master: consumers, release, AMM acc."""

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
)
from repro.engine import EngineConfig, Master, run_mdf
from repro.engine.scheduler import BranchAwareScheduler

from ..conftest import build_filter_mdf


class TestEffectiveConsumers:
    def test_explore_expanded_to_branch_heads(self, small_cluster):
        mdf = build_filter_mdf(thresholds=(10, 100, 500))
        master = Master(mdf, small_cluster, scheduler=BranchAwareScheduler())
        src = mdf.operator("src")
        consumers = master._effective_consumers(src)
        assert consumers == {"filter-10", "filter-100", "filter-500"}

    def test_branch_tail_feeds_choose(self, small_cluster):
        mdf = build_filter_mdf()
        master = Master(mdf, small_cluster, scheduler=BranchAwareScheduler())
        tail = mdf.operator("filter-10")
        assert master._effective_consumers(tail) == {"choose-min"}

    def test_sink_has_no_consumers(self, small_cluster):
        mdf = build_filter_mdf()
        master = Master(mdf, small_cluster, scheduler=BranchAwareScheduler())
        sink = mdf.operator("out")
        assert master._effective_consumers(sink) == set()


class TestEagerRelease:
    def test_default_keeps_consumed_data(self, small_cluster):
        mdf = build_filter_mdf()
        result = run_mdf(
            mdf, small_cluster, config=EngineConfig(eager_release=False)
        )
        # consumed source dataset is still registered after the run
        assert small_cluster.has_dataset("d:src")

    def test_eager_release_frees_consumed_data(self, small_cluster):
        mdf = build_filter_mdf()
        run_mdf(mdf, small_cluster, config=EngineConfig(eager_release=True))
        assert not small_cluster.has_dataset("d:src")

    def test_choose_discards_release_regardless(self, small_cluster):
        mdf = build_filter_mdf(thresholds=(10, 100, 500))
        run_mdf(mdf, small_cluster, config=EngineConfig(eager_release=False))
        # losing branch outputs were discarded by the choose (incremental)
        assert not small_cluster.has_dataset("d:filter-100")
        assert not small_cluster.has_dataset("d:filter-500")


class TestAmmAccounting:
    def test_future_accesses_reflect_consumption(self, small_cluster):
        mdf = build_filter_mdf(thresholds=(10, 100, 500))
        master = Master(mdf, small_cluster, scheduler=BranchAwareScheduler())
        master.run()
        # after the run nothing references the source dataset anymore
        assert master._future_accesses("d:src") == 0

    def test_score_store_holds_all_scores(self, small_cluster):
        mdf = build_filter_mdf(thresholds=(10, 100, 500))
        master = Master(mdf, small_cluster, scheduler=BranchAwareScheduler())
        master.run()
        scores = master.score_store.scores_for("choose-min")
        assert len(scores) == 3
        assert scores["exploreoperator-%d#0" % 0] if False else True  # ids vary
        assert sorted(scores.values()) == [10.0, 100.0, 500.0]


class TestPinnedProducers:
    def test_pin_producers_pins_dataset(self, small_cluster):
        mdf = build_filter_mdf()
        config = EngineConfig(pin_producers=frozenset({"src"}))
        run_mdf(mdf, small_cluster, config=config)
        record = small_cluster.record("d:src")
        assert record.pinned
