"""Tests for superfluous-branch pruning (R1b, Table 1)."""

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    KThreshold,
    MB,
    MDFBuilder,
    Min,
    TopK,
)
from repro.engine import EngineConfig, run_mdf


CALLS = []


def counting_mdf(selection, evaluator, thresholds=(10, 100, 200, 500, 900)):
    """An MDF whose branch operators record their invocations."""
    CALLS.clear()
    builder = MDFBuilder("pruning-mdf")
    src = builder.read_data(list(range(1000)), name="src", nominal_bytes=64 * MB)

    def body(pipe, p):
        t = p["threshold"]

        def op(xs, t=t):
            CALLS.append(t)
            return [x for x in xs if x < t]

        return pipe.transform(op, name=f"filter-{t}")

    result = src.explore({"threshold": list(thresholds)}, body, name="exp").choose(
        evaluator, selection, name="ch"
    )
    result.write(name="out")
    return builder.build()


def executed_thresholds(num_partitions=4):
    """Branch thresholds whose operator actually ran (dedup partitions)."""
    return sorted(set(CALLS))


class TestNonExhaustivePruning:
    def test_kthreshold_stops_after_k(self, small_cluster):
        evaluator = CallableEvaluator(len, name="count")
        mdf = counting_mdf(KThreshold(2, 150.0), evaluator)
        result = run_mdf(mdf, small_cluster)
        decision = result.decision_for("ch")
        # sorted order: 10 (fail), 100 (fail), 200 (pass), 500 (pass) -> done
        assert decision.kept == ["exp#2", "exp#3"]
        assert executed_thresholds() == [10, 100, 200, 500]
        assert decision.pruned == ["exp#4"]
        assert result.metrics.branches_pruned == 1

    def test_pruning_disabled_by_config(self, small_cluster):
        evaluator = CallableEvaluator(len, name="count")
        mdf = counting_mdf(KThreshold(2, 150.0), evaluator)
        result = run_mdf(
            mdf, small_cluster, config=EngineConfig(pruning=False)
        )
        assert executed_thresholds() == [10, 100, 200, 500, 900]
        assert result.metrics.branches_pruned == 0

    def test_pruned_branches_not_scored(self, small_cluster):
        evaluator = CallableEvaluator(len, name="count")
        mdf = counting_mdf(KThreshold(1, 5.0), evaluator)
        result = run_mdf(mdf, small_cluster)
        decision = result.decision_for("ch")
        assert len(decision.scores) == 1
        assert len(decision.pruned) == 4


class TestMonotonePruning:
    def test_monotone_min_stops_when_scores_rise(self, small_cluster):
        """Monotone evaluator + Min selection: once counts grow past the
        minimum, the remaining branches are provably worse."""
        evaluator = CallableEvaluator(len, name="count", monotone=True)
        mdf = counting_mdf(Min(), evaluator)
        result = run_mdf(mdf, small_cluster)
        # scores: 10, 100, ... monotone increasing -> prune after 2nd branch
        assert executed_thresholds() == [10, 100]
        decision = result.decision_for("ch")
        assert decision.kept == ["exp#0"]
        assert result.output == list(range(10))

    def test_unflagged_evaluator_never_prunes(self, small_cluster):
        evaluator = CallableEvaluator(len, name="count")  # no property flags
        mdf = counting_mdf(Min(), evaluator)
        run_mdf(mdf, small_cluster)
        assert executed_thresholds() == [10, 100, 200, 500, 900]


class TestConvexPruning:
    def test_convex_stops_past_optimum(self, small_cluster):
        """A convex score curve (distance from 200) lets the scheduler stop
        once scores worsen twice in a row past the optimum."""
        evaluator = CallableEvaluator(
            lambda xs: abs(len(xs) - 200), name="dist", convex=True
        )
        mdf = counting_mdf(
            Min(), evaluator, thresholds=(10, 100, 200, 500, 900, 950)
        )
        result = run_mdf(mdf, small_cluster)
        # scores over sorted thresholds: 190, 100, 0, 300, 700, (750)
        # two consecutive worsenings (300, 700) prune the last branch
        assert 950 not in executed_thresholds()
        assert result.decision_for("ch").kept == ["exp#2"]


class TestNestedPruning:
    def test_pruned_outer_branch_skips_inner_scope(self, small_cluster):
        """Pruning an outer branch removes its nested explore entirely."""
        CALLS.clear()
        builder = MDFBuilder("nested-prune")
        src = builder.read_data(list(range(100)), name="src", nominal_bytes=16 * MB)
        count = CallableEvaluator(len, name="count", monotone=True)

        def inner_body(pipe, p):
            def op(xs, t=p["t2"], o=p["_o"]):
                CALLS.append(("inner", o, t))
                return xs[:t]

            return pipe.transform(op, name=f"in-{p['_o']}-{p['t2']}")

        def outer_body(pipe, p):
            def op(xs, t=p["t1"]):
                CALLS.append(("outer", t))
                return xs[:t]

            first = pipe.transform(op, name=f"out-{p['t1']}")
            return first.explore(
                {"t2": [p["t1"] // 2, p["t1"]], "_o": [p["t1"]]},
                inner_body,
                name=f"inner-{p['t1']}",
            ).choose(count, Min(), name=f"ic-{p['t1']}")

        result = src.explore({"t1": [10, 50, 90]}, outer_body, name="outer").choose(
            count, Min(), name="oc"
        )
        result.write()
        mdf = builder.build()
        run_mdf(mdf, small_cluster)
        outer_ran = sorted({c[1] for c in CALLS if c[0] == "outer"})
        inner_ran = sorted({c[1] for c in CALLS if c[0] == "inner"})
        # outer scores rise with t1 (10 -> 5, 50 -> 25, 90 -> 45): the Min
        # selection with a monotone evaluator prunes the third branch, and
        # with it the whole nested inner-90 scope
        assert 90 not in outer_ran
        assert 90 not in inner_ran
