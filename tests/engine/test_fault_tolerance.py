"""Tests for fault tolerance and stragglers during MDF execution (§5)."""

import pytest

from repro import (
    Cluster,
    FailureInjector,
    GB,
    MB,
    SpeculationConfig,
    StragglerProfile,
)
from repro.engine import EngineConfig, run_mdf

from ..conftest import build_filter_mdf


class TestFailures:
    def test_job_survives_node_failure(self, small_cluster):
        mdf = build_filter_mdf()
        config = EngineConfig(
            failures=FailureInjector.at_stages([(2, "worker-0")])
        )
        result = run_mdf(mdf, small_cluster, config=config)
        assert result.output == list(range(10))
        assert result.metrics.recoveries > 0

    def test_failure_costs_time(self):
        mdf = build_filter_mdf()
        clean = run_mdf(mdf, Cluster(4, 1 * GB))
        mdf2 = build_filter_mdf()
        failed = run_mdf(
            mdf2,
            Cluster(4, 1 * GB),
            config=EngineConfig(failures=FailureInjector.at_stages([(2, "worker-0")])),
        )
        # the lost partitions recompute from lineage, so the failed run
        # strictly pays for the failure: it re-reads the job input from
        # disk and finishes later by exactly the charged recovery seconds
        assert failed.completion_time > clean.completion_time
        assert failed.metrics.bytes_read_disk > clean.metrics.bytes_read_disk

    def test_choose_scores_survive_at_master(self, small_cluster):
        """The master holds evaluator scores, so a worker failure after
        evaluation never forces branch re-execution (§5)."""
        mdf = build_filter_mdf()
        config = EngineConfig(
            failures=FailureInjector.at_stages([(4, "worker-1")])
        )
        result = run_mdf(mdf, small_cluster, config=config)
        decision = result.decision_for("choose-min")
        assert len(decision.scores) == 3

    def test_multiple_failures(self, small_cluster):
        mdf = build_filter_mdf()
        config = EngineConfig(
            failures=FailureInjector.at_stages(
                [(1, "worker-0"), (3, "worker-1"), (4, "worker-2")]
            )
        )
        result = run_mdf(mdf, small_cluster, config=config)
        assert result.output == list(range(10))


class TestStragglers:
    def test_straggler_slows_job(self):
        mdf = build_filter_mdf()
        clean = run_mdf(mdf, Cluster(4, 1 * GB))
        mdf2 = build_filter_mdf()
        slow = run_mdf(
            mdf2,
            Cluster(4, 1 * GB),
            config=EngineConfig(
                stragglers=StragglerProfile({"worker-0": 5.0}),
                speculation=SpeculationConfig(enabled=False),
            ),
        )
        assert slow.completion_time > clean.completion_time

    def test_speculation_mitigates(self):
        profile = StragglerProfile({"worker-0": 10.0})
        mdf = build_filter_mdf()
        unmitigated = run_mdf(
            mdf,
            Cluster(4, 1 * GB),
            config=EngineConfig(
                stragglers=profile, speculation=SpeculationConfig(enabled=False)
            ),
        )
        mdf2 = build_filter_mdf()
        mitigated = run_mdf(
            mdf2,
            Cluster(4, 1 * GB),
            config=EngineConfig(
                stragglers=profile, speculation=SpeculationConfig(enabled=True)
            ),
        )
        assert mitigated.completion_time < unmitigated.completion_time
        assert mitigated.metrics.speculative_tasks > 0

    def test_same_results_with_stragglers(self, small_cluster):
        mdf = build_filter_mdf()
        result = run_mdf(
            mdf,
            small_cluster,
            config=EngineConfig(stragglers=StragglerProfile({"worker-2": 4.0})),
        )
        assert result.output == list(range(10))
