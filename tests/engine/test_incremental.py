"""Tests for incremental choose evaluation and deferred stores (R1a, R3)."""

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
    Mode,
    TopK,
)
from repro.engine import EngineConfig, run_mdf


def mdf_with_selection(selection, thresholds=(10, 100, 500)):
    builder = MDFBuilder("sel-mdf")
    src = builder.read_data(list(range(1000)), name="src", nominal_bytes=64 * MB)
    result = src.explore(
        {"threshold": list(thresholds)},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
        name="exp",
    ).choose(CallableEvaluator(len, name="count"), selection, name="ch")
    result.write(name="out")
    return builder.build()


class TestIncrementalDiscard:
    def test_losers_never_stored(self, small_cluster):
        """With a Min selection and sorted order, every branch after the
        first loses immediately and is never materialised."""
        mdf = mdf_with_selection(Min())
        result = run_mdf(
            mdf, small_cluster, config=EngineConfig(incremental_choose=True)
        )
        # only src + winner + (choose alias) + sink output stored;
        # the two losing branch outputs never hit the cluster
        decision = result.decision_for("ch")
        assert len(decision.discarded) == 2
        # stored datasets: src output, winning branch, sink stage output
        assert result.metrics.peak_datasets_stored <= 4

    def test_without_incremental_all_stored(self, small_cluster):
        mdf = mdf_with_selection(Min())
        result = run_mdf(
            mdf, small_cluster, config=EngineConfig(incremental_choose=False)
        )
        # all three branch outputs coexist before the choose decides
        assert result.metrics.peak_datasets_stored >= 4

    def test_same_winner_either_way(self):
        a = run_mdf(
            mdf_with_selection(Min()),
            Cluster(4, 1 * GB),
            config=EngineConfig(incremental_choose=True),
        )
        b = run_mdf(
            mdf_with_selection(Min()),
            Cluster(4, 1 * GB),
            config=EngineConfig(incremental_choose=False),
        )
        assert a.output == b.output
        assert a.decision_for("ch").kept == b.decision_for("ch").kept

    def test_incremental_not_slower(self):
        a = run_mdf(
            mdf_with_selection(Min()),
            Cluster(4, 128 * MB),
            config=EngineConfig(incremental_choose=True),
        )
        b = run_mdf(
            mdf_with_selection(Min()),
            Cluster(4, 128 * MB),
            config=EngineConfig(incremental_choose=False),
        )
        assert a.completion_time <= b.completion_time

    def test_topk_knockout_discards_previous(self, small_cluster):
        """A new top-k winner evicts the previously kept branch's data."""
        mdf = mdf_with_selection(TopK(1, largest=True))  # largest count wins
        result = run_mdf(mdf, small_cluster)
        decision = result.decision_for("ch")
        assert decision.kept == ["exp#2"]
        assert len(decision.discarded) == 2
        assert result.output == list(range(500))


class TestModeSelection:
    def test_mode_needs_all_branches(self, small_cluster):
        """Mode is not associative: nothing can be discarded early, but the
        job still completes with every branch evaluated."""
        builder = MDFBuilder("mode-mdf")
        src = builder.read_data(list(range(1000)), name="src", nominal_bytes=64 * MB)
        # bucket evaluator: small branches score 0.0, the big one 1.0
        bucket = CallableEvaluator(lambda xs: float(len(xs) >= 200), name="bucket")
        result = src.explore(
            {"threshold": [100, 150, 500]},
            lambda pipe, p: pipe.transform(
                lambda xs, t=p["threshold"]: [x for x in xs if x < t],
                name=f"filter-{p['threshold']}",
            ),
            name="exp",
        ).choose(bucket, Mode(), name="ch")
        result.write(name="out")
        mdf = builder.build()
        result = run_mdf(mdf, small_cluster)
        decision = result.decision_for("ch")
        assert len(decision.scores) == 3
        assert set(decision.kept) == {"exp#0", "exp#1"}  # the two 0.0 scores
        assert sorted(result.output) == sorted(list(range(100)) + list(range(150)))


class TestMultiKeptComposite:
    def test_threshold_keeps_several(self, small_cluster):
        from repro.core.selection import Threshold

        mdf = mdf_with_selection(Threshold(50.0))
        result = run_mdf(mdf, small_cluster)
        decision = result.decision_for("ch")
        assert len(decision.kept) == 2  # counts 100 and 500 pass
        assert sorted(result.output) == sorted(
            [x for x in range(100)] + [x for x in range(500)]
        )

    def test_empty_selection_yields_empty_output(self, small_cluster):
        from repro.core.selection import Threshold

        mdf = mdf_with_selection(Threshold(10_000.0))
        result = run_mdf(mdf, small_cluster)
        assert result.decision_for("ch").kept == []
        assert result.output == []
