"""Metrics accounting for recovery re-executions and choose evaluations.

``recovery_reexecutions`` counts partitions lost from a failed node's
memory that had to be re-secured (the work §5's master-side score store
avoids for choose decisions); ``choose_evaluations`` counts evaluator
invocations.  Both must move under fault injection / choose execution and
both must survive :meth:`Metrics.merge`.
"""

from repro import Cluster, FailureInjector, GB, MB, Metrics
from repro.cluster.fault import recover_partitions
from repro.engine import EngineConfig, run_mdf

from ..conftest import build_filter_mdf, build_nested_mdf


class TestRecoveryReexecutions:
    def test_clean_run_counts_zero(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster)
        assert result.metrics.recovery_reexecutions == 0

    def test_fault_injection_increments(self, small_cluster):
        config = EngineConfig(failures=FailureInjector.at_stages([(2, "worker-0")]))
        result = run_mdf(build_filter_mdf(), small_cluster, config=config)
        assert result.metrics.recovery_reexecutions > 0
        assert result.metrics.recoveries >= result.metrics.recovery_reexecutions

    def test_each_reexecution_traced(self, small_cluster):
        config = EngineConfig(failures=FailureInjector.at_stages([(2, "worker-0")]))
        result = run_mdf(build_filter_mdf(), small_cluster, config=config)
        recomputes = [
            e
            for e in result.events.filter("recovery")
            if e.data["action"] == "recompute"
        ]
        assert len(recomputes) == result.metrics.recovery_reexecutions
        assert len(result.events.filter("node_failed")) == 1
        assert len(result.events.filter("recovery_started")) == 1

    def test_recover_partitions_helper_increments(self):
        from repro.core.datasets import Dataset

        cluster = Cluster(num_workers=2, mem_per_worker=1 * GB)
        dataset = Dataset.from_data(
            list(range(20)), num_partitions=2, dataset_id="d:a", nominal_bytes=8 * MB
        )
        cluster.register_dataset(dataset)
        report = cluster.fail_node("worker-0")
        assert report.lost
        before = cluster.metrics.recovery_reexecutions
        recover_partitions(cluster, report.lost)
        assert cluster.metrics.recovery_reexecutions == before + len(report.lost)


class TestChooseEvaluations:
    def test_counts_one_per_branch(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster)
        # three branches, each scored exactly once
        assert result.metrics.choose_evaluations == 3
        assert (
            len(result.events.filter("choose_evaluation"))
            == result.metrics.choose_evaluations
        )

    def test_nested_explores_count_every_scope(self, small_cluster):
        result = run_mdf(build_nested_mdf(), small_cluster)
        # 2 outer branches x 2 inner branches + 2 outer evaluations
        assert result.metrics.choose_evaluations == 6

    def test_counted_under_fault_injection(self, small_cluster):
        config = EngineConfig(failures=FailureInjector.at_stages([(2, "worker-0")]))
        result = run_mdf(build_filter_mdf(), small_cluster, config=config)
        assert result.metrics.choose_evaluations == 3


class TestMerge:
    def test_merge_sums_both_counters(self):
        a = Metrics(recovery_reexecutions=2, choose_evaluations=3)
        b = Metrics(recovery_reexecutions=5, choose_evaluations=7)
        merged = a.merge(b)
        assert merged.recovery_reexecutions == 7
        assert merged.choose_evaluations == 10

    def test_as_dict_exposes_both(self):
        data = Metrics(recovery_reexecutions=1, choose_evaluations=2).as_dict()
        assert data["recovery_reexecutions"] == 1
        assert data["choose_evaluations"] == 2
