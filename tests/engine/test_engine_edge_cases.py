"""Edge-case coverage for the engine: plain dataflows, config variants,
multiple sinks, operator failures, tiny clusters, custom cost models."""

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    CostModel,
    GB,
    MB,
    MDFBuilder,
    Min,
    TopK,
)
from repro.core.errors import ExecutionError
from repro.engine import EngineConfig, RandomHint, run_mdf

from ..conftest import build_filter_mdf


class TestPlainDataflows:
    """MDFs without any explore still execute (ordinary dataflow jobs)."""

    def build(self):
        b = MDFBuilder("plain")
        (
            b.read_data(list(range(50)), name="src", nominal_bytes=8 * MB)
            .transform(lambda xs: [x + 1 for x in xs], name="inc")
            .aggregate(lambda xs: [sum(xs)], name="total", selectivity=0.01)
            .write(name="out")
        )
        return b.build()

    def test_runs_on_both_schedulers(self):
        for scheduler in ("bas", "bfs"):
            result = run_mdf(self.build(), Cluster(2, 1 * GB), scheduler=scheduler)
            assert result.output == [sum(range(1, 51))]

    def test_no_decisions(self):
        result = run_mdf(self.build(), Cluster(2, 1 * GB))
        assert result.decisions == {}


class TestMultipleSinks:
    def test_both_outputs_captured(self):
        b = MDFBuilder("two-sinks")
        src = b.read_data([1, 2, 3], name="src", nominal_bytes=MB)
        mid = src.transform(lambda xs: [x * 2 for x in xs], name="dbl")
        mid.write(name="out-a")
        mid.transform(lambda xs: [x + 1 for x in xs], name="inc").write(name="out-b")
        mdf = b.build()
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        assert result.outputs["out-a"] == [2, 4, 6]
        assert result.outputs["out-b"] == [3, 5, 7]


class TestOperatorFailures:
    def test_execution_error_propagates(self):
        b = MDFBuilder("boom")
        b.read_data([1], name="src").transform(
            lambda xs: 1 / 0, name="boom"
        ).write(name="out")
        with pytest.raises(ExecutionError, match="boom"):
            run_mdf(b.build(), Cluster(2, 1 * GB))

    def test_evaluator_error_propagates(self):
        mdf_builder = MDFBuilder("bad-eval")
        src = mdf_builder.read_data([1, 2], name="src")
        src.explore(
            {"t": [1, 2]}, lambda pipe, p: pipe.identity(name=f"i{p['t']}")
        ).choose(
            CallableEvaluator(lambda xs: xs.undefined, name="bad"), Min()
        ).write()
        with pytest.raises(Exception):
            run_mdf(mdf_builder.build(), Cluster(2, 1 * GB))


class TestConfigVariants:
    def test_evaluator_on_master_charges_network(self):
        mdf = build_filter_mdf()
        split = run_mdf(
            build_filter_mdf(),
            Cluster(4, 1 * GB),
            config=EngineConfig(incremental_choose=False, evaluator_on_master=False),
        )
        at_master = run_mdf(
            mdf,
            Cluster(4, 1 * GB),
            config=EngineConfig(incremental_choose=False, evaluator_on_master=True),
        )
        assert at_master.wall_network > split.wall_network
        assert at_master.completion_time >= split.completion_time

    def test_single_worker_cluster(self):
        result = run_mdf(build_filter_mdf(), Cluster(1, 1 * GB))
        assert result.output == list(range(10))

    def test_many_partitions_per_worker(self):
        result = run_mdf(
            build_filter_mdf(),
            Cluster(2, 1 * GB),
            config=EngineConfig(partitions_per_worker=5),
        )
        assert result.output == list(range(10))

    def test_random_hint_changes_order_not_result(self):
        base = run_mdf(build_filter_mdf(), Cluster(4, 1 * GB))
        randomised = run_mdf(
            build_filter_mdf(),
            Cluster(4, 1 * GB),
            config=EngineConfig(hint=RandomHint(seed=3)),
        )
        assert randomised.output == base.output

    def test_custom_cost_model_slower_disk(self):
        slow_disk = CostModel(disk_read_bw=10 * MB, disk_write_bw=5 * MB)
        mdf = build_filter_mdf()
        fast = run_mdf(build_filter_mdf(), Cluster(4, 16 * MB))
        slow = run_mdf(mdf, Cluster(4, 16 * MB, cost_model=slow_disk))
        assert slow.completion_time > fast.completion_time

    def test_alpha_bound_to_policy(self):
        from repro.cluster.memory import AMMPolicy

        cm = CostModel(disk_write_bw=50 * MB, disk_read_bw=200 * MB)
        cluster = Cluster(4, 1 * GB, cost_model=cm, policy=AMMPolicy())
        run_mdf(build_filter_mdf(), cluster, memory=None)
        assert cluster.policy._alpha == pytest.approx(cm.alpha)


class TestChooseKeepsEverything:
    def test_topk_larger_than_branch_count(self):
        b = MDFBuilder("keep-all")
        src = b.read_data(list(range(30)), name="src", nominal_bytes=4 * MB)
        src.explore(
            {"m": [2, 3]},
            lambda pipe, p: pipe.transform(
                lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul{p['m']}"
            ),
            name="exp",
        ).choose(CallableEvaluator(len, name="n"), TopK(10), name="ch").write()
        result = run_mdf(b.build(), Cluster(2, 1 * GB))
        assert len(result.decision_for("ch").kept) == 2
        assert len(result.output) == 60  # composite of both branches
