"""Tests for BFS and branch-aware scheduling order (Algorithm 1)."""

import pytest

from repro import Cluster, GB
from repro.engine import BFSScheduler, BranchAwareScheduler, EngineConfig, run_mdf
from repro.engine.hints import SortedHint

from ..conftest import build_filter_mdf, build_nested_mdf


def branch_sequence(result):
    """The branch ids of executed stages, in execution order."""
    return [t.branch_id for t in result.trace if t.branch_id is not None]


class TestBASOrder:
    def test_branches_run_contiguously(self, small_cluster):
        """BAS executes one branch to completion before the next (DFS)."""
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11))
        result = run_mdf(mdf, small_cluster, scheduler="bas")
        seq = branch_sequence(result)
        # each branch id must appear as one contiguous run
        seen = set()
        last = None
        for branch in seq:
            if branch != last:
                assert branch not in seen, f"branch {branch} interleaved: {seq}"
                seen.add(branch)
            last = branch

    def test_sorted_hint_domain_order(self, small_cluster):
        mdf = build_filter_mdf(thresholds=(10, 100, 500))
        result = run_mdf(mdf, small_cluster, scheduler="bas")
        seq = [b for b in branch_sequence(result)]
        # sorted hint: branch 0, 1, 2 in grid order
        indices = [int(b.split("#")[1]) for b in seq]
        assert indices == sorted(indices)

    def test_inner_scope_completes_before_outer_moves(self, small_cluster):
        """Nested explores: all inner branches of outer#0 run before outer#1."""
        mdf = build_nested_mdf(outer=(2, 3), inner=(5, 7))
        result = run_mdf(mdf, small_cluster, scheduler="bas")
        seq = branch_sequence(result)
        # find the first stage of outer branch 1
        outer1_first = next(
            i for i, b in enumerate(seq) if b.startswith("outer#1")
        )
        inner0_stages = [i for i, b in enumerate(seq) if b.startswith("inner-2#")]
        assert all(i < outer1_first for i in inner0_stages)


class TestBFSOrder:
    def test_level_order(self, small_cluster):
        """BFS runs all branch heads before any branch finishes deep work."""
        mdf = build_nested_mdf(outer=(2, 3), inner=(5, 7))
        result = run_mdf(mdf, small_cluster, scheduler="bfs")
        seq = branch_sequence(result)
        # outer branch heads (mul1 stages) come before all inner stages
        outer_positions = [
            i for i, b in enumerate(seq) if b.startswith("outer#")
        ]
        inner_positions = [
            i for i, b in enumerate(seq) if b.startswith("inner-")
        ]
        assert min(inner_positions) > min(outer_positions)

    def test_same_results_as_bas(self, filter_mdf):
        bas = run_mdf(filter_mdf, Cluster(4, 1 * GB), scheduler="bas")
        bfs = run_mdf(filter_mdf, Cluster(4, 1 * GB), scheduler="bfs")
        assert bas.output == bfs.output
        assert bas.decisions.keys() == bfs.decisions.keys()
        for name in bas.decisions:
            assert bas.decisions[name].kept == bfs.decisions[name].kept


class TestPeakDatasets:
    def test_bas_maintains_no_more_than_bfs(self):
        """Engine-level Theorem 4.3: peak stored datasets, BAS <= BFS."""
        mdf = build_nested_mdf(outer=(2, 3, 5, 7), inner=(2, 3, 5))
        config = EngineConfig(incremental_choose=False)
        bas = run_mdf(mdf, Cluster(4, 1 * GB), scheduler="bas", config=config)
        mdf2 = build_nested_mdf(outer=(2, 3, 5, 7), inner=(2, 3, 5))
        bfs = run_mdf(mdf2, Cluster(4, 1 * GB), scheduler="bfs", config=config)
        assert (
            bas.metrics.peak_datasets_stored <= bfs.metrics.peak_datasets_stored
        )

    def test_incremental_lowers_bas_peak(self):
        mdf = build_nested_mdf(outer=(2, 3, 5, 7), inner=(2, 3, 5))
        on = run_mdf(
            mdf, Cluster(4, 1 * GB), scheduler="bas",
            config=EngineConfig(incremental_choose=True),
        )
        mdf2 = build_nested_mdf(outer=(2, 3, 5, 7), inner=(2, 3, 5))
        off = run_mdf(
            mdf2, Cluster(4, 1 * GB), scheduler="bas",
            config=EngineConfig(incremental_choose=False),
        )
        assert on.metrics.peak_datasets_stored <= off.metrics.peak_datasets_stored
