"""Estimator coverage for joins and chained scopes."""

import pytest

from repro import Cluster, GB, MB, MDFBuilder
from repro.engine import EngineConfig, run_mdf
from repro.engine.estimate import estimate_mdf


def join_mdf():
    b = MDFBuilder("est-join")
    left = b.read_data(list(range(50)), name="left", nominal_bytes=64 * MB)
    right = b.read_data(list(range(50)), name="right", nominal_bytes=64 * MB)
    left.join(
        right, lambda l, r: l + r, name="union", selectivity=2.0
    ).transform(lambda xs: xs, name="post").write(name="out")
    return b.build()


class TestJoinEstimates:
    def test_join_input_is_sum_of_operands(self):
        est = estimate_mdf(join_mdf(), workers=4)
        join_stage = next(s for s in est.stages if "union" in s.ops)
        assert join_stage.input_bytes == 128 * MB
        assert join_stage.is_wide

    def test_join_output_respects_selectivity(self):
        est = estimate_mdf(join_mdf(), workers=4)
        join_stage = next(s for s in est.stages if "union" in s.ops)
        assert join_stage.output_bytes == 256 * MB

    def test_bracket_holds_for_join_mdf(self):
        mdf = join_mdf()
        est = estimate_mdf(mdf, workers=4)
        actual = run_mdf(
            mdf,
            Cluster(4, 1 * GB),
            config=EngineConfig(incremental_choose=False, pruning=False),
        )
        assert est.optimistic_seconds <= actual.completion_time * 1.05
        assert actual.completion_time <= est.pessimistic_seconds * 1.5

    def test_chained_scopes_estimated(self):
        from repro.workloads import (
            granularity_grid,
            oil_well_trace,
            time_series_full_mdf,
        )

        mdf = time_series_full_mdf(
            oil_well_trace(3000), granularity_grid(16), nominal_bytes=64 * MB
        )
        est = estimate_mdf(mdf, workers=4)
        assert est.num_branches == 16 + 9 + 3
        assert est.optimistic_seconds > 0
