"""Tests for two-input join operators in the engine (Appendix A, i = 2)."""

import pytest

from repro import CallableEvaluator, Cluster, GB, MB, MDFBuilder, Max
from repro.core.errors import SchedulingError
from repro.core.operators import Join
from repro.core.stages import StageGraph
from repro.engine import run_mdf


def join_mdf(nominal=8 * MB):
    b = MDFBuilder("join")
    left = b.read_data([1, 2, 3], name="left", nominal_bytes=nominal)
    right = b.read_data([10, 20], name="right", nominal_bytes=nominal)
    joined = left.join(
        right, lambda l, r: [x + y for x in l for y in r], name="cross"
    )
    joined.write(name="out")
    return b.build()


class TestJoinExecution:
    def test_cross_join_result(self):
        result = run_mdf(join_mdf(), Cluster(3, 1 * GB))
        assert sorted(result.output) == [11, 12, 13, 21, 22, 23]

    def test_schedulers_agree(self):
        bas = run_mdf(join_mdf(), Cluster(3, 1 * GB), scheduler="bas")
        bfs = run_mdf(join_mdf(), Cluster(3, 1 * GB), scheduler="bfs")
        assert sorted(bas.output) == sorted(bfs.output)

    def test_join_charges_network(self):
        result = run_mdf(join_mdf(), Cluster(3, 1 * GB))
        assert result.wall_network > 0

    def test_join_is_own_stage(self):
        mdf = join_mdf()
        sg = StageGraph(mdf)
        join_stage = sg.stage_of(mdf.operator("cross"))
        assert join_stage.head.name == "cross"
        assert len(sg.pre(join_stage)) == 2

    def test_key_join_semantics(self):
        b = MDFBuilder("kv-join")
        users = b.read_data(
            [("u1", "alice"), ("u2", "bob")], name="users", nominal_bytes=MB
        )
        orders = b.read_data(
            [("u1", 10), ("u2", 20), ("u1", 30)], name="orders", nominal_bytes=MB
        )

        def inner_join(left, right):
            names = dict(left)
            return [(names[k], v) for k, v in right if k in names]

        users.join(orders, inner_join, name="enrich").write(name="out")
        result = run_mdf(b.build(), Cluster(2, 1 * GB))
        assert sorted(result.output) == [("alice", 10), ("alice", 30), ("bob", 20)]

    def test_unwired_join_rejected(self):
        from repro.core.mdf import MDF
        from repro.core.operators import Sink, Source

        mdf = MDF("manual")
        a = Source.from_data([1], name="a")
        c = Source.from_data([2], name="c")
        j = Join(lambda l, r: l + r, name="j")  # input_names never set
        mdf.add_edge(a, j)
        mdf.add_edge(c, j)
        mdf.add_edge(j, Sink(name="out"))
        with pytest.raises(SchedulingError, match="wired"):
            run_mdf(mdf, Cluster(2, 1 * GB))


class TestJoinInsideBranches:
    def test_join_as_branch_operator(self):
        """Each branch joins the explored stream against a reference."""
        b = MDFBuilder("branch-join")
        ref = b.read_data([100], name="ref", nominal_bytes=MB)
        src = b.read_data([1, 2, 3], name="src", nominal_bytes=MB)

        from repro.core.builder import Pipe

        def body2(pipe, p):
            scaled = pipe.transform(
                lambda xs, m=p["m"]: [x * m for x in xs], name=f"scale-{p['m']}"
            )
            return scaled.join(
                Pipe(b, ref.op),
                lambda l, r: [x + r[0] for x in l],
                name=f"add-ref-{p['m']}",
            )

        result_pipe = src.explore({"m": [2, 5]}, body2, name="exp").choose(
            CallableEvaluator(lambda xs: float(sum(xs)), name="sum"), Max(), name="ch"
        )
        result_pipe.write(name="out")
        mdf = b.build()
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        # branch m=5 wins: [105, 110, 115]
        assert sorted(result.output) == [105, 110, 115]
