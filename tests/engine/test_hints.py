"""Tests for scheduling hints (§4.2)."""

import pytest

from repro.engine.hints import (
    ModelBasedHint,
    PriorityHint,
    RandomHint,
    SortedHint,
)


def candidates(*indices):
    return [(i, {"x": float(i)}) for i in indices]


class TestSortedHint:
    def test_domain_order(self):
        hint = SortedHint()
        assert hint.order(candidates(3, 1, 2), []) == [1, 2, 3]

    def test_ignores_observations(self):
        hint = SortedHint()
        observed = [({"x": 3.0}, 100.0)]
        assert hint.order(candidates(2, 1), observed) == [1, 2]


class TestRandomHint:
    def test_permutation(self):
        hint = RandomHint(seed=0)
        out = hint.order(candidates(0, 1, 2, 3, 4), [])
        assert sorted(out) == [0, 1, 2, 3, 4]

    def test_seeded_reproducible(self):
        a = RandomHint(seed=7).order(candidates(*range(10)), [])
        b = RandomHint(seed=7).order(candidates(*range(10)), [])
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomHint(seed=1).order(candidates(*range(20)), [])
        b = RandomHint(seed=2).order(candidates(*range(20)), [])
        assert a != b


class TestPriorityHint:
    def test_highest_priority_first(self):
        hint = PriorityHint(lambda p: p["x"])
        assert hint.order(candidates(1, 3, 2), []) == [3, 2, 1]

    def test_ties_break_by_index(self):
        hint = PriorityHint(lambda p: 0.0)
        assert hint.order(candidates(2, 0, 1), []) == [0, 1, 2]


class TestModelBasedHint:
    def test_falls_back_without_observations(self):
        hint = ModelBasedHint(min_observations=3)
        assert hint.order(candidates(2, 0, 1), []) == [0, 1, 2]

    def test_learns_linear_trend(self):
        # score = 10 * x: the model should schedule the largest x first
        hint = ModelBasedHint(maximize=True, min_observations=3)
        observed = [({"x": float(i)}, 10.0 * i) for i in range(4)]
        out = hint.order(candidates(5, 9, 7), observed)
        assert out == [9, 7, 5]

    def test_minimize_direction(self):
        hint = ModelBasedHint(maximize=False, min_observations=3)
        observed = [({"x": float(i)}, 10.0 * i) for i in range(4)]
        out = hint.order(candidates(5, 9, 7), observed)
        assert out == [5, 7, 9]

    def test_non_numeric_falls_back(self):
        hint = ModelBasedHint(min_observations=1)
        observed = [({"k": "gaussian"}, 1.0), ({"k": "tophat"}, 2.0)]
        cands = [(1, {"k": "linear"}), (0, {"k": "cosine"})]
        assert hint.order(cands, observed) == [0, 1]

    def test_multi_feature(self):
        # score = x + 100*y
        hint = ModelBasedHint(maximize=True, min_observations=4)
        observed = [
            ({"x": float(i), "y": float(j)}, i + 100.0 * j)
            for i in range(3)
            for j in range(2)
        ]
        cands = [(0, {"x": 9.0, "y": 0.0}), (1, {"x": 0.0, "y": 9.0})]
        assert hint.order(cands, observed) == [1, 0]
