"""Coverage for task expansion and the explicit recovery-cost helper."""

from repro.cluster import Cluster, MB
from repro.cluster.fault import recover_partitions
from repro.core.datasets import Dataset
from repro.core.operators import Identity
from repro.core.stages import Stage
from repro.engine.tasks import Task, expand_stage


class TestTasks:
    def test_expand_one_task_per_partition(self):
        stage = Stage([Identity(name="op")])
        tasks = expand_stage(stage, ["w0", "w1", "w0"])
        assert len(tasks) == 3
        assert tasks[0] == Task(stage.id, 0, "w0")
        assert tasks[2].partition_index == 2

    def test_tasks_are_hashable(self):
        stage = Stage([Identity(name="op")])
        tasks = expand_stage(stage, ["w0", "w1"])
        assert len(set(tasks)) == 2


class TestRecoverPartitions:
    def test_charges_disk_reads(self):
        cluster = Cluster(2, 10 * MB)
        ds = Dataset.from_data(
            list(range(20)), num_partitions=2, dataset_id="d", nominal_bytes=4 * MB
        )
        cluster.register_dataset(ds)
        report = cluster.fail_node("worker-0")
        seconds = recover_partitions(cluster, report.lost)
        assert seconds > 0
        assert cluster.metrics.recoveries == len(report.lost)

    def test_missing_dataset_skipped(self):
        cluster = Cluster(2, 10 * MB)
        seconds = recover_partitions(cluster, [("ghost", 0)])
        assert seconds == 0.0
