"""Tests for master-driven lineage recovery (§5: failures cost real time).

The tentpole claims under test:

* a failure advances the simulated clock by *exactly* the seconds charged
  into the ``recovery_seconds`` histogram;
* choose decisions never recompute — re-executed branch tails reuse the
  master's banked scores;
* an empty injector is byte-identical to no injector at all;
* transient task failures are retried with backoff within a bounded
  budget; exhausting it decommissions the node;
* the ``recovery_sound`` validator holds on every failure run.
"""

import pytest

from repro import (
    Cluster,
    FailureInjector,
    GB,
    validate_trace,
)
from repro.cluster.fault import CheckpointConfig
from repro.core.errors import FaultError
from repro.engine import EngineConfig, run_mdf

from ..conftest import build_filter_mdf


def fresh_cluster():
    return Cluster(num_workers=4, mem_per_worker=1 * GB)


def failure_at(stage_index, node="worker-0", **kw):
    return EngineConfig(
        failures=FailureInjector.at_stages([(stage_index, node)]), **kw
    )


class TestExactCharging:
    def test_clock_advances_by_exactly_recovery_seconds(self):
        """§5 exactness: with ample memory, the failed run finishes later
        than the clean run by precisely the charged recovery seconds —
        nothing about the failure is free, and nothing extra is charged."""
        clean = run_mdf(build_filter_mdf(), fresh_cluster())
        cluster = fresh_cluster()
        failed = run_mdf(build_filter_mdf(), cluster, config=failure_at(2))
        charged = cluster.obs.value("recovery_seconds")
        assert charged > 0
        assert failed.completion_time == pytest.approx(
            clean.completion_time + charged
        )

    def test_recovery_histogram_labeled_by_node(self):
        cluster = fresh_cluster()
        run_mdf(build_filter_mdf(), cluster, config=failure_at(2, "worker-1"))
        assert cluster.obs.value("recovery_seconds", node="worker-1") > 0
        assert cluster.obs.value("recovery_seconds", node="worker-0") == 0

    def test_same_output_despite_failure(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster, config=failure_at(3))
        assert result.output == list(range(10))


class TestEmptyInjectorIsIdentity:
    def test_byte_identical_trace(self):
        """``FailureInjector()`` with no scheduled events must not perturb
        the run at all — same bytes as no injector."""
        mdf = build_filter_mdf()
        without = run_mdf(mdf, fresh_cluster())
        with_empty = run_mdf(
            mdf,
            fresh_cluster(),
            config=EngineConfig(failures=FailureInjector()),
        )
        assert with_empty.events.to_jsonl() == without.events.to_jsonl()
        assert with_empty.completion_time == without.completion_time


class TestScoresSurvive:
    def test_no_branch_reevaluated_for_its_score(self):
        """AMM + incremental choose: a mid-explore failure re-runs branch
        tails for their *bytes*, never for their scores (§5)."""
        clean = run_mdf(build_filter_mdf(), fresh_cluster(), memory="amm")
        failed = run_mdf(
            build_filter_mdf(), fresh_cluster(), memory="amm", config=failure_at(4)
        )
        assert failed.metrics.choose_evaluations == clean.metrics.choose_evaluations
        assert failed.output == clean.output
        reexecutions = failed.events.filter("stage_reexecuted")
        assert reexecutions, "the failure must force at least one re-execution"
        tails = [e for e in reexecutions if e.data["branch"] is not None]
        assert tails and all(e.data["score_reused"] for e in tails)

    def test_decision_keeps_all_three_scores(self):
        result = run_mdf(
            build_filter_mdf(), fresh_cluster(), memory="amm", config=failure_at(4)
        )
        assert len(result.decision_for("choose-min").scores) == 3


class TestValidatorsHold:
    @pytest.mark.parametrize("memory", ["lru", "amm"])
    @pytest.mark.parametrize("stage_index", [1, 2, 3, 4])
    def test_recovery_runs_validate_cleanly(self, memory, stage_index):
        result = run_mdf(
            build_filter_mdf(),
            fresh_cluster(),
            memory=memory,
            config=failure_at(stage_index),
        )
        assert validate_trace(result.events) == []

    def test_multiple_failures_validate(self):
        config = EngineConfig(
            failures=FailureInjector.at_stages(
                [(1, "worker-0"), (3, "worker-1"), (4, "worker-2")]
            )
        )
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
        assert result.output == list(range(10))
        assert validate_trace(result.events) == []


class TestCheckpointReload:
    def test_checkpointed_partitions_reload_not_recompute(self):
        config = EngineConfig(
            checkpointing=CheckpointConfig(1, overhead_fraction=0.1),
            failures=FailureInjector.at_stages([(3, "worker-0")]),
        )
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
        (started,) = result.events.filter("recovery_started")
        assert started.data["reloaded"], "checkpoint copies must reload"
        assert started.data["recomputed"] == []
        assert result.metrics.recovery_reexecutions == 0
        assert result.metrics.recoveries > 0
        assert result.output == list(range(10))

    def test_checkpointing_shrinks_the_recovery_delta(self):
        """Late in the job the lost tail's lineage is deep (its input was
        already consumed): recomputing means transiently rebuilding the
        source, while a checkpoint reloads just the lost bytes."""

        def delta(config_extra):
            mdf = build_filter_mdf()
            clean = run_mdf(
                mdf, fresh_cluster(), config=EngineConfig(**config_extra)
            )
            failed_cfg = EngineConfig(
                failures=FailureInjector.at_stages([(5, "worker-0")]),
                **config_extra,
            )
            failed = run_mdf(mdf, fresh_cluster(), config=failed_cfg)
            return failed.completion_time - clean.completion_time

        without = delta({})
        with_ckpt = delta(
            {"checkpointing": CheckpointConfig(1, overhead_fraction=0.1)}
        )
        assert with_ckpt < without


class TestTaskRetries:
    def test_retries_charged_with_backoff(self):
        clean = run_mdf(build_filter_mdf(), fresh_cluster())
        config = EngineConfig(
            failures=FailureInjector.task_failures([(2, "worker-0", 2)])
        )
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
        assert result.completion_time > clean.completion_time
        (retried,) = result.events.filter("task_retried")
        assert retried.data["attempts"] == 2
        assert retried.data["seconds"] > 0
        assert result.metrics.task_retries == 2
        assert result.output == clean.output

    def test_exhausted_retries_decommission_the_node(self):
        cluster = fresh_cluster()
        config = EngineConfig(
            failures=FailureInjector.task_failures([(2, "worker-0", 9)]),
            max_task_retries=3,
        )
        result = run_mdf(build_filter_mdf(), cluster, config=config)
        (exhausted,) = result.events.filter("task_retries_exhausted")
        assert exhausted.data["attempts"] == 9
        assert exhausted.data["max_retries"] == 3
        (decommissioned,) = result.events.filter("node_decommissioned")
        assert decommissioned.data["reason"] == "retries-exhausted"
        assert len(cluster.alive_nodes) == 3
        assert result.output == list(range(10))
        assert validate_trace(result.events) == []


class TestPermanentFailure:
    def test_survivors_absorb_the_dead_nodes_share(self):
        cluster = fresh_cluster()
        config = EngineConfig(
            failures=FailureInjector.at_stages([(2, "worker-0")], permanent=True)
        )
        result = run_mdf(build_filter_mdf(), cluster, config=config)
        assert len(cluster.alive_nodes) == 3
        (decommissioned,) = result.events.filter("node_decommissioned")
        assert decommissioned.data["node"] == "worker-0"
        assert result.output == list(range(10))
        assert validate_trace(result.events) == []
        # nothing lands on the dead node afterwards
        for event in result.events.filter("partition_stored"):
            if event.seq > decommissioned.seq:
                assert event.data["node"] != "worker-0"


class TestDeadDataDropsFree:
    def test_acc_zero_partitions_drop_without_charge(self):
        """R4 extended to recovery: losing data nothing will read again
        costs nothing — it is dropped, not recomputed or reloaded."""
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=failure_at(5))
        dropped = [
            e
            for e in result.events.filter("recovery")
            if e.data["action"] == "dropped"
        ]
        assert dropped, "the consumed source must be dropped dead, not rebuilt"
        assert all(e.data["dataset"] == "d:src" for e in dropped)
        assert result.output == list(range(10))
        assert validate_trace(result.events) == []


class TestUnfiredFailures:
    def test_unfired_event_traced_by_default(self):
        config = EngineConfig(
            failures=FailureInjector.at_stages([(99, "worker-0")])
        )
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
        (unfired,) = result.events.filter("failure_unfired")
        assert unfired.data == {
            "failure_kind": "node",
            "node": "worker-0",
            "stage_index": 99,
        }

    def test_unfired_task_failure_traced(self):
        config = EngineConfig(
            failures=FailureInjector.task_failures([(99, "worker-1", 2)])
        )
        result = run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
        (unfired,) = result.events.filter("failure_unfired")
        assert unfired.data["failure_kind"] == "task"

    def test_strict_failures_raise(self):
        config = EngineConfig(
            failures=FailureInjector.at_stages([(99, "worker-0")]),
            strict_failures=True,
        )
        with pytest.raises(FaultError, match="never fired"):
            run_mdf(build_filter_mdf(), fresh_cluster(), config=config)
