"""Pruning semantics under breadth-first scheduling.

BFS executes all branches level by level, so by the time a non-exhaustive
selection is satisfied most branches have already run — pruning saves
little.  BAS satisfies it after the minimum number of branches.  Both
must pick the same winners.
"""

import pytest

from repro import CallableEvaluator, Cluster, GB, KThreshold, MB, MDFBuilder
from repro.engine import run_mdf


CALLS = []


def counting_mdf(thresholds=(10, 100, 200, 500, 900)):
    CALLS.clear()
    builder = MDFBuilder("bfs-pruning")
    src = builder.read_data(list(range(1000)), name="src", nominal_bytes=32 * MB)

    def body(pipe, p):
        def op(xs, t=p["threshold"]):
            CALLS.append(t)
            return [x for x in xs if x < t]

        return pipe.transform(op, name=f"f{p['threshold']}")

    builder_result = src.explore(
        {"threshold": list(thresholds)}, body, name="exp"
    ).choose(CallableEvaluator(len, name="count"), KThreshold(2, 150.0), name="ch")
    builder_result.write(name="out")
    return builder.build()


class TestBfsPruning:
    def test_bas_executes_minimum(self, small_cluster):
        mdf = counting_mdf()
        result = run_mdf(mdf, small_cluster, scheduler="bas")
        # sorted order: 10 (fail), 100 (fail), 200 (pass), 500 (pass) -> done
        assert sorted(set(CALLS)) == [10, 100, 200, 500]
        assert result.decision_for("ch").kept == ["exp#2", "exp#3"]

    def test_bfs_same_winners(self):
        mdf = counting_mdf()
        result = run_mdf(mdf, Cluster(4, 1 * GB), scheduler="bfs")
        # BFS may execute more branches, but the kept set is identical
        decision = result.decision_for("ch")
        assert decision.kept == ["exp#2", "exp#3"]

    def test_bfs_executes_at_least_as_many(self):
        mdf_a = counting_mdf()
        run_mdf(mdf_a, Cluster(4, 1 * GB), scheduler="bas")
        bas_calls = len(set(CALLS))
        mdf_b = counting_mdf()
        run_mdf(mdf_b, Cluster(4, 1 * GB), scheduler="bfs")
        bfs_calls = len(set(CALLS))
        assert bfs_calls >= bas_calls

    def test_outputs_identical(self):
        a = run_mdf(counting_mdf(), Cluster(4, 1 * GB), scheduler="bas")
        b = run_mdf(counting_mdf(), Cluster(4, 1 * GB), scheduler="bfs")
        assert sorted(a.output) == sorted(b.output)
