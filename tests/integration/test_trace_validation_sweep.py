"""Acceptance sweep: the four paper-invariant validators pass on every
ready-made workload MDF (App. C listings) and on the examples' quickstart,
under both schedulers, both memory policies and under memory pressure.
"""

import pytest

from repro import Cluster, GB, MB, validate_trace
from repro.engine import run_mdf
from repro.workloads import (
    granularity_grid,
    kde_mdf,
    kde_scoped_mdf,
    normal_values,
    oil_well_trace,
    string_int_pairs,
    synthetic_mdf,
    time_series_mdf,
)

from ..golden.regenerate import load_quickstart_module

NOMINAL = 64 * MB


def workload_mdfs():
    return {
        "quickstart": load_quickstart_module().build_quickstart_mdf(),
        "kde": kde_mdf(normal_values(2000), nominal_bytes=NOMINAL),
        "kde_scoped": kde_scoped_mdf(normal_values(2000), nominal_bytes=NOMINAL),
        "time_series": time_series_mdf(
            oil_well_trace(4000), granularity_grid(9), nominal_bytes=NOMINAL
        ),
        "synthetic": synthetic_mdf(
            string_int_pairs(200), b1=3, b2=3, nominal_bytes=NOMINAL
        ),
    }


@pytest.mark.parametrize("name,mdf", sorted(workload_mdfs().items()))
@pytest.mark.parametrize("scheduler", ["bas", "bfs"])
@pytest.mark.parametrize("memory", ["amm", "lru"])
def test_workload_validates_cleanly(name, mdf, scheduler, memory):
    cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
    result = run_mdf(mdf, cluster, scheduler=scheduler, memory=memory)
    violations = validate_trace(result.events)
    assert violations == [], f"{name} under {scheduler}/{memory}: {violations}"


@pytest.mark.parametrize("name,mdf", sorted(workload_mdfs().items()))
def test_workload_validates_under_memory_pressure(name, mdf):
    cluster = Cluster(num_workers=4, mem_per_worker=96 * MB)
    result = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
    violations = validate_trace(result.events)
    assert violations == [], f"{name} under pressure: {violations}"
