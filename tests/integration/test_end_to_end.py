"""Integration tests: full workloads end-to-end across execution modes."""

import numpy as np
import pytest

from repro import Cluster, GB, MB
from repro.baselines import (
    pick_best,
    run_parallel,
    run_sequential,
    seep_bfs,
    seep_mdf,
    spark_cache,
)
from repro.engine import EngineConfig, run_mdf
from repro.workloads import (
    MLPTrainer,
    cifar_like,
    deep_learning_mdf,
    granularity_grid,
    kde_combinations,
    kde_job,
    kde_mdf,
    normal_values,
    oil_well_trace,
    string_int_pairs,
    synthetic_combinations,
    synthetic_job,
    synthetic_mdf,
    time_series_combinations,
    time_series_job,
    time_series_mdf,
)

NOMINAL = 64 * MB


class TestQuickstartDocExample:
    def test_module_docstring_example_runs(self):
        """The README/`repro` docstring example must work verbatim."""
        from repro import CallableEvaluator, MDFBuilder, Min, run_mdf as run

        b = MDFBuilder("quickstart")
        src = b.read_data(list(range(1000)), nominal_bytes=64 * 1024 * 1024)
        result = src.explore(
            {"threshold": [10, 100, 500]},
            lambda pipe, p: pipe.transform(
                lambda xs, t=p["threshold"]: [x for x in xs if x < t],
                name=f"filter-{p['threshold']}",
            ),
        ).choose(CallableEvaluator(len), Min())
        result.write()
        mdf = b.build()
        job = run(mdf, Cluster(num_workers=4, mem_per_worker=GB))
        assert job.output == list(range(10))
        assert job.completion_time > 0


class TestTimeSeriesEndToEnd:
    def test_mdf_and_sequential_detect_same_sequences(self):
        trace = oil_well_trace(8000)
        grid = granularity_grid(16)
        cluster = Cluster(4, 1 * GB)
        mdf_result = seep_mdf(
            time_series_mdf(trace, grid, nominal_bytes=NOMINAL), cluster
        )
        kept = mdf_result.decision_for("choose-mask").kept
        # re-run the kept configurations as individual jobs: the union of
        # their detections equals the MDF's output rows
        combos = time_series_combinations(grid)
        kept_indices = [int(b.split("#")[1]) for b in kept]
        jobs = [
            time_series_job(trace, combos[i], grid, nominal_bytes=NOMINAL)
            for i in kept_indices
        ]
        family = run_sequential(jobs, cluster)
        job_rows = sorted(
            tuple(row) for out in family.outputs() for row in np.asarray(out)
        )
        mdf_rows = sorted(tuple(row) for row in np.asarray(mdf_result.output))
        assert mdf_rows == job_rows

    def test_mdf_fastest(self):
        trace = oil_well_trace(5000)
        grid = granularity_grid(16)
        cluster = Cluster(4, 1 * GB)
        jobs = [
            time_series_job(trace, p, grid, nominal_bytes=NOMINAL)
            for p in time_series_combinations(grid)
        ]
        seq = run_sequential(jobs, cluster)
        mdf = seep_mdf(time_series_mdf(trace, grid, nominal_bytes=NOMINAL), cluster)
        assert mdf.completion_time < seq.completion_time


class TestKdeEndToEnd:
    def test_mdf_winner_at_least_as_good_as_family_best(self):
        values = normal_values(4000)
        cluster = Cluster(4, 1 * GB)
        mdf_result = seep_mdf(kde_mdf(values, nominal_bytes=NOMINAL), cluster)
        winner = mdf_result.output[0]
        jobs = [kde_job(values, p, nominal_bytes=NOMINAL) for p in kde_combinations()]
        family = run_sequential(jobs, cluster)
        holdout = normal_values(100, seed=99)
        best = pick_best(
            family, lambda out: out[0].log_likelihood(holdout), maximize=True
        )
        # the MDF's hold-out set differs, so allow a small tolerance
        assert winner.log_likelihood(holdout) >= best[0].log_likelihood(holdout) - 0.25


class TestDeepLearningEndToEnd:
    def test_early_choose_much_cheaper_than_exhaustive(self):
        data = cifar_like(300, features=32, seed=2)
        trainer = MLPTrainer(hidden=8, epochs=1, seed=1)
        cluster = Cluster(4, 1 * GB)
        exhaustive = seep_mdf(
            deep_learning_mdf(
                data, mode="exhaustive", trainer=trainer, nominal_bytes=NOMINAL
            ),
            cluster,
        )
        early = seep_mdf(
            deep_learning_mdf(
                data, mode="early_choose", trainer=trainer, nominal_bytes=NOMINAL
            ),
            cluster,
        )
        assert early.completion_time < 0.5 * exhaustive.completion_time


class TestSparkBaselinesEndToEnd:
    def test_ordering_with_memory_pressure(self):
        pairs = string_int_pairs(600)
        nominal = int(2.5 * GB)
        cluster = Cluster(8, 1 * GB)
        mdf = synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=nominal)
        jobs = [
            synthetic_job(pairs, p, nominal_bytes=nominal)
            for p in synthetic_combinations(4, 4)
        ]
        seq = run_sequential(jobs, cluster)
        par = run_parallel(jobs, cluster, k=4)
        cache = spark_cache(mdf, cluster)
        bfs = seep_bfs(mdf, cluster)
        best = seep_mdf(mdf, cluster)
        assert best.completion_time <= cache.completion_time * 1.05
        assert best.completion_time < bfs.completion_time
        assert best.completion_time < par.completion_time < seq.completion_time


class TestMetricsConsistency:
    def test_bytes_accounting(self):
        mdf = synthetic_mdf(string_int_pairs(300), b1=3, b2=3, nominal_bytes=NOMINAL)
        result = seep_mdf(mdf, Cluster(4, 128 * MB))
        m = result.metrics
        assert m.bytes_read_memory >= 0 and m.bytes_read_disk >= 0
        assert 0.0 <= m.memory_hit_ratio <= 1.0
        assert m.stages_executed > 0
        assert m.tasks_executed >= m.stages_executed

    def test_walls_do_not_exceed_completion(self):
        mdf = synthetic_mdf(string_int_pairs(300), b1=3, b2=3, nominal_bytes=NOMINAL)
        result = seep_mdf(mdf, Cluster(4, 1 * GB))
        assert result.wall_compute <= result.completion_time + 1e-9
        assert result.wall_io <= result.completion_time + 1e-9
