"""Smoke tests running every example script end-to-end.

Examples are documentation that executes; these tests keep them honest.
Each runs in a subprocess exactly as a user would invoke it (with reduced
workloads where the script supports arguments)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "kept branch" in out

    def test_sensor_profiling(self):
        out = run_example("sensor_profiling.py")
        assert "winning estimate" in out
        assert "pruned" in out

    def test_oil_well_monitoring(self):
        out = run_example("oil_well_monitoring.py")
        assert "MDF (first-4, sorted hints)" in out
        assert "event sequences" in out

    def test_hyperparameter_search(self):
        out = run_example("hyperparameter_search.py")
        assert "early-choose saves" in out

    def test_cross_validation(self):
        out = run_example("cross_validation.py")
        assert "learned slope" in out
        assert "never executed" in out

    def test_sensor_fusion(self):
        out = run_example("sensor_fusion.py")
        assert "fused points" in out

    def test_cost_planning(self):
        out = run_example("cost_planning.py")
        assert "within bracket" in out
        assert "OUTSIDE" not in out

    def test_reproduce_paper_single_figure(self):
        out = run_example("reproduce_paper.py", "table1", "appendix_b")
        assert "all shape checks passed" in out
