"""Stress tests: the engine itself must scale to paper-sized MDFs."""

import time

import numpy as np
import pytest

from repro import CallableEvaluator, Cluster, GB, MB, MDFBuilder, Threshold
from repro.engine import run_mdf
from repro.workloads import granularity_grid, oil_well_trace, time_series_mdf


class TestLargeMdfs:
    def test_1024_branch_mdf_completes_quickly(self):
        """The paper's largest sweep: 1024 branches in one MDF.

        This guards the engine's own complexity — scheduling, readiness
        tracking and lifecycle bookkeeping must stay near-linear in the
        number of stages."""
        trace = oil_well_trace(5_000)
        grid = granularity_grid(1024)
        mdf = time_series_mdf(trace, grid, nominal_bytes=64 * MB)
        start = time.time()
        result = run_mdf(mdf, Cluster(8, 2 * GB))
        wall = time.time() - start
        assert len(result.decision_for("choose-mask").scores) == 1024
        assert wall < 60.0, f"engine took {wall:.1f}s for 1024 branches"

    def test_wide_flat_explore(self):
        """A single explore with 500 branches (large fan-out, §4.3)."""
        b = MDFBuilder("wide")
        src = b.read_data(list(range(100)), name="src", nominal_bytes=64 * MB)
        src.explore(
            {"i": list(range(500))},
            lambda pipe, p: pipe.transform(
                lambda xs, i=p["i"]: xs[: (i % 50) + 1], name=f"take-{p['i']}"
            ),
            name="exp",
        ).choose(
            CallableEvaluator(len, name="n"), Threshold(25.0), name="ch"
        ).write()
        mdf = b.build()
        start = time.time()
        result = run_mdf(mdf, Cluster(4, 1 * GB))
        wall = time.time() - start
        decision = result.decision_for("ch")
        assert len(decision.scores) == 500
        assert wall < 30.0

    def test_deep_nesting(self):
        """Three levels of nested explores execute correctly."""
        b = MDFBuilder("deep")
        src = b.read_data(list(range(20)), name="src", nominal_bytes=8 * MB)
        score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")
        from repro import Max

        def level3(pipe, p):
            return pipe.transform(
                lambda xs, m=p["c"]: [x + m for x in xs],
                name=f"l3-{p['_path']}-{p['c']}",
            )

        def level2(pipe, p):
            path = f"{p['_path']}-{p['b']}"
            return pipe.explore(
                {"c": [1, 2], "_path": [path]}, level3, name=f"e3-{path}"
            ).choose(score, Max(), name=f"c3-{path}")

        def level1(pipe, p):
            path = str(p["a"])
            first = pipe.transform(
                lambda xs, m=p["a"]: [x * m for x in xs], name=f"l1-{path}"
            )
            return first.explore(
                {"b": [1, 2], "_path": [path]}, level2, name=f"e2-{path}"
            ).choose(score, Max(), name=f"c2-{path}")

        b_out = src.explore({"a": [2, 3]}, level1, name="e1").choose(
            score, Max(), name="c1"
        )
        b_out.write()
        mdf = b.build()
        assert len(mdf.scopes) == 1 + 2 + 4
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        # best: a=3, then +2 at the innermost level
        assert result.output == [x * 3 + 2 for x in range(20)]

    def test_determinism_across_runs(self):
        """Two fresh runs of the same large MDF are bit-identical."""
        trace = oil_well_trace(3_000)
        grid = granularity_grid(64)
        mdf = time_series_mdf(trace, grid, nominal_bytes=64 * MB)
        a = run_mdf(mdf, Cluster(8, 1 * GB))
        b = run_mdf(mdf, Cluster(8, 1 * GB))
        assert a.completion_time == b.completion_time
        assert np.array_equal(np.asarray(a.output), np.asarray(b.output))
        # stage ids are per-run counters; the executed op sequence is what
        # must repeat exactly
        assert [t.ops for t in a.trace] == [t.ops for t in b.trace]
