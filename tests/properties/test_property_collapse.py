"""Property-based validation of Theorem 4.3 on collapsed MDFs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collapse import CollapsedMDF


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_dfs_peak_never_exceeds_bfs(branching, depth):
    mdf = CollapsedMDF(branching, depth)
    assert mdf.peak_datasets("dfs") <= mdf.peak_datasets("bfs")


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_dfs_total_never_exceeds_bfs(branching, depth):
    mdf = CollapsedMDF(branching, depth)
    assert mdf.total_dataset_steps("dfs") <= mdf.total_dataset_steps("bfs")


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_alive_counts_always_positive(branching, depth):
    mdf = CollapsedMDF(branching, depth)
    for strategy in ("dfs", "bfs"):
        trace = mdf.simulate(strategy)
        assert all(entry.alive_datasets >= 1 for entry in trace)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_bfs_peak_formula(branching, depth):
    """BFS must hold at least one full level of datasets at its peak."""
    mdf = CollapsedMDF(branching, depth)
    assert mdf.peak_datasets("bfs") >= branching**depth


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_both_end_with_single_result(branching, depth):
    """After the root's choose, exactly one dataset remains."""
    mdf = CollapsedMDF(branching, depth)
    for strategy in ("dfs", "bfs"):
        trace = mdf.simulate(strategy)
        assert trace[-1].alive_datasets == 1
