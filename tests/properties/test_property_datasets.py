"""Property-based tests for the data model: split/concat roundtrips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.datasets import Dataset, concat_payloads, split_payload

int_lists = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=100)
part_counts = st.integers(min_value=1, max_value=12)


@given(int_lists, part_counts)
def test_list_split_concat_roundtrip(data, n):
    assert concat_payloads(split_payload(list(data), n)) == list(data)


@given(int_lists, part_counts)
def test_split_preserves_order_and_count(data, n):
    chunks = split_payload(list(data), n)
    flattened = [x for chunk in chunks for x in chunk]
    assert flattened == list(data)


@given(int_lists, part_counts)
def test_chunk_sizes_balanced(data, n):
    chunks = split_payload(list(data), n)
    sizes = [len(c) for c in chunks]
    if sizes:
        assert max(sizes) - min(sizes) <= 1


@given(
    arrays(np.int64, st.integers(min_value=0, max_value=200)),
    part_counts,
)
@settings(max_examples=40)
def test_numpy_split_concat_roundtrip(data, n):
    out = concat_payloads(split_payload(data, n))
    if data.size == 0 and not isinstance(out, np.ndarray):
        return  # degenerate: empty arrays concat to empty
    assert np.array_equal(out, data)


@given(int_lists, part_counts, st.integers(min_value=1, max_value=10**9))
def test_dataset_nominal_bytes_conserved(data, n, nominal):
    ds = Dataset.from_data(list(data), num_partitions=n, nominal_bytes=nominal)
    total = ds.nominal_bytes
    # divided evenly: integer division loses at most n bytes, while the
    # one-byte-per-partition floor can add at most n bytes
    assert abs(nominal - total) <= ds.num_partitions * ds.num_partitions + ds.num_partitions
    assert ds.collect() == list(data)


@given(int_lists, int_lists)
def test_concat_is_associative_on_collect(a, b):
    da = Dataset.from_data(list(a), num_partitions=2)
    db = Dataset.from_data(list(b), num_partitions=3)
    assert (da + db).collect() == list(a) + list(b)
