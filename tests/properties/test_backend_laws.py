"""Property tests: backend choice never changes a simulated byte.

For sampled (zoo workload × scheduler) cells, a run on the ``mp``
process-pool backend must be indistinguishable from the ``serial``
reference everywhere the simulation can be observed:

* **outputs** — identical final sink values;
* **clock** — identical simulated completion time;
* **trace** — the canonical JSONL export matches byte for byte;
* **validators** — the paper-invariant checkers stay clean;
* **telemetry** — the live metrics registries agree on every
  consistency view (``diff_registries`` returns no mismatches).

Only real wall-clock time may differ.  Run just these with
``pytest -m backend_laws``.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lab.workloads import available_workloads, get_workload
from repro.obs.bridge import diff_registries
from repro.trace.validate import validate_trace

pytestmark = pytest.mark.backend_laws

fork_available = "fork" in multiprocessing.get_all_start_methods()

workloads = st.sampled_from(available_workloads("smoke"))
schedulers = st.sampled_from(["bas", "bfs"])


@pytest.mark.skipif(
    not fork_available, reason="mp backend parallelism needs the fork start method"
)
@given(workload=workloads, scheduler=schedulers)
@settings(max_examples=6, deadline=None)
def test_mp_backend_is_byte_identical(workload, scheduler):
    subject = get_workload(workload)
    serial_result, serial_cluster = subject.run(
        scheduler=scheduler, memory="amm", backend="serial"
    )
    mp_result, mp_cluster = subject.run(
        scheduler=scheduler, memory="amm", backend="mp"
    )
    assert repr(mp_result.outputs) == repr(serial_result.outputs)
    assert mp_result.completion_time == serial_result.completion_time
    assert mp_result.events.to_jsonl() == serial_result.events.to_jsonl()
    assert validate_trace(mp_result.events) == []
    assert diff_registries(serial_cluster.obs, mp_cluster.obs) == []
