"""Property tests: the four paper invariants hold on random MDF graphs.

Random one- and two-level explore/choose MDFs are executed under every
scheduler × memory-policy × incremental-choose combination — with and
without memory pressure and with monotone evaluators that trigger pruning
— and each run's decision trace must satisfy all four validators:
depth-first scheduling (Alg. 1), AMM's ``pre(d)`` eviction ranking
(Alg. 2), Table 1 pruning soundness, and no use-after-discard (R3).

Run just these with ``pytest -m trace_invariants``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
    TopK,
    validate_trace,
)
from repro.engine import EngineConfig, run_mdf

pytestmark = pytest.mark.trace_invariants

multipliers = st.lists(
    st.integers(min_value=1, max_value=97), min_size=2, max_size=5, unique=True
)
thresholds = st.lists(
    st.integers(min_value=1, max_value=400), min_size=2, max_size=6, unique=True
)
schedulers = st.sampled_from(["bas", "bfs"])
policies = st.sampled_from(["amm", "lru"])


def flat_mdf(mults, monotone):
    """One explore over multipliers; Min over sums (monotone ⇒ pruning)."""
    builder = MDFBuilder("prop-flat")
    src = builder.read_data(list(range(1, 40)), name="src", nominal_bytes=32 * MB)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum", monotone=monotone)
    result = src.explore(
        {"m": list(mults)},
        lambda pipe, p: pipe.transform(
            lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul-{p['m']}"
        ),
        name="exp",
    ).choose(score, Min(), name="ch")
    result.write(name="out")
    return builder.build()


def nested_mdf(mults, ts):
    """Outer explore over multipliers, inner explore over filter thresholds."""
    builder = MDFBuilder("prop-nested")
    src = builder.read_data(list(range(1, 60)), name="src", nominal_bytes=32 * MB)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")

    def inner_branch(pipe, p):
        return pipe.transform(
            lambda xs, t=p["t"]: [x for x in xs if x < t], name=f"f-{p['_o']}-{p['t']}"
        )

    def outer_branch(pipe, p):
        first = pipe.transform(
            lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul-{p['m']}"
        )
        return first.explore(
            {"t": list(ts), "_o": [p["m"]]}, inner_branch, name=f"inner-{p['m']}"
        ).choose(score, TopK(1), name=f"ic-{p['m']}")

    result = src.explore({"m": list(mults)}, outer_branch, name="outer").choose(
        score, TopK(1), name="oc"
    )
    result.write(name="out")
    return builder.build()


@given(multipliers, schedulers, policies, st.booleans(), st.booleans())
@settings(max_examples=30, deadline=None)
def test_flat_mdf_satisfies_all_invariants(mults, scheduler, policy, incremental, monotone):
    mdf = flat_mdf(mults, monotone)
    result = run_mdf(
        mdf,
        Cluster(3, 1 * GB),
        scheduler=scheduler,
        memory=policy,
        config=EngineConfig(incremental_choose=incremental),
    )
    assert validate_trace(result.events) == []


@given(multipliers, thresholds, schedulers, policies)
@settings(max_examples=20, deadline=None)
def test_nested_mdf_satisfies_all_invariants(mults, ts, scheduler, policy):
    mdf = nested_mdf(mults, ts)
    result = run_mdf(mdf, Cluster(3, 1 * GB), scheduler=scheduler, memory=policy)
    assert validate_trace(result.events) == []


@given(multipliers, schedulers, policies)
@settings(max_examples=15, deadline=None)
def test_memory_pressure_preserves_invariants(mults, scheduler, policy):
    """A starved cluster evicts constantly; every eviction must still obey
    the recorded policy's ranking and R3/R4."""
    mdf = flat_mdf(mults, monotone=False)
    result = run_mdf(mdf, Cluster(3, 16 * MB), scheduler=scheduler, memory=policy)
    assert len(result.events.filter("partition_evicted")) > 0
    assert validate_trace(result.events) == []


@given(multipliers, thresholds, schedulers)
@settings(max_examples=10, deadline=None)
def test_nested_under_pressure_with_amm(mults, ts, scheduler):
    mdf = nested_mdf(mults, ts)
    result = run_mdf(mdf, Cluster(3, 24 * MB), scheduler=scheduler, memory="amm")
    assert validate_trace(result.events) == []


def concrete_job(m):
    """One member of the flat family as an independent dataflow job."""
    builder = MDFBuilder(f"job-{m}")
    src = builder.read_data(list(range(1, 40)), name="src", nominal_bytes=32 * MB)
    src.transform(lambda xs, m=m: [x * m for x in xs], name=f"mul-{m}").write(name="out")
    return builder.build()


@given(multipliers, policies, st.sampled_from(["sequential", "parallel"]))
@settings(max_examples=10, deadline=None)
def test_baseline_runners_satisfy_invariants(mults, policy, baseline):
    """The seq/k-parallel baselines route through run_mdf too; every
    constituent job's trace must validate (vacuously for bfs/lru)."""
    from repro.baselines import run_parallel, run_sequential

    jobs = [concrete_job(m) for m in mults]
    cluster = Cluster(3, 1 * GB)
    if baseline == "sequential":
        result = run_sequential(jobs, cluster, memory=policy)
    else:
        result = run_parallel(jobs, cluster, k=2, memory=policy)
    assert result.jobs
    for job_result in result.jobs:
        assert validate_trace(job_result.events) == []


@given(multipliers, st.booleans())
@settings(max_examples=15, deadline=None)
def test_pruning_runs_emit_justified_prunes_only(mults, incremental):
    """Monotone Min pruning fires on sorted multiplier branches; every
    prune event must carry a Table 1 justification that checks out."""
    mdf = flat_mdf(mults, monotone=True)
    result = run_mdf(
        mdf, Cluster(3, 1 * GB), config=EngineConfig(incremental_choose=incremental)
    )
    pruned = result.events.filter("branch_pruned")
    assert len(pruned) == result.metrics.branches_pruned
    assert validate_trace(result.events) == []
