"""Property-based tests for stage derivation over random MDF shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CallableEvaluator, MDFBuilder, Max, MB
from repro.core.stages import StageGraph

branch_counts = st.integers(min_value=2, max_value=6)
chain_lengths = st.integers(min_value=1, max_value=5)
pre_lengths = st.integers(min_value=0, max_value=3)
post_lengths = st.integers(min_value=0, max_value=3)


def build(branches, chain, pre, post):
    builder = MDFBuilder("random-shape")
    pipe = builder.read_data(list(range(10)), name="src", nominal_bytes=MB)
    for i in range(pre):
        pipe = pipe.identity(name=f"pre-{i}")

    def body(p, params):
        for j in range(chain):
            p = p.identity(name=f"b{params['i']}-{j}")
        return p

    pipe = pipe.explore(
        {"i": list(range(branches))}, body, name="exp"
    ).choose(CallableEvaluator(len, name="n"), Max(), name="ch")
    for i in range(post):
        pipe = pipe.identity(name=f"post-{i}")
    pipe.write(name="out")
    return builder.build()


@given(branch_counts, chain_lengths, pre_lengths, post_lengths)
@settings(max_examples=40, deadline=None)
def test_stages_partition_operators(branches, chain, pre, post):
    """Every operator belongs to exactly one stage."""
    mdf = build(branches, chain, pre, post)
    sg = StageGraph(mdf)
    assigned = [op.name for stage in sg.stages for op in stage.ops]
    assert sorted(assigned) == sorted(op.name for op in mdf.operators)
    assert len(assigned) == len(set(assigned))


@given(branch_counts, chain_lengths, pre_lengths, post_lengths)
@settings(max_examples=40, deadline=None)
def test_stage_count_formula(branches, chain, pre, post):
    """src+pre chain | explore | B branch chains | choose | post+sink."""
    mdf = build(branches, chain, pre, post)
    sg = StageGraph(mdf)
    assert len(sg) == 1 + 1 + branches + 1 + 1


@given(branch_counts, chain_lengths, pre_lengths, post_lengths)
@settings(max_examples=30, deadline=None)
def test_stage_graph_is_acyclic_and_ordered(branches, chain, pre, post):
    mdf = build(branches, chain, pre, post)
    sg = StageGraph(mdf)
    order = sg.topological_stages()
    assert len(order) == len(sg.stages)
    position = {s.id: i for i, s in enumerate(order)}
    for stage in sg.stages:
        for pred in sg.pre(stage):
            assert position[pred.id] < position[stage.id]


@given(branch_counts, chain_lengths)
@settings(max_examples=30, deadline=None)
def test_branch_chains_fuse_into_single_stages(branches, chain):
    """All narrow operators of one branch share one stage."""
    mdf = build(branches, chain, 0, 0)
    sg = StageGraph(mdf)
    for scope in mdf.scopes.values():
        for branch in scope.branches:
            stage_ids = {sg.stage_of(op).id for op in branch.ops}
            assert len(stage_ids) == 1
