"""Property-based tests for selection functions (hypothesis).

Invariants: kept branches are a subset of the offered ones; the winner of
Min/Max is the true extremum; top-k keeps exactly min(k, n); incremental
decisions never resurrect a discarded branch; the non-exhaustive ``done``
flag never fires before k acceptances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    Interval,
    KInterval,
    KThreshold,
    Max,
    Min,
    Mode,
    Threshold,
    TopK,
)

score_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


def scored(values):
    return [(f"b{i}", v) for i, v in enumerate(values)]


@given(score_lists, st.integers(min_value=1, max_value=10), st.booleans())
def test_topk_size_and_membership(values, k, largest):
    kept = TopK(k, largest).select(scored(values))
    assert len(kept) == min(k, len(values))
    ids = {f"b{i}" for i in range(len(values))}
    assert set(kept) <= ids


@given(score_lists, st.integers(min_value=1, max_value=10), st.booleans())
def test_topk_keeps_extremes(values, k, largest):
    kept = TopK(k, largest).select(scored(values))
    kept_scores = sorted((values[int(b[1:])] for b in kept), reverse=largest)
    all_sorted = sorted(values, reverse=largest)
    assert kept_scores == all_sorted[: len(kept)]


@given(score_lists)
def test_max_is_argmax(values):
    (winner,) = Max().select(scored(values))
    assert values[int(winner[1:])] == max(values)


@given(score_lists)
def test_min_is_argmin(values):
    (winner,) = Min().select(scored(values))
    assert values[int(winner[1:])] == min(values)


@given(score_lists, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_threshold_keeps_exactly_passers(values, threshold):
    kept = set(Threshold(threshold).select(scored(values)))
    expected = {f"b{i}" for i, v in enumerate(values) if v >= threshold}
    assert kept == expected


@given(
    score_lists,
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_interval_membership(values, low, width):
    kept = Interval(low, low + width).select(scored(values))
    for b in kept:
        v = values[int(b[1:])]
        assert low <= v <= low + width


@given(
    score_lists,
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
)
def test_kthreshold_prefix_property(values, k, threshold):
    """Kept ids are exactly the first k passers in offer order."""
    kept = KThreshold(k, threshold).select(scored(values))
    passers = [f"b{i}" for i, v in enumerate(values) if v >= threshold]
    assert kept == passers[:k]


@given(score_lists, st.integers(min_value=1, max_value=5))
def test_kthreshold_done_not_before_k(values, k):
    selector = KThreshold(k, 0.0).incremental()
    accepted = 0
    for i, v in enumerate(values):
        decision = selector.offer(f"b{i}", v)
        if f"b{i}" not in decision.discarded and v >= 0.0 and accepted < k:
            accepted += 1
        if decision.done:
            assert accepted >= k
            break


@given(score_lists)
def test_mode_kept_share_one_score(values):
    kept = Mode().select(scored(values))
    assert kept, "mode always keeps at least one branch"
    kept_scores = {round(values[int(b[1:])], 9) for b in kept}
    assert len(kept_scores) == 1


@given(score_lists, st.integers(min_value=1, max_value=10), st.booleans())
@settings(max_examples=60)
def test_incremental_never_resurrects(values, k, largest):
    """Once a branch is discarded it never reappears in the final set."""
    selector = TopK(k, largest).incremental()
    discarded = set()
    for i, v in enumerate(values):
        decision = selector.offer(f"b{i}", v)
        discarded |= decision.discarded
    final = set(selector.finalize())
    assert not (final & discarded)


@given(score_lists, st.integers(min_value=1, max_value=8))
def test_topk_insensitive_to_offer_order(values, k):
    """The kept score multiset is order-independent for top-k."""
    forward = TopK(k).select(scored(values))
    backward = TopK(k).select(list(reversed(scored(values))))
    f_scores = sorted(values[int(b[1:])] for b in forward)
    b_scores = sorted(values[int(b[1:])] for b in backward)
    assert f_scores == b_scores
