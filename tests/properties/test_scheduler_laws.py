"""Property tests: the scheduler contract holds on random DAGs.

For random one- and two-level explore/choose MDFs and *every* registered
scheduling policy:

* **ready-set law** — every ``stage_scheduled`` event picks a stage from
  the ready set the master offered (nothing else is executable);
* **no starvation** — the job completes with every non-pruned stage
  executed exactly once;
* **when-not-what** — all policies agree with ``bfs`` on the final
  outputs and kept branches;
* **Algorithm 1** — BAS traces additionally satisfy ``check_depth_first``.

Run just these with ``pytest -m scheduler_laws``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Max,
    Min,
    check_depth_first,
    validate_trace,
)
from repro.engine import run_mdf
from repro.engine.policies import available_schedulers

pytestmark = pytest.mark.scheduler_laws

multipliers = st.lists(
    st.integers(min_value=1, max_value=97), min_size=2, max_size=6, unique=True
)
schedulers = st.sampled_from(available_schedulers())


def flat_mdf(mults):
    """One explore over multipliers; Min over sums (distinct scores)."""
    builder = MDFBuilder("law-flat")
    src = builder.read_data(list(range(1, 40)), name="src", nominal_bytes=24 * MB)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")
    result = src.explore(
        {"m": list(mults)},
        lambda pipe, p: pipe.transform(
            lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul-{p['m']}"
        ),
        name="exp",
    ).choose(score, Min(), name="ch")
    result.write(name="out")
    return builder.build()


def nested_mdf(outer_mults, inner_mults):
    """Outer × inner explores, Max per scope (distinct products)."""
    builder = MDFBuilder("law-nested")
    src = builder.read_data(list(range(1, 30)), name="src", nominal_bytes=24 * MB)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")

    def outer_branch(pipe, p):
        first = pipe.transform(
            lambda xs, m=p["o"]: [x * m for x in xs], name=f"mul-{p['o']}"
        )
        return first.explore(
            {"i": list(inner_mults), "_o": [p["o"]]},
            lambda q, r: q.transform(
                lambda xs, m=r["i"]: [x * m for x in xs],
                name=f"mul-{r['_o']}-{r['i']}",
            ),
            name=f"exp-in-{p['o']}",
        ).choose(score, Max(), name=f"ch-in-{p['o']}")

    result = src.explore(
        {"o": list(outer_mults)}, outer_branch, name="exp-out"
    ).choose(score, Max(), name="ch-out")
    result.write(name="out")
    return builder.build()


def run_one(mdf, scheduler, workers=2, mem=1 * GB):
    cluster = Cluster(num_workers=workers, mem_per_worker=mem)
    return run_mdf(mdf, cluster, scheduler=scheduler, memory="amm")


def assert_ready_set_law(trace):
    """Every scheduled stage was a member of the offered ready set."""
    for event in trace.filter("stage_scheduled"):
        assert event.data["stage"] in event.data["ready"], (
            f"scheduler picked {event.data['stage']!r} outside the ready "
            f"set {event.data['ready']}"
        )


def assert_no_starvation(result, trace):
    """The job finished and each scheduled stage ran exactly once.

    Worker stages outnumber ``stages_executed`` never — the scheduled
    list also contains master-side metadata stages (explore/choose),
    which execute at zero cost and are not counted as executed stages."""
    scheduled = [e.data["stage"] for e in trace.filter("stage_scheduled")]
    assert len(scheduled) == len(set(scheduled)), "a stage was scheduled twice"
    assert result.metrics.stages_executed <= len(scheduled)
    assert result.outputs, "job finished without producing its sink output"


@given(scheduler=schedulers, mults=multipliers)
@settings(max_examples=25, deadline=None)
def test_flat_laws(scheduler, mults):
    result = run_one(flat_mdf(mults), scheduler)
    assert_ready_set_law(result.events)
    assert_no_starvation(result, result.events)
    assert validate_trace(result.events) == []


@given(
    scheduler=schedulers,
    outer=st.lists(
        st.integers(min_value=2, max_value=19), min_size=2, max_size=3, unique=True
    ),
    inner=st.lists(
        st.integers(min_value=23, max_value=97), min_size=2, max_size=3, unique=True
    ),
)
@settings(max_examples=15, deadline=None)
def test_nested_laws(scheduler, outer, inner):
    result = run_one(nested_mdf(outer, inner), scheduler)
    assert_ready_set_law(result.events)
    assert_no_starvation(result, result.events)
    assert validate_trace(result.events) == []


@given(mults=multipliers)
@settings(max_examples=15, deadline=None)
def test_all_policies_agree_on_what(mults):
    """when-not-what at property scale: every policy, same answers."""
    reference = run_one(flat_mdf(mults), "bfs")
    for scheduler in available_schedulers():
        contender = run_one(flat_mdf(mults), scheduler)
        assert repr(contender.outputs) == repr(reference.outputs)
        assert {n: d.kept for n, d in contender.decisions.items()} == {
            n: d.kept for n, d in reference.decisions.items()
        }


@given(mults=multipliers)
@settings(max_examples=15, deadline=None)
def test_bas_satisfies_depth_first(mults):
    """Algorithm 1's own law: BAS traces pass the depth-first validator."""
    result = run_one(flat_mdf(mults), "bas")
    assert check_depth_first(result.events) == []
