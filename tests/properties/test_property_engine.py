"""Property-based tests over randomly generated MDFs and the engine.

Core invariant: the engine's outcome (winner, final output) is the same
for every scheduler × memory-policy × incremental combination — the
optimisations change *when* and *where* data lives, never *what* is
computed — and it always matches a direct Python evaluation of the family.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CallableEvaluator, Cluster, GB, MB, MDFBuilder, Max, TopK
from repro.engine import EngineConfig, run_mdf

multipliers = st.lists(
    st.integers(min_value=1, max_value=97), min_size=2, max_size=5, unique=True
)
data_sizes = st.integers(min_value=4, max_value=60)


def build_mdf(mults, n):
    builder = MDFBuilder("prop")
    src = builder.read_data(list(range(1, n + 1)), name="src", nominal_bytes=32 * MB)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")
    result = src.explore(
        {"m": list(mults)},
        lambda pipe, p: pipe.transform(
            lambda xs, m=p["m"]: [x * m for x in xs], name=f"mul-{p['m']}"
        ),
        name="exp",
    ).choose(score, Max(), name="ch")
    result.write(name="out")
    return builder.build()


def expected_output(mults, n):
    best = max(mults)
    return [x * best for x in range(1, n + 1)]


@given(multipliers, data_sizes)
@settings(max_examples=25, deadline=None)
def test_engine_matches_direct_evaluation(mults, n):
    mdf = build_mdf(mults, n)
    result = run_mdf(mdf, Cluster(3, 1 * GB))
    assert result.output == expected_output(mults, n)


@given(multipliers, data_sizes, st.sampled_from(["bas", "bfs"]), st.booleans())
@settings(max_examples=25, deadline=None)
def test_outcome_invariant_under_execution_strategy(mults, n, scheduler, incremental):
    mdf = build_mdf(mults, n)
    result = run_mdf(
        mdf,
        Cluster(3, 1 * GB),
        scheduler=scheduler,
        memory="amm" if incremental else "lru",
        config=EngineConfig(incremental_choose=incremental),
    )
    assert result.output == expected_output(mults, n)


@given(multipliers, data_sizes)
@settings(max_examples=15, deadline=None)
def test_memory_pressure_does_not_change_results(mults, n):
    """A starved cluster spills constantly but must compute the same answer."""
    mdf = build_mdf(mults, n)
    roomy = run_mdf(build_mdf(mults, n), Cluster(3, 1 * GB))
    tight = run_mdf(mdf, Cluster(3, 16 * MB))
    assert tight.output == roomy.output
    assert tight.completion_time >= roomy.completion_time


@given(multipliers, data_sizes)
@settings(max_examples=15, deadline=None)
def test_all_branches_scored_or_pruned(mults, n):
    mdf = build_mdf(mults, n)
    result = run_mdf(mdf, Cluster(3, 1 * GB))
    decision = result.decision_for("ch")
    assert len(decision.scores) + len(decision.pruned) == len(mults)


@given(multipliers, data_sizes)
@settings(max_examples=15, deadline=None)
def test_clock_monotone_in_trace(mults, n):
    result = run_mdf(build_mdf(mults, n), Cluster(3, 1 * GB))
    finishes = [t.finished for t in result.trace]
    assert finishes == sorted(finishes)
    assert all(t.started <= t.finished for t in result.trace)


@given(multipliers, data_sizes)
@settings(max_examples=15, deadline=None)
def test_hit_ratio_in_unit_interval(mults, n):
    result = run_mdf(build_mdf(mults, n), Cluster(3, 64 * MB))
    assert 0.0 <= result.memory_hit_ratio <= 1.0
