"""Tests for choose operators (Definition 3.3)."""

from repro.core.choose import ChooseOperator
from repro.core.datasets import Dataset
from repro.core.evaluators import CallableEvaluator, SizeEvaluator
from repro.core.selection import Max, Min, Mode, Threshold, TopK


def ds(*values):
    return Dataset.from_data(list(values), num_partitions=1)


class TestChooseApply:
    def test_min_picks_smallest(self):
        choose = ChooseOperator(SizeEvaluator(), Min())
        out = choose.apply([("a", ds(1, 2, 3)), ("b", ds(1))])
        assert out.collect() == [1]

    def test_max_picks_largest(self):
        choose = ChooseOperator(SizeEvaluator(), Max())
        out = choose.apply([("a", ds(1, 2, 3)), ("b", ds(1))])
        assert out.collect() == [1, 2, 3]

    def test_multiple_kept_concatenated(self):
        choose = ChooseOperator(SizeEvaluator(), Threshold(2.0))
        out = choose.apply([("a", ds(1, 2)), ("b", ds(3)), ("c", ds(4, 5, 6))])
        assert sorted(out.collect()) == [1, 2, 4, 5, 6]

    def test_nothing_kept_yields_empty(self):
        choose = ChooseOperator(SizeEvaluator(), Threshold(100.0))
        out = choose.apply([("a", ds(1))])
        assert out.collect() == []

    def test_producer_set(self):
        choose = ChooseOperator(SizeEvaluator(), Min(), name="my-choose")
        out = choose.apply([("a", ds(1)), ("b", ds(2, 3))])
        assert out.producer == "my-choose"

    def test_value_evaluator(self):
        choose = ChooseOperator(
            CallableEvaluator(lambda p: sum(p), name="sum"), Max()
        )
        out = choose.apply([("a", ds(1, 1)), ("b", ds(10))])
        assert out.collect() == [10]


class TestOptimizationPlan:
    def test_plan_exposed(self):
        choose = ChooseOperator(SizeEvaluator(), TopK(2))
        plan = choose.optimization_plan
        assert plan.discard_incrementally and plan.prune_superfluous

    def test_mode_plan(self):
        choose = ChooseOperator(SizeEvaluator(), Mode())
        plan = choose.optimization_plan
        assert not plan.discard_incrementally
