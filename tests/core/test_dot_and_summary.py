"""Tests for the DOT export and the human-readable job summary."""

from repro import Cluster, GB, run_mdf

from ..conftest import build_filter_mdf, build_nested_mdf


class TestToDot:
    def test_contains_all_operators(self):
        mdf = build_filter_mdf()
        dot = mdf.to_dot("filter")
        for op in mdf.operators:
            assert f'"{op.name}"' in dot

    def test_shapes_by_kind(self):
        mdf = build_filter_mdf()
        dot = mdf.to_dot()
        assert "shape=triangle" in dot  # explore
        assert "shape=invtriangle" in dot  # choose
        assert "shape=ellipse" in dot  # narrow ops

    def test_edges_present(self):
        mdf = build_filter_mdf()
        dot = mdf.to_dot()
        assert dot.count("->") == sum(mdf.out_degree(op) for op in mdf.operators)

    def test_wide_operator_box(self):
        from repro import MDFBuilder, MB

        b = MDFBuilder()
        b.read_data([1, 2], name="s", nominal_bytes=MB).aggregate(
            lambda xs: xs, name="agg"
        ).write(name="o")
        assert "shape=box" in b.build().to_dot()

    def test_valid_dot_syntax(self):
        dot = build_nested_mdf().to_dot("nested")
        assert dot.startswith('digraph "nested" {')
        assert dot.rstrip().endswith("}")


class TestSummary:
    def test_summary_mentions_decisions(self):
        result = run_mdf(build_filter_mdf(), Cluster(4, 1 * GB))
        text = result.summary()
        assert "completion time" in text
        assert "choose-min" in text
        assert "memory hit ratio" in text

    def test_summary_counts(self):
        result = run_mdf(build_filter_mdf(), Cluster(4, 1 * GB))
        text = result.summary()
        assert "3 scored" in text
