"""Tests for evaluator functions (Definition 3.3's φ)."""

import numpy as np

from repro.core.datasets import Dataset
from repro.core.evaluators import (
    CallableEvaluator,
    Evaluator,
    MetadataEvaluator,
    RatioEvaluator,
    SizeEvaluator,
)


class TestSizeEvaluator:
    def test_counts_elements(self):
        ds = Dataset.from_data(list(range(7)), num_partitions=3)
        assert SizeEvaluator().score(ds) == 7.0

    def test_counts_numpy(self):
        ds = Dataset.from_data(np.arange(10), num_partitions=2)
        assert SizeEvaluator().score(ds) == 10.0

    def test_monotone_by_default(self):
        assert SizeEvaluator().monotone

    def test_zero_cost(self):
        assert SizeEvaluator().cost_factor == 0.0

    def test_empty(self):
        assert SizeEvaluator().score(Dataset.from_data([])) == 0.0


class TestRatioEvaluator:
    def test_ratio(self):
        ds = Dataset.from_data(list(range(50)), num_partitions=2)
        assert RatioEvaluator(100).score(ds) == 0.5

    def test_reference_clamped(self):
        ev = RatioEvaluator(0)
        assert ev.reference_count == 1

    def test_payload_variant(self):
        assert RatioEvaluator(10).score_payload([1, 2]) == 0.2


class TestCallableEvaluator:
    def test_wraps_function(self):
        ev = CallableEvaluator(lambda payload: sum(payload))
        ds = Dataset.from_data([1, 2, 3], num_partitions=2)
        assert ev.score(ds) == 6.0

    def test_name_from_function(self):
        def mise(payload):
            return 0.0

        assert CallableEvaluator(mise).name == "mise"

    def test_property_flags(self):
        ev = CallableEvaluator(lambda p: 0.0, monotone=True, convex=True)
        assert ev.monotone and ev.convex

    def test_defaults_no_properties(self):
        ev = CallableEvaluator(lambda p: 0.0)
        assert not ev.monotone and not ev.convex


class TestMetadataEvaluator:
    def test_scores_nominal_bytes(self):
        ds = Dataset.from_data([1, 2], num_partitions=2, nominal_bytes=1000)
        assert MetadataEvaluator().score(ds) == 1000.0

    def test_zero_cost(self):
        assert MetadataEvaluator().cost_factor == 0.0


class TestBase:
    def test_repr_shows_flags(self):
        ev = CallableEvaluator(lambda p: 0.0, monotone=True, name="f")
        assert "monotone" in repr(ev)

    def test_repr_none(self):
        ev = CallableEvaluator(lambda p: 0.0, name="f")
        assert "none" in repr(ev)

    def test_abstract_score_payload(self):
        import pytest

        with pytest.raises(NotImplementedError):
            Evaluator().score_payload([])
