"""Tests for the dataflow graph structure (Appendix A)."""

import pytest

from repro.core.dataflow import DataflowGraph
from repro.core.errors import GraphError
from repro.core.operators import Identity


def chain_graph(n=4):
    g = DataflowGraph()
    ops = [Identity(name=f"op{i}") for i in range(n)]
    g.chain(*ops)
    return g, ops


def diamond_graph():
    g = DataflowGraph()
    a, b, c, d = (Identity(name=x) for x in "abcd")
    g.add_edge(a, b)
    g.add_edge(a, c)
    g.add_edge(b, d)
    g.add_edge(c, d)
    return g, (a, b, c, d)


class TestConstruction:
    def test_add_operator_returns_it(self):
        g = DataflowGraph()
        op = Identity(name="x")
        assert g.add_operator(op) is op

    def test_add_operator_idempotent_same_instance(self):
        g = DataflowGraph()
        op = Identity(name="x")
        g.add_operator(op)
        g.add_operator(op)
        assert len(g) == 1

    def test_duplicate_name_different_instance_rejected(self):
        g = DataflowGraph()
        g.add_operator(Identity(name="x"))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_operator(Identity(name="x"))

    def test_add_edge_rejects_name_collision(self):
        g = DataflowGraph()
        a = Identity(name="a")
        g.add_edge(a, Identity(name="x"))
        with pytest.raises(GraphError):
            g.add_edge(a, Identity(name="x"))  # different object, same name

    def test_self_loop_rejected(self):
        g = DataflowGraph()
        a = Identity(name="a")
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(a, a)

    def test_chain_returns_last(self):
        g = DataflowGraph()
        ops = [Identity(name=f"o{i}") for i in range(3)]
        assert g.chain(*ops) is ops[-1]

    def test_contains(self):
        g, ops = chain_graph()
        assert ops[0] in g
        assert Identity(name="other") not in g


class TestPrePostSets:
    def test_chain_degrees(self):
        g, ops = chain_graph(3)
        assert g.in_degree(ops[0]) == 0
        assert g.out_degree(ops[0]) == 1
        assert g.pre(ops[1]) == {ops[0]}
        assert g.post(ops[1]) == {ops[2]}

    def test_diamond_fanout(self):
        g, (a, b, c, d) = diamond_graph()
        assert g.post(a) == {b, c}
        assert g.pre(d) == {b, c}

    def test_sources_sinks(self):
        g, (a, b, c, d) = diamond_graph()
        assert g.sources() == [a]
        assert g.sinks() == [d]


class TestPaths:
    def test_has_path_chain(self):
        g, ops = chain_graph(4)
        assert g.has_path(ops[0], ops[3])
        assert not g.has_path(ops[3], ops[0])

    def test_has_path_self_false(self):
        g, ops = chain_graph(2)
        assert not g.has_path(ops[0], ops[0])

    def test_paths_diamond_two(self):
        g, (a, b, c, d) = diamond_graph()
        paths = g.paths(a, d)
        assert len(paths) == 2
        assert all(p[0] is a and p[-1] is d for p in paths)

    def test_descendants(self):
        g, (a, b, c, d) = diamond_graph()
        assert g.descendants(a) == {b, c, d}
        assert g.descendants(d) == set()

    def test_ancestors(self):
        g, (a, b, c, d) = diamond_graph()
        assert g.ancestors(d) == {a, b, c}
        assert g.ancestors(a) == set()


class TestTopologicalOrder:
    def test_chain_order(self):
        g, ops = chain_graph(5)
        assert g.topological_order() == ops

    def test_diamond_respects_deps(self):
        g, (a, b, c, d) = diamond_graph()
        order = g.topological_order()
        assert order.index(a) == 0
        assert order.index(d) == 3

    def test_cycle_detected(self):
        g, ops = chain_graph(3)
        g.add_edge(ops[2], ops[0])
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()


class TestValidation:
    def test_valid_chain(self):
        g, _ = chain_graph()
        g.validate()

    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError, match="empty"):
            DataflowGraph().validate()

    def test_disconnected_invalid(self):
        g, _ = chain_graph(2)
        g.add_operator(Identity(name="island"))
        with pytest.raises(GraphError, match="connected"):
            g.validate()

    def test_connected_true(self):
        g, _ = diamond_graph()
        assert g.is_connected()

    def test_unknown_operator_lookup(self):
        g, _ = chain_graph(2)
        with pytest.raises(GraphError, match="unknown"):
            g.operator("nope")


class TestSurgery:
    def test_subgraph(self):
        g, (a, b, c, d) = diamond_graph()
        sub = g.subgraph([a, b, d])
        assert len(sub) == 3
        assert sub.post(a) == {b}
        assert sub.pre(d) == {b}

    def test_copy_independent_edges(self):
        g, ops = chain_graph(3)
        dup = g.copy()
        dup.remove_operators([ops[1]])
        assert len(dup) == 2
        assert len(g) == 3
        assert g.post(ops[0]) == {ops[1]}

    def test_remove_operators_cleans_edges(self):
        g, (a, b, c, d) = diamond_graph()
        g.remove_operators([b])
        assert g.post(a) == {c}
        assert g.pre(d) == {c}
        assert len(g) == 3

    def test_remove_missing_is_noop(self):
        g, ops = chain_graph(2)
        g.remove_operators([Identity(name="ghost")])
        assert len(g) == 2
