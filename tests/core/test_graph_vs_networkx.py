"""Cross-check DataflowGraph algorithms against networkx references."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataflow import DataflowGraph
from repro.core.operators import Identity


def random_dag(rng_edges):
    """Build a repro graph and the equivalent networkx DiGraph.

    ``rng_edges`` is a list of (u, v) index pairs with u < v, which makes
    the graph acyclic by construction.
    """
    n = max((max(u, v) for u, v in rng_edges), default=0) + 1
    ops = [Identity(name=f"n{i}") for i in range(n)]
    g = DataflowGraph()
    ref = nx.DiGraph()
    for op in ops:
        g.add_operator(op)
        ref.add_node(op.name)
    for u, v in rng_edges:
        if u == v:
            continue
        g.add_edge(ops[u], ops[v])
        ref.add_edge(ops[u].name, ops[v].name)
    return g, ref, ops


edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).map(
        lambda t: (min(t), max(t))
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=25,
)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_topological_order_is_valid(edges):
    g, ref, ops = random_dag(edges)
    order = [op.name for op in g.topological_order()]
    position = {name: i for i, name in enumerate(order)}
    for u, v in ref.edges:
        assert position[u] < position[v]
    assert sorted(order) == sorted(ref.nodes)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_descendants_match_networkx(edges):
    g, ref, ops = random_dag(edges)
    for op in ops:
        ours = {o.name for o in g.descendants(op)}
        theirs = nx.descendants(ref, op.name)
        assert ours == theirs


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_ancestors_match_networkx(edges):
    g, ref, ops = random_dag(edges)
    for op in ops:
        ours = {o.name for o in g.ancestors(op)}
        theirs = nx.ancestors(ref, op.name)
        assert ours == theirs


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_has_path_matches_networkx(edges):
    g, ref, ops = random_dag(edges)
    for a in ops[:5]:
        for b in ops[:5]:
            if a is b:
                continue
            assert g.has_path(a, b) == nx.has_path(ref, a.name, b.name)


@given(edge_lists)
@settings(max_examples=30, deadline=None)
def test_connectivity_matches_networkx(edges):
    g, ref, _ = random_dag(edges)
    assert g.is_connected() == nx.is_weakly_connected(ref)


def test_cycle_detection_matches_networkx():
    g, ref, ops = random_dag([(0, 1), (1, 2)])
    g.add_edge(ops[2], ops[0])
    ref.add_edge("n2", "n0")
    assert not nx.is_directed_acyclic_graph(ref)
    with pytest.raises(Exception):
        g.topological_order()
