"""Tests for execution states (Appendix A) and Theorem 4.3's D_s^c."""

from repro.core.state import ExecutionState, still_needed_datasets


def make_state(mem_limit=100):
    return ExecutionState(
        datasets=frozenset({"d1", "d2"}),
        sizes={("n1", "d1"): 40, ("n1", "d2"): 30, ("n2", "d1"): 40},
        in_memory={"n1": frozenset({"d1", "d2"}), "n2": frozenset({"d1"})},
        memory_limits={"n1": mem_limit, "n2": mem_limit},
    )


class TestExecutionState:
    def test_memory_used(self):
        state = make_state()
        assert state.memory_used("n1") == 70
        assert state.memory_used("n2") == 40

    def test_valid(self):
        assert make_state(100).is_valid()

    def test_invalid_when_over_limit(self):
        assert not make_state(50).is_valid()

    def test_datasets_on_node(self):
        state = make_state()
        assert state.datasets_on_node("n1") == {"d1", "d2"}
        assert state.datasets_on_node("n2") == {"d1"}

    def test_unknown_node_zero(self):
        assert make_state().memory_used("nX") == 0


class TestStillNeeded:
    def test_unconsumed_still_needed(self):
        state = make_state()
        consumers = {"d1": {"op-a"}, "d2": {"op-b"}}
        needed = still_needed_datasets(state, consumers, executed_operators=set())
        assert needed == {"d1", "d2"}

    def test_fully_consumed_not_needed(self):
        state = make_state()
        consumers = {"d1": {"op-a"}, "d2": {"op-b"}}
        needed = still_needed_datasets(state, consumers, {"op-a"})
        assert needed == {"d2"}

    def test_no_consumers_not_needed(self):
        state = make_state()
        needed = still_needed_datasets(state, {}, set())
        assert needed == set()
