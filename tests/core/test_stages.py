"""Tests for stage derivation (Appendix A execution model)."""

from repro.core.builder import MDFBuilder
from repro.core.evaluators import SizeEvaluator
from repro.core.selection import Min
from repro.core.stages import StageGraph


def linear_mdf():
    b = MDFBuilder()
    (
        b.read_data([1, 2, 3], name="src")
        .transform(lambda x: x, name="t1")
        .transform(lambda x: x, name="t2")
        .write(name="out")
    )
    return b.build()


def wide_mdf():
    b = MDFBuilder()
    (
        b.read_data([1, 2, 3], name="src")
        .transform(lambda x: x, name="t1")
        .aggregate(lambda x: x, name="agg")
        .transform(lambda x: x, name="t2")
        .write(name="out")
    )
    return b.build()


def explore_mdf():
    b = MDFBuilder()
    src = b.read_data([1], name="src")
    src.explore(
        {"t": [1, 2]},
        lambda pipe, p: pipe.identity(name=f"b{p['t']}-1").identity(name=f"b{p['t']}-2"),
        name="exp",
    ).choose(SizeEvaluator(), Min(), name="ch").write(name="out")
    return b.build()


class TestLinearStages:
    def test_whole_chain_one_stage(self):
        sg = StageGraph(linear_mdf())
        assert len(sg) == 1
        assert [op.name for op in sg.stages[0].ops] == ["src", "t1", "t2", "out"]

    def test_wide_op_breaks_stage(self):
        sg = StageGraph(wide_mdf())
        assert len(sg) == 2
        assert sg.stages[0].tail.name == "t1"
        assert sg.stages[1].head.name == "agg"
        assert sg.stages[1].tail.name == "out"


class TestExploreStages:
    def test_explore_and_choose_are_singletons(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        explore_stage = sg.stage_of(mdf.operator("exp"))
        choose_stage = sg.stage_of(mdf.operator("ch"))
        assert explore_stage.is_explore and len(explore_stage.ops) == 1
        assert choose_stage.is_choose and len(choose_stage.ops) == 1

    def test_branch_ops_chain_into_one_stage(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        s1 = sg.stage_of(mdf.operator("b1-1"))
        assert [op.name for op in s1.ops] == ["b1-1", "b1-2"]

    def test_branch_id_attached(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        s1 = sg.stage_of(mdf.operator("b1-1"))
        assert s1.branch_id == "exp#0"
        src_stage = sg.stage_of(mdf.operator("src"))
        assert src_stage.branch_id is None

    def test_stage_count(self):
        # src | exp | 2 branches | choose | sink = 6 stages
        sg = StageGraph(explore_mdf())
        assert len(sg) == 6


class TestStagePrePost:
    def test_pre_post_relationships(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        explore_stage = sg.stage_of(mdf.operator("exp"))
        branch_stage = sg.stage_of(mdf.operator("b1-1"))
        choose_stage = sg.stage_of(mdf.operator("ch"))
        assert explore_stage in sg.pre(branch_stage)
        assert choose_stage in sg.post(branch_stage)
        assert len(sg.pre(choose_stage)) == 2  # two branch tails

    def test_initial_final(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        assert [s.head.name for s in sg.initial_stages()] == ["src"]
        assert [s.tail.name for s in sg.final_stages()] == ["out"]

    def test_topological_stages_respect_deps(self):
        mdf = explore_mdf()
        sg = StageGraph(mdf)
        order = sg.topological_stages()
        pos = {s.id: i for i, s in enumerate(order)}
        for stage in sg.stages:
            for pred in sg.pre(stage):
                assert pos[pred.id] < pos[stage.id]


class TestFanoutWithoutExplore:
    def test_plain_fanout_starts_new_stages(self):
        from repro.core.dataflow import DataflowGraph
        from repro.core.operators import Identity

        g = DataflowGraph()
        a, b, c = Identity(name="a"), Identity(name="b"), Identity(name="c")
        g.add_edge(a, b)
        g.add_edge(a, c)
        sg = StageGraph(g)
        assert len(sg) == 3  # fan-out point forces separate stages
