"""Tests for the MDF graph: scopes, branches, nesting, Definition 3.1."""

import pytest

from repro.core.choose import ChooseOperator
from repro.core.errors import ValidationError
from repro.core.evaluators import SizeEvaluator
from repro.core.explore import ExploreOperator, ParameterGrid
from repro.core.mdf import MDF
from repro.core.operators import Identity, Sink, Source
from repro.core.selection import Min, TopK


def make_simple_mdf(num_branches=3):
    """src -> explore -> [branch ops] -> choose -> sink, built by hand."""
    mdf = MDF("hand-built")
    src = Source.from_data([1, 2, 3], name="src")
    mdf.add_operator(src)
    explore = ExploreOperator(ParameterGrid(t=list(range(num_branches))), name="exp")
    mdf.open_scope(explore, src)
    branch_ops = []
    for i in range(num_branches):
        op = Identity(name=f"branch-{i}")
        mdf.add_branch(explore, [op])
        branch_ops.append(op)
    choose = ChooseOperator(SizeEvaluator(), Min(), name="ch")
    mdf.close_scope(explore, choose)
    sink = Sink(name="out")
    mdf.add_edge(choose, sink)
    return mdf, src, explore, branch_ops, choose, sink


class TestScopeConstruction:
    def test_valid_mdf(self):
        mdf, *_ = make_simple_mdf()
        mdf.validate()

    def test_scopes_registered(self):
        mdf, _, explore, _, choose, _ = make_simple_mdf()
        assert mdf.matching_choose(explore) is choose
        assert len(mdf.scopes) == 1

    def test_branch_params_in_grid_order(self):
        mdf, _, explore, _, _, _ = make_simple_mdf()
        scope = mdf.scopes[explore.name]
        assert [b.params["t"] for b in scope.branches] == [0, 1, 2]

    def test_branch_of(self):
        mdf, src, explore, branch_ops, choose, sink = make_simple_mdf()
        assert mdf.branch_of(branch_ops[0]) == f"{explore.name}#0"
        assert mdf.branch_of(src) is None
        assert mdf.branch_of(sink) is None

    def test_too_many_branches_rejected(self):
        mdf, _, explore, _, _, _ = make_simple_mdf()
        with pytest.raises(ValidationError):
            mdf.add_branch(explore, [Identity(name="extra")])

    def test_close_requires_all_branches(self):
        mdf = MDF()
        src = Source.from_data([1], name="s")
        mdf.add_operator(src)
        explore = ExploreOperator(ParameterGrid(t=[1, 2]), name="e")
        mdf.open_scope(explore, src)
        mdf.add_branch(explore, [Identity(name="b0")])
        with pytest.raises(ValidationError, match="branches"):
            mdf.close_scope(explore, ChooseOperator(SizeEvaluator(), Min(), name="c"))

    def test_empty_branch_rejected(self):
        mdf, _, explore, _, _, _ = make_simple_mdf()
        fresh = MDF()
        src = Source.from_data([1], name="s")
        fresh.add_operator(src)
        exp = ExploreOperator(ParameterGrid(t=[1, 2]), name="e")
        fresh.open_scope(exp, src)
        with pytest.raises(ValidationError):
            fresh.add_branch(exp, [])

    def test_double_close_rejected(self):
        mdf, _, explore, _, choose, _ = make_simple_mdf()
        with pytest.raises(ValidationError, match="closed"):
            mdf.close_scope(explore, choose)


class TestValidation:
    def test_unclosed_scope_invalid(self):
        mdf = MDF()
        src = Source.from_data([1], name="s")
        mdf.add_operator(src)
        explore = ExploreOperator(ParameterGrid(t=[1, 2]), name="e")
        mdf.open_scope(explore, src)
        mdf.add_branch(explore, [Identity(name="b0")])
        mdf.add_branch(explore, [Identity(name="b1")])
        with pytest.raises(ValidationError, match="matching choose"):
            mdf.validate()

    def test_choose_needs_single_output(self):
        mdf, _, _, _, choose, _ = make_simple_mdf()
        mdf.add_edge(choose, Sink(name="second-out"))
        with pytest.raises(ValidationError, match="exactly one output"):
            mdf.validate()

    def test_explore_needs_multiple_outputs(self):
        # single-branch explores violate |v•| > 1
        mdf = MDF()
        src = Source.from_data([1], name="s")
        mdf.add_operator(src)
        explore = ExploreOperator(ParameterGrid(t=[1]), name="e")
        mdf.open_scope(explore, src)
        op = Identity(name="only")
        mdf.add_branch(explore, [op])
        choose = ChooseOperator(SizeEvaluator(), Min(), name="c")
        # close_scope is unreachable: choose in-degree would be 1 too
        mdf.add_edge(op, choose)
        mdf.add_edge(choose, Sink(name="out"))
        mdf.scopes[explore.name].choose = choose
        with pytest.raises(ValidationError):
            mdf.validate()


class TestNesting:
    def build_nested(self):
        mdf = MDF("nested")
        src = Source.from_data([1], name="s")
        mdf.add_operator(src)
        outer = ExploreOperator(ParameterGrid(a=[1, 2]), name="outer")
        mdf.open_scope(outer, src)
        inner_chooses = []
        for i in (0, 1):
            head = Identity(name=f"head-{i}")
            mdf.add_edge(outer, head)
            inner = ExploreOperator(ParameterGrid(b=[1, 2]), name=f"inner-{i}")
            mdf.open_scope(inner, head)
            inner_ops = []
            for j in (0, 1):
                op = Identity(name=f"leaf-{i}-{j}")
                mdf.add_branch(inner, [op])
                inner_ops.append(op)
            ichoose = ChooseOperator(SizeEvaluator(), TopK(1), name=f"ic-{i}")
            mdf.close_scope(inner, ichoose)
            inner_chooses.append(ichoose)
            mdf.add_branch(outer, [head, inner, ichoose])
        ochoose = ChooseOperator(SizeEvaluator(), TopK(1), name="oc")
        mdf.close_scope(outer, ochoose)
        mdf.add_edge(ochoose, Sink(name="out"))
        return mdf, outer, inner_chooses

    def test_nested_validates(self):
        mdf, *_ = self.build_nested()
        mdf.validate()

    def test_nesting_depth(self):
        mdf, outer, _ = self.build_nested()
        leaf = mdf.operator("leaf-0-0")
        inner = mdf.operator("inner-0")
        assert mdf.nesting_depth(outer) == 0
        assert mdf.nesting_depth(inner) == 1
        assert mdf.nesting_depth(leaf) == 2

    def test_branch_operators_include_nested(self):
        mdf, outer, _ = self.build_nested()
        scope = mdf.scopes["outer"]
        ops = {op.name for op in mdf.branch_operators(scope.branches[0])}
        assert {"head-0", "inner-0", "leaf-0-0", "leaf-0-1", "ic-0"} <= ops
        assert "head-1" not in ops

    def test_innermost_branch_wins(self):
        mdf, outer, _ = self.build_nested()
        leaf = mdf.operator("leaf-1-0")
        assert mdf.branch_of(leaf) == "inner-1#0"

    def test_scope_of_choose(self):
        mdf, outer, inner_chooses = self.build_nested()
        scope = mdf.scope_of_choose(inner_chooses[0])
        assert scope.explore.name == "inner-0"
