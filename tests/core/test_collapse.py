"""Tests for the Appendix B collapsed-MDF analysis (Theorem 4.3)."""

import pytest

from repro.core.collapse import (
    CollapsedMDF,
    compare_strategies,
    eq1_depth_first,
    eq2_breadth_first,
    eq5_choose_breadth_first,
)


class TestClosedForms:
    def test_eq2_values(self):
        # B=2, d=1: B^0 - floor(b/2) + b
        assert eq2_breadth_first(1, 1, 2) == 2
        assert eq2_breadth_first(2, 1, 2) == 2

    def test_eq2_grows_with_breadth(self):
        assert eq2_breadth_first(1, 3, 10) > eq2_breadth_first(1, 3, 2)

    def test_eq5_minimal_at_last_choose(self):
        # at b = B^d the difference between Eq.5 and Eq.2 is exactly 0
        B, d = 3, 2
        b = B**d
        assert eq5_choose_breadth_first(b, d, B) >= eq2_breadth_first(b, d, B)

    def test_eq1_first_stage(self):
        # depth-first after the very first depth-1 stage maintains few
        assert eq1_depth_first(1, 1, 2) <= eq2_breadth_first(1, 1, 2) + 1

    def test_bounds_checking(self):
        with pytest.raises(ValueError):
            eq2_breadth_first(0, 1, 2)
        with pytest.raises(ValueError):
            eq2_breadth_first(1, 0, 2)
        with pytest.raises(ValueError):
            eq2_breadth_first(1, 1, 1)
        with pytest.raises(ValueError):
            eq2_breadth_first(9, 1, 2)  # b out of range


class TestCollapsedSimulation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CollapsedMDF(1, 2)
        with pytest.raises(ValueError):
            CollapsedMDF(2, 0)

    def test_children(self):
        mdf = CollapsedMDF(3, 2)
        assert mdf.children((0, 0)) == [(1, 0), (1, 1), (1, 2)]
        assert mdf.children((2, 5)) == []

    def test_dfs_schedule_is_post_order(self):
        mdf = CollapsedMDF(2, 1)
        schedule = mdf._dfs_schedule()
        kinds = [(k, n) for k, n in schedule]
        assert kinds == [
            ("work", (0, 0)),
            ("work", (1, 0)),
            ("work", (1, 1)),
            ("choose", (0, 0)),
        ]

    def test_bfs_schedule_level_order(self):
        mdf = CollapsedMDF(2, 2)
        schedule = mdf._bfs_schedule()
        works = [n for k, n in schedule if k == "work"]
        depths = [d for d, _ in works]
        assert depths == sorted(depths)
        chooses = [n for k, n in schedule if k == "choose"]
        assert [d for d, _ in chooses] == [1, 1, 0]

    def test_same_total_steps(self):
        mdf = CollapsedMDF(3, 2)
        assert len(mdf.simulate("dfs")) == len(mdf.simulate("bfs"))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            CollapsedMDF(2, 2).simulate("zigzag")

    @pytest.mark.parametrize("B,depth", [(2, 1), (2, 2), (2, 3), (3, 2), (4, 2), (5, 3)])
    def test_theorem_dfs_peak_never_exceeds_bfs(self, B, depth):
        mdf = CollapsedMDF(B, depth)
        assert mdf.peak_datasets("dfs") <= mdf.peak_datasets("bfs")

    @pytest.mark.parametrize("B,depth", [(2, 2), (3, 2), (4, 3)])
    def test_theorem_total_memory_time(self, B, depth):
        mdf = CollapsedMDF(B, depth)
        assert mdf.total_dataset_steps("dfs") <= mdf.total_dataset_steps("bfs")

    def test_paper_example_gap(self):
        # App. B: at d=3, B=10, BFS needs hundreds more datasets than DFS
        mdf = CollapsedMDF(10, 3)
        assert mdf.peak_datasets("bfs") - mdf.peak_datasets("dfs") > 900

    def test_compare_strategies_dict(self):
        out = compare_strategies(2, 2)
        assert set(out) == {"dfs_peak", "bfs_peak", "dfs_total", "bfs_total"}
        assert out["dfs_peak"] <= out["bfs_peak"]

    def test_dfs_peak_grows_linearly_with_depth(self):
        # DFS keeps O(B * depth) datasets, not O(B^depth)
        p2 = CollapsedMDF(4, 2).peak_datasets("dfs")
        p3 = CollapsedMDF(4, 3).peak_datasets("dfs")
        assert p3 - p2 <= 2 * 4

    def test_bfs_peak_grows_exponentially(self):
        p2 = CollapsedMDF(4, 2).peak_datasets("bfs")
        p3 = CollapsedMDF(4, 3).peak_datasets("bfs")
        assert p3 >= 3 * p2
