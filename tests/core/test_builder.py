"""Tests for the fluent MDF builder API."""

import pytest

from repro.core.builder import MDFBuilder
from repro.core.choose import ChooseOperator
from repro.core.errors import ValidationError
from repro.core.evaluators import CallableEvaluator, SizeEvaluator
from repro.core.explore import ExploreOperator
from repro.core.operators import Sink, Source
from repro.core.selection import Min, TopK


class TestLinearPipelines:
    def test_read_transform_write(self):
        b = MDFBuilder("lin")
        b.read_data([1, 2, 3], name="src").transform(
            lambda xs: [x + 1 for x in xs], name="inc"
        ).write(name="out")
        mdf = b.build()
        assert len(mdf) == 3
        assert mdf.sources()[0].name == "src"

    def test_map_filter_chain(self):
        b = MDFBuilder()
        b.read_data([1, 2, 3]).map(lambda x: x * 2).filter(lambda x: x > 2).write()
        mdf = b.build()
        assert len(mdf) == 4

    def test_aggregate_is_wide(self):
        b = MDFBuilder()
        pipe = b.read_data([1, 2, 3]).aggregate(lambda xs: [sum(xs)], name="agg")
        pipe.write()
        mdf = b.build()
        assert not mdf.operator("agg").narrow

    def test_read_custom_source(self):
        b = MDFBuilder()
        src = Source.from_data([9], name="my-src", nominal_bytes=1234)
        b.read(src).write()
        mdf = b.build()
        assert mdf.operator("my-src").nominal_bytes == 1234


class TestExploreChoose:
    def test_branches_per_combination(self):
        b = MDFBuilder()
        src = b.read_data([1, 2, 3])
        result = src.explore(
            {"t": [1, 2], "k": ["a", "b"]},
            lambda pipe, p: pipe.transform(lambda xs: xs, name=f"op-{p['t']}-{p['k']}"),
            name="exp",
        ).choose(SizeEvaluator(), Min(), name="ch")
        result.write()
        mdf = b.build()
        scope = mdf.scopes["exp"]
        assert len(scope.branches) == 4
        assert scope.branches[0].params == {"t": 1, "k": "a"}

    def test_explore_edges(self):
        b = MDFBuilder()
        src = b.read_data([1], name="s")
        result = src.explore(
            {"t": [1, 2]},
            lambda pipe, p: pipe.identity(name=f"id-{p['t']}"),
            name="exp",
        ).choose(SizeEvaluator(), Min(), name="ch")
        result.write(name="out")
        mdf = b.build()
        explore = mdf.operator("exp")
        assert mdf.out_degree(explore) == 2
        choose = mdf.operator("ch")
        assert mdf.in_degree(choose) == 2
        assert mdf.out_degree(choose) == 1

    def test_branch_must_add_operator(self):
        b = MDFBuilder()
        src = b.read_data([1])
        with pytest.raises(ValidationError, match="at least"):
            src.explore({"t": [1, 2]}, lambda pipe, p: pipe)

    def test_branch_returning_none_rejected(self):
        b = MDFBuilder()
        src = b.read_data([1])
        with pytest.raises(ValidationError):
            src.explore({"t": [1, 2]}, lambda pipe, p: None)

    def test_terminal_choose_gets_sink(self):
        b = MDFBuilder()
        src = b.read_data([1])
        src.explore(
            {"t": [1, 2]}, lambda pipe, p: pipe.identity(name=f"i{p['t']}")
        ).choose(SizeEvaluator(), Min(), name="ch")
        mdf = b.build()  # no explicit write
        sinks = mdf.sinks()
        assert len(sinks) == 1
        assert isinstance(sinks[0], Sink)

    def test_multibranch_bodies_can_differ(self):
        b = MDFBuilder()
        src = b.read_data([1])

        def body(pipe, p):
            pipe = pipe.identity(name=f"first-{p['t']}")
            if p["t"] == 2:
                pipe = pipe.identity(name="extra")
            return pipe

        src.explore({"t": [1, 2]}, body, name="exp").choose(
            SizeEvaluator(), Min()
        ).write()
        mdf = b.build()
        branches = mdf.scopes["exp"].branches
        assert len(branches[0].ops) == 1
        assert len(branches[1].ops) == 2


class TestNestedBuilder:
    def test_nested_structure(self):
        b = MDFBuilder()
        src = b.read_data([1])

        def inner(pipe, p):
            return pipe.identity(name=f"leaf-{p['_o']}-{p['b']}")

        def outer(pipe, p):
            first = pipe.identity(name=f"head-{p['a']}")
            return first.explore(
                {"b": [1, 2], "_o": [p["a"]]}, inner, name=f"inner-{p['a']}"
            ).choose(SizeEvaluator(), TopK(1), name=f"ic-{p['a']}")

        src.explore({"a": [1, 2]}, outer, name="outer").choose(
            SizeEvaluator(), TopK(1), name="oc"
        ).write()
        mdf = b.build()
        assert len(mdf.scopes) == 3
        outer_scope = mdf.scopes["outer"]
        assert outer_scope.branches[0].ops[-1].name == "ic-1"
        # branch membership: leaves belong to inner scopes
        assert mdf.branch_of(mdf.operator("leaf-1-1")) == "inner-1#0"
        # inner explore belongs to the outer branch
        assert mdf.branch_of(mdf.operator("inner-1")) == "outer#0"

    def test_immediate_nested_explore(self):
        """A branch body that explores immediately (no op in between)."""
        b = MDFBuilder()
        src = b.read_data([1])

        def outer(pipe, p):
            return pipe.explore(
                {"b": [1, 2], "_o": [p["a"]]},
                lambda q, r: q.identity(name=f"l-{r['_o']}-{r['b']}"),
                name=f"in-{p['a']}",
            ).choose(SizeEvaluator(), TopK(1), name=f"c-{p['a']}")

        src.explore({"a": [1, 2]}, outer, name="out-exp").choose(
            SizeEvaluator(), TopK(1), name="out-ch"
        ).write()
        mdf = b.build()
        assert mdf.branch_of(mdf.operator("in-1")) == "out-exp#0"
