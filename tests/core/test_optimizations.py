"""Tests for the Table 1 optimisation matrix and the pruning helpers."""

import pytest

from repro.core.evaluators import CallableEvaluator, SizeEvaluator
from repro.core.optimizations import (
    ConvexPruner,
    MonotonePruner,
    make_pruner,
    plan_optimizations,
    table1_rows,
)
from repro.core.selection import KThreshold, Min, Mode, Threshold, TopK


def evaluator(monotone=False, convex=False):
    return CallableEvaluator(lambda p: 0.0, monotone=monotone, convex=convex)


class TestPlanOptimizations:
    def test_monotone_associative(self):
        plan = plan_optimizations(evaluator(monotone=True), TopK(2))
        assert plan.discard_incrementally and plan.prune_superfluous

    def test_convex_associative(self):
        plan = plan_optimizations(evaluator(convex=True), Min())
        assert plan.discard_incrementally and plan.prune_superfluous

    def test_none_non_exhaustive(self):
        plan = plan_optimizations(evaluator(), KThreshold(2, 0.5))
        assert plan.discard_incrementally and plan.prune_superfluous

    def test_none_associative_only(self):
        plan = plan_optimizations(evaluator(), Threshold(0.5))
        assert plan.discard_incrementally and not plan.prune_superfluous

    def test_mode_nothing(self):
        plan = plan_optimizations(evaluator(monotone=True), Mode())
        assert not plan.discard_incrementally and not plan.prune_superfluous

    def test_str(self):
        plan = plan_optimizations(evaluator(), Threshold(0.5))
        assert "incremental-discard" in str(plan)


class TestMonotonePruner:
    def test_stops_on_worsening_below_kth(self):
        pruner = MonotonePruner(TopK(1))
        assert not pruner.observe(5.0)
        assert pruner.observe(3.0)  # worse than the best → remaining inferior

    def test_keeps_going_on_improvement(self):
        pruner = MonotonePruner(TopK(1))
        assert not pruner.observe(1.0)
        assert not pruner.observe(2.0)
        assert not pruner.observe(3.0)

    def test_smallest_selection_direction(self):
        pruner = MonotonePruner(Min())
        assert not pruner.observe(1.0)
        assert pruner.observe(2.0)  # rising scores are worse for Min

    def test_respects_k(self):
        pruner = MonotonePruner(TopK(2))
        assert not pruner.observe(5.0)
        # 4.0 is worsening but still within the top-2 → no pruning yet
        assert not pruner.observe(4.0)
        assert pruner.observe(3.0)


class TestConvexPruner:
    def test_stops_after_patience_worsenings(self):
        pruner = ConvexPruner(Min(), patience=2)
        assert not pruner.observe(5.0)
        assert not pruner.observe(3.0)  # improving
        assert not pruner.observe(4.0)  # worsening 1
        assert pruner.observe(6.0)  # worsening 2 → past the optimum

    def test_improvement_resets(self):
        pruner = ConvexPruner(Min(), patience=2)
        pruner.observe(5.0)
        pruner.observe(6.0)  # worsening 1
        pruner.observe(4.0)  # improves: reset
        assert not pruner.observe(5.0)


class TestMakePruner:
    def test_convex_preferred(self):
        p = make_pruner(evaluator(monotone=True, convex=True), Min())
        assert isinstance(p, ConvexPruner)

    def test_monotone(self):
        p = make_pruner(evaluator(monotone=True), TopK(1))
        assert isinstance(p, MonotonePruner)

    def test_none(self):
        assert make_pruner(evaluator(), TopK(1)) is None


class TestTable1Rows:
    def test_rows_shape(self):
        rows = table1_rows(
            [
                ("monotone", SizeEvaluator(), "top-k", TopK(2)),
                ("none", evaluator(), "mode", Mode()),
            ]
        )
        assert rows[0] == ("monotone", "top-k", True, True)
        assert rows[1] == ("none", "mode", False, False)
