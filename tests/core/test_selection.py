"""Tests for selection functions: batch semantics, incremental protocol,
and the Table 1 property flags."""

import pytest

from repro.core.selection import (
    Interval,
    KInterval,
    KThreshold,
    Max,
    Min,
    Mode,
    Threshold,
    TopK,
)


def scores(*pairs):
    return [(f"b{i}", s) for i, s in enumerate(pairs)]


class TestTopK:
    def test_keeps_k_largest(self):
        sel = TopK(2)
        kept = sel.select(scores(1.0, 5.0, 3.0, 4.0))
        assert set(kept) == {"b1", "b3"}

    def test_keeps_k_smallest(self):
        sel = TopK(2, largest=False)
        kept = sel.select(scores(1.0, 5.0, 3.0, 4.0))
        assert set(kept) == {"b0", "b2"}

    def test_fewer_branches_than_k(self):
        sel = TopK(5)
        kept = sel.select(scores(1.0, 2.0))
        assert set(kept) == {"b0", "b1"}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_properties(self):
        assert TopK(3).associative
        assert not TopK(3).non_exhaustive

    def test_incremental_knockout(self):
        sel = TopK(1).incremental()
        d1 = sel.offer("a", 1.0)
        assert d1.discarded == set() and not d1.done
        d2 = sel.offer("b", 2.0)
        assert d2.discarded == {"a"}
        d3 = sel.offer("c", 0.5)
        assert d3.discarded == {"c"}
        assert sel.finalize() == ["b"]

    def test_incremental_never_done_early(self):
        sel = TopK(1).incremental()
        for i in range(10):
            assert not sel.offer(f"b{i}", float(i)).done

    def test_ties_keep_first_k(self):
        sel = TopK(2)
        kept = sel.select(scores(1.0, 1.0, 1.0))
        assert len(kept) == 2


class TestMinMax:
    def test_max_single_winner(self):
        assert Max().select(scores(1.0, 9.0, 5.0)) == ["b1"]

    def test_min_single_winner(self):
        assert Min().select(scores(1.0, 9.0, 5.0)) == ["b0"]

    def test_max_is_top1(self):
        m = Max()
        assert m.k == 1 and m.largest

    def test_min_is_bottom1(self):
        m = Min()
        assert m.k == 1 and not m.largest


class TestThreshold:
    def test_above(self):
        kept = Threshold(3.0).select(scores(1.0, 3.0, 5.0))
        assert set(kept) == {"b1", "b2"}

    def test_below(self):
        kept = Threshold(3.0, above=False).select(scores(1.0, 3.0, 5.0))
        assert set(kept) == {"b0", "b1"}

    def test_nothing_passes(self):
        assert Threshold(10.0).select(scores(1.0, 2.0)) == []

    def test_everything_passes(self):
        assert len(Threshold(0.0).select(scores(1.0, 2.0))) == 2

    def test_incremental_immediate_discard(self):
        sel = Threshold(3.0).incremental()
        assert sel.offer("lo", 1.0).discarded == {"lo"}
        assert sel.offer("hi", 5.0).discarded == set()
        assert sel.finalize() == ["hi"]

    def test_exhaustive(self):
        assert not Threshold(1.0).non_exhaustive
        assert Threshold(1.0).associative


class TestInterval:
    def test_inside(self):
        kept = Interval(2.0, 4.0).select(scores(1.0, 3.0, 5.0))
        assert kept == ["b1"]

    def test_boundaries_inclusive(self):
        kept = Interval(1.0, 5.0).select(scores(1.0, 5.0))
        assert set(kept) == {"b0", "b1"}

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)


class TestKThreshold:
    def test_first_k_passing(self):
        sel = KThreshold(2, 3.0)
        kept = sel.select(scores(5.0, 1.0, 4.0, 6.0))
        assert kept == ["b0", "b2"]  # b3 never considered

    def test_non_exhaustive_flag(self):
        assert KThreshold(1, 0.0).non_exhaustive

    def test_done_signal(self):
        sel = KThreshold(1, 3.0).incremental()
        assert not sel.offer("a", 1.0).done
        assert sel.offer("b", 5.0).done
        # anything offered after done is discarded
        late = sel.offer("c", 9.0)
        assert late.discarded == {"c"} and late.done

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KThreshold(0, 1.0)

    def test_below_mode(self):
        sel = KThreshold(1, 3.0, above=False)
        assert sel.select(scores(5.0, 2.0, 1.0)) == ["b1"]


class TestKInterval:
    def test_first_k_in_interval(self):
        sel = KInterval(2, 1.0, 3.0)
        kept = sel.select(scores(2.0, 9.0, 1.5, 2.5))
        assert kept == ["b0", "b2"]

    def test_flags(self):
        sel = KInterval(1, 0.0, 1.0)
        assert sel.associative and sel.non_exhaustive

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KInterval(0, 0.0, 1.0)


class TestMode:
    def test_most_frequent_score_wins(self):
        kept = Mode().select(scores(1.0, 2.0, 1.0, 3.0, 1.0))
        assert set(kept) == {"b0", "b2", "b4"}

    def test_not_associative(self):
        assert not Mode().associative
        assert not Mode().non_exhaustive

    def test_incremental_never_discards(self):
        sel = Mode().incremental()
        for i in range(5):
            decision = sel.offer(f"b{i}", float(i % 2))
            assert decision.discarded == set() and not decision.done

    def test_empty(self):
        assert Mode().incremental().finalize() == []

    def test_precision_rounding(self):
        sel = Mode(precision=1)
        kept = sel.select(scores(1.01, 1.02, 5.0))
        assert set(kept) == {"b0", "b1"}


class TestBatchIncrementalEquivalence:
    """The batch API is defined through the incremental protocol; cross
    check a few concrete sequences by hand."""

    @pytest.mark.parametrize(
        "selection,score_seq,expected",
        [
            (TopK(2), (3.0, 1.0, 2.0, 5.0), {"b0", "b3"}),
            (Min(), (3.0, 1.0, 2.0), {"b1"}),
            (Threshold(2.5), (3.0, 1.0, 2.0, 5.0), {"b0", "b3"}),
            (KThreshold(1, 2.5), (1.0, 3.0, 5.0), {"b1"}),
            (Interval(1.5, 3.5), (3.0, 1.0, 2.0, 5.0), {"b0", "b2"}),
        ],
    )
    def test_expected_winners(self, selection, score_seq, expected):
        assert set(selection.select(scores(*score_seq))) == expected
