"""Tests for the generic operator classes and their cost/size models."""

import numpy as np
import pytest

from repro.core.errors import ExecutionError
from repro.core.operators import (
    Aggregate,
    Filter,
    FlatMap,
    GroupBy,
    Identity,
    Map,
    Operator,
    Sink,
    Source,
    Transform,
)
from repro.core.datasets import Dataset


class TestCostModel:
    def test_default_cost_linear(self):
        op = Identity(cost_factor=2.0)
        assert op.compute_cost(100) == 200.0

    def test_fixed_cost_added(self):
        op = Transform(lambda x: x, fixed_cost=50.0, cost_factor=1.0)
        assert op.compute_cost(10) == 60.0

    def test_output_bytes_selectivity(self):
        op = Transform(lambda x: x, selectivity=0.5)
        assert op.output_bytes(1000) == 500

    def test_output_bytes_at_least_one(self):
        op = Transform(lambda x: x, selectivity=0.0001)
        assert op.output_bytes(10) == 1

    def test_auto_names_unique(self):
        a, b = Identity(), Identity()
        assert a.name != b.name

    def test_explicit_name(self):
        assert Identity(name="me").name == "me"


class TestMap:
    def test_elementwise(self):
        op = Map(lambda x: x * 2)
        assert op.apply_partition([1, 2, 3]) == [2, 4, 6]

    def test_error_wrapped(self):
        op = Map(lambda x: 1 / 0, name="boom")
        with pytest.raises(ExecutionError, match="boom"):
            op.apply_partition([1])

    def test_narrow(self):
        assert Map(lambda x: x).narrow


class TestFilter:
    def test_list(self):
        op = Filter(lambda x: x > 2)
        assert op.apply_partition([1, 2, 3, 4]) == [3, 4]

    def test_numpy(self):
        op = Filter(lambda x: x > 2)
        out = op.apply_partition(np.array([1, 2, 3, 4]))
        assert out.tolist() == [3, 4]

    def test_default_selectivity_below_one(self):
        assert Filter(lambda x: True).selectivity < 1.0

    def test_error_wrapped(self):
        op = Filter(lambda x: x.missing, name="bad-pred")
        with pytest.raises(ExecutionError):
            op.apply_partition([1])


class TestTransform:
    def test_whole_partition(self):
        op = Transform(lambda xs: sorted(xs))
        assert op.apply_partition([3, 1, 2]) == [1, 2, 3]

    def test_error_wrapped(self):
        op = Transform(lambda xs: xs.undefined)
        with pytest.raises(ExecutionError):
            op.apply_partition([1])


class TestFlatMap:
    def test_expands(self):
        op = FlatMap(lambda x: [x, x])
        assert op.apply_partition([1, 2]) == [1, 1, 2, 2]

    def test_empty_expansion(self):
        op = FlatMap(lambda x: [])
        assert op.apply_partition([1, 2]) == []


class TestAggregate:
    def test_wide(self):
        assert not Aggregate(lambda x: x).narrow

    def test_global_merge(self):
        op = Aggregate(lambda xs: [sum(xs)])
        out = op.apply_global([[1, 2], [3, 4]])
        flat = [x for chunk in out for x in chunk]
        assert flat == [10]

    def test_repartitions_to_input_count(self):
        op = Aggregate(lambda xs: list(xs))
        out = op.apply_global([[1, 2, 3], [4, 5, 6]])
        assert len(out) == 2

    def test_error_wrapped(self):
        op = Aggregate(lambda xs: 1 / 0)
        with pytest.raises(ExecutionError):
            op.apply_global([[1]])


class TestGroupBy:
    def test_groups(self):
        op = GroupBy(lambda x: x % 2)
        out = op.apply_global([[1, 2], [3, 4]])
        groups = dict(pair for chunk in out for pair in chunk)
        assert sorted(groups[0]) == [2, 4]
        assert sorted(groups[1]) == [1, 3]

    def test_wide(self):
        assert not GroupBy(lambda x: x).narrow


class TestSource:
    def test_generate_partitions(self):
        src = Source.from_data(list(range(10)))
        ds = src.generate(4)
        assert ds.num_partitions == 4
        assert ds.collect() == list(range(10))

    def test_nominal_bytes_divided(self):
        src = Source.from_data([1, 2], nominal_bytes=1000)
        ds = src.generate(2)
        assert ds.nominal_bytes == 1000

    def test_custom_fn(self):
        src = Source(lambda i, n: [i] * 2)
        ds = src.generate(3)
        assert ds.collect() == [0, 0, 1, 1, 2, 2]

    def test_producer_name(self):
        src = Source.from_data([1], name="reader")
        ds = src.generate(1, producer="tail-op")
        assert ds.producer == "tail-op"


class TestSink:
    def test_passthrough_partition(self):
        sink = Sink()
        assert sink.apply_partition([1]) == [1]

    def test_finalize_default(self):
        sink = Sink()
        ds = Dataset.from_data([1, 2, 3], num_partitions=2)
        assert sink.finalize(ds) == [1, 2, 3]

    def test_finalize_custom_fn(self):
        sink = Sink(lambda payload: len(payload))
        ds = Dataset.from_data([1, 2, 3])
        assert sink.finalize(ds) == 3

    def test_finalize_error_wrapped(self):
        sink = Sink(lambda payload: 1 / 0)
        with pytest.raises(ExecutionError):
            sink.finalize(Dataset.from_data([1]))


class TestIdentity:
    def test_passthrough(self):
        assert Identity().apply_partition("x") == "x"

    def test_zero_cost(self):
        assert Identity().compute_cost(10**9) == 0.0
