"""Tests for parameter grids, explore operators and branches."""

import pytest

from repro.core.explore import Branch, ExploreOperator, ParameterGrid, format_params
from repro.core.operators import Identity


class TestParameterGrid:
    def test_cartesian_size(self):
        grid = ParameterGrid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6

    def test_single_param(self):
        grid = ParameterGrid(a=[1, 2, 3])
        assert grid.combinations() == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_order_row_major(self):
        grid = ParameterGrid(a=[1, 2], b=["x", "y"])
        combos = grid.combinations()
        assert combos == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_deterministic_order(self):
        a = ParameterGrid(a=[1, 2], b=[3, 4]).combinations()
        b = ParameterGrid(a=[1, 2], b=[3, 4]).combinations()
        assert a == b

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid()

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid(a=[])

    def test_non_sequence_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid(a=5)

    def test_from_mapping(self):
        grid = ParameterGrid.from_mapping({"a": [1], "b": [2, 3]})
        assert len(grid) == 2

    def test_names(self):
        assert ParameterGrid(x=[1], y=[2]).names == ["x", "y"]


class TestFormatParams:
    def test_compact(self):
        assert format_params({"a": 1, "b": "x"}) == "a=1,b=x"


class TestExploreOperator:
    def test_fanout(self):
        op = ExploreOperator(ParameterGrid(a=[1, 2], b=[3, 4]))
        assert op.fanout == 4

    def test_forwards_payload(self):
        op = ExploreOperator(ParameterGrid(a=[1]))
        assert op.apply_partition([1, 2]) == [1, 2]

    def test_params_for_branch(self):
        op = ExploreOperator(ParameterGrid(a=[1, 2]))
        assert op.params_for_branch(0) == {"a": 1}
        assert op.params_for_branch(1) == {"a": 2}

    def test_zero_cost(self):
        op = ExploreOperator(ParameterGrid(a=[1, 2]))
        assert op.compute_cost(10**9) == 0.0


class TestBranch:
    def test_id_format(self):
        branch = Branch("exp", 3, {"a": 1}, [Identity(name="op")])
        assert branch.id == "exp#3"

    def test_order_key(self):
        branch = Branch("exp", 5, {}, [Identity()])
        assert branch.order_key == 5
