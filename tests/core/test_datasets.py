"""Tests for the data model: partitions, datasets, split/concat protocols."""

import numpy as np
import pytest

from repro.core.datasets import (
    Dataset,
    Partition,
    concat_payloads,
    estimate_payload_bytes,
    split_payload,
)


class TestEstimatePayloadBytes:
    def test_none_is_zero(self):
        assert estimate_payload_bytes(None) == 0

    def test_numpy_exact(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert estimate_payload_bytes(arr) == 8000

    def test_list_scales_with_length(self):
        small = estimate_payload_bytes([1.0] * 10)
        large = estimate_payload_bytes([1.0] * 1000)
        assert large > small * 10

    def test_empty_list(self):
        assert estimate_payload_bytes([]) > 0  # list header itself

    def test_dict_scales(self):
        small = estimate_payload_bytes({i: i for i in range(10)})
        large = estimate_payload_bytes({i: i for i in range(1000)})
        assert large > small

    def test_empty_dict(self):
        assert estimate_payload_bytes({}) > 0

    def test_scalar_fallback(self):
        assert estimate_payload_bytes(42) > 0


class TestSplitPayload:
    def test_single_partition_is_identity(self):
        data = [1, 2, 3]
        assert split_payload(data, 1) == [data]

    def test_list_split_sizes(self):
        chunks = split_payload(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_list_split_more_parts_than_items(self):
        chunks = split_payload([1, 2], 4)
        assert len(chunks) == 4
        assert sum(chunks, []) == [1, 2]
        assert chunks[2] == [] and chunks[3] == []

    def test_numpy_split(self):
        arr = np.arange(10)
        chunks = split_payload(arr, 4)
        assert len(chunks) == 4
        assert np.concatenate(chunks).tolist() == list(range(10))

    def test_unsplittable_payload_single_chunk(self):
        obj = object()
        assert split_payload(obj, 3) == [obj]

    def test_split_into_protocol(self):
        class Splittable:
            def split_into(self, n):
                return [f"part-{i}" for i in range(n)]

        chunks = split_payload(Splittable(), 3)
        assert chunks == ["part-0", "part-1", "part-2"]

    def test_empty_list_split(self):
        chunks = split_payload([], 3)
        assert len(chunks) == 3
        assert all(c == [] for c in chunks)


class TestConcatPayloads:
    def test_empty(self):
        assert concat_payloads([]) == []

    def test_single(self):
        assert concat_payloads([[1, 2]]) == [1, 2]

    def test_lists(self):
        assert concat_payloads([[1], [2, 3], []]) == [1, 2, 3]

    def test_numpy(self):
        out = concat_payloads([np.array([1, 2]), np.array([3])])
        assert out.tolist() == [1, 2, 3]

    def test_dicts(self):
        out = concat_payloads([{"a": 1}, {"b": 2}])
        assert out == {"a": 1, "b": 2}

    def test_concat_with_protocol(self):
        class Concatable:
            def __init__(self, items):
                self.items = items

            def concat_with(self, other):
                return Concatable(self.items + other.items)

        out = concat_payloads([Concatable([1]), Concatable([2, 3])])
        assert out.items == [1, 2, 3]

    def test_split_concat_roundtrip_list(self):
        data = list(range(37))
        assert concat_payloads(split_payload(data, 5)) == data

    def test_split_concat_roundtrip_numpy(self):
        data = np.arange(37)
        out = concat_payloads(split_payload(data, 5))
        assert out.tolist() == data.tolist()


class TestPartition:
    def test_auto_size(self):
        p = Partition("ds", 0, np.zeros(100))
        assert p.nominal_bytes == 800

    def test_explicit_size(self):
        p = Partition("ds", 0, [1, 2, 3], nominal_bytes=12345)
        assert p.nominal_bytes == 12345

    def test_key(self):
        p = Partition("ds", 3, [], nominal_bytes=1)
        assert p.key == ("ds", 3)


class TestDataset:
    def test_from_data_partitions(self):
        ds = Dataset.from_data(list(range(10)), num_partitions=3)
        assert ds.num_partitions == 3
        assert ds.collect() == list(range(10))

    def test_from_data_nominal_bytes_divided(self):
        ds = Dataset.from_data(list(range(10)), num_partitions=2, nominal_bytes=1000)
        assert all(p.nominal_bytes == 500 for p in ds.partitions)
        assert ds.nominal_bytes == 1000

    def test_auto_id_unique(self):
        a = Dataset.from_data([1])
        b = Dataset.from_data([1])
        assert a.id != b.id

    def test_explicit_id(self):
        ds = Dataset.from_data([1], dataset_id="my-ds")
        assert ds.id == "my-ds"
        assert ds.partitions[0].dataset_id == "my-ds"

    def test_producer_recorded(self):
        ds = Dataset.from_data([1], producer="op-x")
        assert ds.producer == "op-x"

    def test_concat_operator(self):
        a = Dataset.from_data([1, 2], num_partitions=2)
        b = Dataset.from_data([3], num_partitions=1)
        merged = a + b
        assert merged.num_partitions == 3
        assert merged.collect() == [1, 2, 3]

    def test_concat_preserves_sizes(self):
        a = Dataset.from_data([1], nominal_bytes=100)
        b = Dataset.from_data([2], nominal_bytes=200)
        assert (a + b).nominal_bytes == 300

    def test_collect_single_partition(self):
        payload = {"k": "v"}
        ds = Dataset.from_data(payload, num_partitions=1)
        assert ds.collect() is payload
