"""Tests for metrics accumulation and the simulated clock."""

import pytest

from repro.cluster.clock import SimClock
from repro.cluster.metrics import Metrics


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_zero_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 0.0


class TestMetrics:
    def test_hit_ratio_no_reads_is_one(self):
        assert Metrics().memory_hit_ratio == 1.0

    def test_hit_ratio_bytes_based(self):
        m = Metrics(bytes_read_memory=300, bytes_read_disk=100)
        assert m.memory_hit_ratio == pytest.approx(0.75)

    def test_total_time(self):
        m = Metrics(time_compute=1.0, time_io=2.0, time_network=0.5)
        assert m.total_time == 3.5

    def test_merge_sums_counters(self):
        a = Metrics(evictions=2, bytes_read_disk=100, time_io=1.0)
        b = Metrics(evictions=3, bytes_read_disk=50, time_io=0.5)
        merged = a.merge(b)
        assert merged.evictions == 5
        assert merged.bytes_read_disk == 150
        assert merged.time_io == 1.5

    def test_merge_takes_max_peak(self):
        a = Metrics(peak_datasets_stored=7)
        b = Metrics(peak_datasets_stored=3)
        assert a.merge(b).peak_datasets_stored == 7

    def test_merge_does_not_mutate(self):
        a = Metrics(evictions=1)
        b = Metrics(evictions=1)
        a.merge(b)
        assert a.evictions == 1

    def test_as_dict_includes_derived(self):
        d = Metrics(bytes_read_memory=10).as_dict()
        assert "memory_hit_ratio" in d and "total_time" in d
