"""Tests for the hardware cost model and the α ratio (Alg. 2 input)."""

import pytest

from repro.cluster.costmodel import CostModel, GB, MB


class TestAlpha:
    def test_alpha_formula(self):
        cm = CostModel(
            mem_read_bw=10 * GB,
            mem_write_bw=10 * GB,
            disk_read_bw=200 * MB,
            disk_write_bw=100 * MB,
        )
        # α = (w_d · r_m) / (w_m · r_d) with times = 1/bandwidth
        expected = (1 / (100 * MB)) * (1 / (10 * GB)) / ((1 / (10 * GB)) * (1 / (200 * MB)))
        assert cm.alpha == pytest.approx(expected)
        assert cm.alpha == pytest.approx(2.0)

    def test_symmetric_hardware_alpha_one(self):
        cm = CostModel(
            mem_read_bw=GB, mem_write_bw=GB, disk_read_bw=MB, disk_write_bw=MB
        )
        assert cm.alpha == pytest.approx(1.0)


class TestTimes:
    def test_read_write_times(self):
        cm = CostModel(disk_read_bw=100 * MB, disk_write_bw=50 * MB)
        assert cm.disk_read_time(100 * MB) == pytest.approx(1.0)
        assert cm.disk_write_time(100 * MB) == pytest.approx(2.0)

    def test_memory_faster_than_disk(self):
        cm = CostModel()
        assert cm.mem_read_time(GB) < cm.disk_read_time(GB)

    def test_compute_time(self):
        cm = CostModel(compute_rate=100 * MB)
        assert cm.compute_time(200 * MB) == pytest.approx(2.0)

    def test_network_time(self):
        cm = CostModel(network_bandwidth=125 * MB)
        assert cm.network_time(125 * MB) == pytest.approx(1.0)


class TestValidationAndScaling:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostModel(disk_read_bw=0)

    def test_scaled_override(self):
        cm = CostModel()
        faster = cm.scaled(compute_rate=cm.compute_rate * 2)
        assert faster.compute_rate == cm.compute_rate * 2
        assert faster.disk_read_bw == cm.disk_read_bw

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.compute_rate = 1.0
