"""Tests for worker nodes: slots, memory accounting, protection, pinning."""

import pytest

from repro.cluster.node import Node


def make_node(cap=1000):
    return Node("w0", cap)


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Node("w", 0)

    def test_put_accounts_memory(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=True)
        assert node.mem_used == 400
        assert node.free_memory() == 600

    def test_put_on_disk_free(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=False)
        assert node.mem_used == 0

    def test_put_replaces_slot(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=True)
        node.put(("d", 0), [2], 300, now=1.0, in_memory=True)
        assert node.mem_used == 300
        assert node.slot(("d", 0)).payload == [2]

    def test_replace_preserves_pin(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.slot(("d", 0)).pinned = True
        node.put(("d", 0), [2], 100, now=1.0, in_memory=True)
        assert node.slot(("d", 0)).pinned


class TestDemotePromote:
    def test_demote_frees_memory(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=True)
        node.demote(("d", 0))
        assert node.mem_used == 0
        assert not node.slot(("d", 0)).in_memory

    def test_promote_charges_memory(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=False)
        node.promote(("d", 0), now=1.0)
        assert node.mem_used == 400
        assert node.slot(("d", 0)).in_memory

    def test_double_demote_idempotent(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=True)
        node.demote(("d", 0))
        node.demote(("d", 0))
        assert node.mem_used == 0

    def test_remove(self):
        node = make_node()
        node.put(("d", 0), [1], 400, now=0.0, in_memory=True)
        slot = node.remove(("d", 0))
        assert slot is not None
        assert node.mem_used == 0
        assert not node.has(("d", 0))

    def test_remove_missing(self):
        assert make_node().remove(("x", 0)) is None


class TestEvictionCandidates:
    def test_protected_excluded(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.put(("e", 0), [1], 100, now=0.0, in_memory=True)
        node.protected.add(("d", 0))
        keys = {s.key for s in node.eviction_candidates()}
        assert keys == {("e", 0)}

    def test_pinned_excluded_when_alternatives_exist(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.put(("e", 0), [1], 100, now=0.0, in_memory=True)
        node.slot(("d", 0)).pinned = True
        keys = {s.key for s in node.eviction_candidates()}
        assert keys == {("e", 0)}

    def test_pinned_offered_as_last_resort(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.slot(("d", 0)).pinned = True
        keys = {s.key for s in node.eviction_candidates()}
        assert keys == {("d", 0)}

    def test_disk_slots_never_candidates(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=False)
        assert node.eviction_candidates() == []


class TestFailure:
    def test_fail_memory_splits_checkpointed_from_lost(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.put(("c", 0), [2], 100, now=0.0, in_memory=True)
        node.slot(("c", 0)).checkpointed = True
        node.put(("e", 0), [1], 100, now=0.0, in_memory=False)
        reloadable, lost = node.fail_memory()
        assert node.mem_used == 0
        # checkpointed copy demotes to its disk replica
        assert reloadable == [("c", 0)]
        assert node.has(("c", 0))
        assert not node.slot(("c", 0)).in_memory
        # non-checkpointed memory contents are genuinely gone
        assert lost == [("d", 0)]
        assert not node.has(("d", 0))
        # disk-resident slots are untouched
        assert node.has(("e", 0))

    def test_memory_datasets(self):
        node = make_node()
        node.put(("d", 0), [1], 100, now=0.0, in_memory=True)
        node.put(("d", 1), [1], 100, now=0.0, in_memory=True)
        node.put(("e", 0), [1], 100, now=0.0, in_memory=False)
        assert node.memory_datasets() == {"d"}
