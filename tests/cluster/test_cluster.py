"""Tests for the simulated cluster: placement, loading, discarding,
composites, protection, pinning, snapshots."""

import pytest

from repro.cluster import Cluster, CostModel, LRUPolicy, MB
from repro.core.datasets import Dataset


def make_cluster(workers=2, mem=10 * MB, **kw):
    return Cluster(num_workers=workers, mem_per_worker=mem, **kw)


def make_dataset(n_parts=4, bytes_per_part=1 * MB, dataset_id=None, producer="op"):
    ds = Dataset.from_data(
        list(range(n_parts * 10)),
        num_partitions=n_parts,
        dataset_id=dataset_id,
        producer=producer,
        nominal_bytes=n_parts * bytes_per_part,
    )
    return ds


class TestRegistration:
    def test_round_robin_placement(self):
        cluster = make_cluster(workers=2)
        ds = make_dataset(4)
        cluster.register_dataset(ds)
        record = cluster.record(ds.id)
        assert record.partition_nodes == ["worker-0", "worker-1", "worker-0", "worker-1"]

    def test_store_charges_time(self):
        cluster = make_cluster()
        seconds = cluster.register_dataset(make_dataset())
        assert sum(seconds.values()) > 0

    def test_oversized_partition_goes_to_disk(self):
        cluster = make_cluster(mem=1 * MB)
        ds = make_dataset(2, bytes_per_part=5 * MB)
        cluster.register_dataset(ds)
        for node in cluster.nodes:
            assert node.mem_used == 0
        assert cluster.metrics.bytes_written_disk == 10 * MB

    def test_peak_dataset_metric(self):
        cluster = make_cluster()
        cluster.register_dataset(make_dataset())
        cluster.register_dataset(make_dataset())
        assert cluster.metrics.peak_datasets_stored == 2

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)


class TestLoading:
    def test_memory_hit(self):
        cluster = make_cluster()
        ds = make_dataset()
        cluster.register_dataset(ds)
        payload, seconds, node_id = cluster.load_partition(ds.id, 0)
        assert cluster.metrics.partition_hits == 1
        assert cluster.metrics.partition_misses == 0
        assert seconds < 0.001  # memory read of 1 MB

    def test_disk_miss_streams(self):
        cluster = make_cluster()
        ds = make_dataset()
        cluster.register_dataset(ds)
        node = cluster.node(cluster.record(ds.id).partition_nodes[0])
        node.demote((ds.id, 0))
        payload, seconds, _ = cluster.load_partition(ds.id, 0)
        assert cluster.metrics.partition_misses == 1
        # streamed, not promoted: still on disk
        assert not node.slot((ds.id, 0)).in_memory
        assert seconds > 0.001  # disk read is slower

    def test_hit_ratio(self):
        cluster = make_cluster()
        ds = make_dataset(2)
        cluster.register_dataset(ds)
        node = cluster.node(cluster.record(ds.id).partition_nodes[0])
        node.demote((ds.id, 0))
        cluster.load_partition(ds.id, 0)  # miss
        cluster.load_partition(ds.id, 1)  # hit
        assert cluster.metrics.memory_hit_ratio == pytest.approx(0.5)

    def test_payload_roundtrip(self):
        cluster = make_cluster()
        ds = make_dataset(2)
        cluster.register_dataset(ds)
        p0, _, _ = cluster.load_partition(ds.id, 0)
        p1, _, _ = cluster.load_partition(ds.id, 1)
        assert p0 + p1 == list(range(20))


class TestDiscard:
    def test_discard_frees_everywhere(self):
        cluster = make_cluster()
        ds = make_dataset()
        cluster.register_dataset(ds)
        cluster.discard_dataset(ds.id)
        assert not cluster.has_dataset(ds.id)
        assert all(node.mem_used == 0 for node in cluster.nodes)
        assert cluster.metrics.datasets_discarded == 1

    def test_discard_missing_noop(self):
        cluster = make_cluster()
        cluster.discard_dataset("ghost")
        assert cluster.metrics.datasets_discarded == 0

    def test_discard_costs_nothing(self):
        cluster = make_cluster()
        ds = make_dataset()
        cluster.register_dataset(ds)
        before = cluster.clock.now
        cluster.discard_dataset(ds.id)
        assert cluster.clock.now == before


class TestComposite:
    def test_composite_absorbs_members(self):
        cluster = make_cluster()
        a, b = make_dataset(2, dataset_id="a"), make_dataset(2, dataset_id="b")
        cluster.register_dataset(a)
        cluster.register_dataset(b)
        cluster.register_composite("comp", ["a", "b"], producer="choose")
        assert cluster.has_dataset("comp")
        assert not cluster.has_dataset("a")
        record = cluster.record("comp")
        assert record.num_partitions == 4
        assert record.partition_keys == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_composite_reads_member_slots(self):
        cluster = make_cluster()
        a, b = make_dataset(1, dataset_id="a"), make_dataset(1, dataset_id="b")
        cluster.register_dataset(a)
        cluster.register_dataset(b)
        cluster.register_composite("comp", ["a", "b"])
        p0, _, _ = cluster.load_partition("comp", 0)
        p1, _, _ = cluster.load_partition("comp", 1)
        assert p0 == list(range(10)) and p1 == list(range(10))

    def test_composite_discard_removes_member_slots(self):
        cluster = make_cluster()
        a, b = make_dataset(1, dataset_id="a"), make_dataset(1, dataset_id="b")
        cluster.register_dataset(a)
        cluster.register_dataset(b)
        cluster.register_composite("comp", ["a", "b"])
        cluster.discard_dataset("comp")
        assert all(not node.slots for node in cluster.nodes)

    def test_composite_no_data_movement(self):
        cluster = make_cluster()
        a = make_dataset(2, dataset_id="a")
        b = make_dataset(2, dataset_id="b")
        cluster.register_dataset(a)
        cluster.register_dataset(b)
        written_before = cluster.metrics.bytes_written_memory
        cluster.register_composite("comp", ["a", "b"])
        assert cluster.metrics.bytes_written_memory == written_before

    def test_materialize_composite(self):
        cluster = make_cluster()
        a = make_dataset(1, dataset_id="a")
        b = make_dataset(1, dataset_id="b")
        cluster.register_dataset(a)
        cluster.register_dataset(b)
        cluster.register_composite("comp", ["a", "b"])
        ds = cluster.materialize("comp")
        assert len(ds.collect()) == 20


class TestEviction:
    def test_eviction_on_pressure(self):
        cluster = make_cluster(workers=1, mem=3 * MB)
        for i in range(4):
            cluster.register_dataset(make_dataset(1, dataset_id=f"d{i}"))
        assert cluster.metrics.evictions > 0
        assert cluster.nodes[0].mem_used <= 3 * MB

    def test_lru_evicts_oldest(self):
        cluster = make_cluster(workers=1, mem=2 * MB, policy=LRUPolicy())
        cluster.register_dataset(make_dataset(1, dataset_id="old"))
        cluster.clock.advance(1.0)
        cluster.register_dataset(make_dataset(1, dataset_id="mid"))
        cluster.clock.advance(1.0)
        cluster.register_dataset(make_dataset(1, dataset_id="new"))
        node = cluster.nodes[0]
        assert not node.slot(("old", 0)).in_memory
        assert node.slot(("new", 0)).in_memory

    def test_protect_blocks_eviction(self):
        cluster = make_cluster(workers=1, mem=2 * MB)
        cluster.register_dataset(make_dataset(1, dataset_id="keep"))
        with cluster.protect(["keep"]):
            cluster.register_dataset(make_dataset(1, dataset_id="a"))
            cluster.register_dataset(make_dataset(1, dataset_id="b"))
            assert cluster.nodes[0].slot(("keep", 0)).in_memory
        assert cluster.nodes[0].protected == set()

    def test_protect_unknown_dataset(self):
        cluster = make_cluster()
        with cluster.protect(["ghost"]):
            pass  # must not raise


class TestPinning:
    def test_pinned_survives_pressure(self):
        cluster = make_cluster(workers=1, mem=2 * MB)
        cluster.register_dataset(make_dataset(1, dataset_id="cached"))
        cluster.pin_dataset("cached")
        for i in range(3):
            cluster.register_dataset(make_dataset(1, dataset_id=f"d{i}"))
        assert cluster.nodes[0].slot(("cached", 0)).in_memory


class TestSnapshotAndReset:
    def test_snapshot_state(self):
        cluster = make_cluster()
        ds = make_dataset(2, dataset_id="d")
        cluster.register_dataset(ds)
        state = cluster.snapshot_state()
        assert "d" in state.datasets
        assert state.is_valid()

    def test_reset(self):
        cluster = make_cluster()
        cluster.register_dataset(make_dataset())
        cluster.clock.advance(5.0)
        cluster.reset()
        assert cluster.clock.now == 0.0
        assert cluster.live_dataset_count() == 0
        assert cluster.metrics.evictions == 0
        assert all(not node.slots for node in cluster.nodes)

    def test_fail_node(self):
        cluster = make_cluster()
        ds = make_dataset(4, dataset_id="d")
        cluster.register_dataset(ds)
        report = cluster.fail_node("worker-0")
        # worker-0 held partitions 0 and 2; no checkpoints -> both lost
        assert report.lost == [("d", 0), ("d", 2)]
        assert report.reloadable == []
        assert cluster.node("worker-0").mem_used == 0
