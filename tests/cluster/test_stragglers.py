"""Tests for straggler simulation and speculative mitigation (§5)."""

import pytest

from repro.cluster.metrics import Metrics
from repro.cluster.stragglers import (
    SpeculationConfig,
    StragglerProfile,
    apply_stragglers,
)


def times(**kw):
    return dict(kw)


class TestProfile:
    def test_default_factor_one(self):
        assert StragglerProfile().factor("w0") == 1.0

    def test_slowdown_applied(self):
        profile = StragglerProfile({"w0": 3.0})
        out = apply_stragglers(
            times(w0=1.0, w1=1.0, w2=1.0),
            profile,
            SpeculationConfig(enabled=False),
        )
        assert out["w0"] == 3.0
        assert out["w1"] == 1.0


class TestSpeculation:
    def test_backup_caps_straggler(self):
        profile = StragglerProfile({"w0": 10.0})
        out = apply_stragglers(
            times(w0=1.0, w1=1.0, w2=1.0),
            profile,
            SpeculationConfig(enabled=True, threshold=1.5, restart_overhead=0.1),
        )
        # backup: starts at the median (1.0), redoes 1.0 * 1.1 -> 2.1 total
        assert out["w0"] == pytest.approx(2.1)

    def test_below_threshold_untouched(self):
        profile = StragglerProfile({"w0": 1.2})
        out = apply_stragglers(
            times(w0=1.0, w1=1.0, w2=1.0),
            profile,
            SpeculationConfig(enabled=True, threshold=1.5),
        )
        assert out["w0"] == pytest.approx(1.2)

    def test_backup_not_used_if_slower(self):
        # modest straggle where restarting would not pay off
        profile = StragglerProfile({"w0": 1.6})
        config = SpeculationConfig(enabled=True, threshold=1.5, restart_overhead=0.9)
        out = apply_stragglers(times(w0=1.0, w1=1.0, w2=1.0), profile, config)
        # backup finish = 1.0 + 1.9 = 2.9 > 1.6 -> keep the straggler
        assert out["w0"] == pytest.approx(1.6)

    def test_metrics_counted(self):
        metrics = Metrics()
        profile = StragglerProfile({"w0": 10.0})
        apply_stragglers(
            times(w0=1.0, w1=1.0, w2=1.0),
            profile,
            SpeculationConfig(enabled=True),
            metrics,
        )
        assert metrics.speculative_tasks == 1

    def test_even_node_count_uses_true_median(self):
        """Regression: the cutoff once used the upper-middle value instead
        of the median, so on 4-node clusters a straggler could hide below
        the inflated threshold and never get a backup."""
        metrics = Metrics()
        profile = StragglerProfile({"w3": 2.8})
        out = apply_stragglers(
            times(w0=1.0, w1=1.0, w2=2.0, w3=1.0),
            profile,
            SpeculationConfig(enabled=True, threshold=1.5, restart_overhead=0.1),
            metrics,
        )
        # stretched = [1.0, 1.0, 2.0, 2.8]: true median 1.5 -> cutoff 2.25
        # flags w3 (2.8); the upper-middle bug put the cutoff at 3.0 and
        # silently skipped speculation.  backup finish = 1.5 + 1.1 = 2.6.
        assert metrics.speculative_tasks == 1
        assert out["w3"] == pytest.approx(2.6)
        assert out["w2"] == pytest.approx(2.0)

    def test_single_node_no_speculation(self):
        profile = StragglerProfile({"w0": 10.0})
        out = apply_stragglers(times(w0=1.0), profile, SpeculationConfig(enabled=True))
        assert out["w0"] == 10.0

    def test_zero_median_guard(self):
        profile = StragglerProfile({"w0": 10.0})
        out = apply_stragglers(
            times(w0=0.0, w1=0.0), profile, SpeculationConfig(enabled=True)
        )
        assert out == {"w0": 0.0, "w1": 0.0}
