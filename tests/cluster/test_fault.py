"""Tests for fault tolerance: choose-score store, failure injection."""

from repro.cluster import Cluster, MB
from repro.cluster.fault import (
    ChooseScoreStore,
    FailureEvent,
    FailureInjector,
)
from repro.core.datasets import Dataset


class TestChooseScoreStore:
    def test_put_get(self):
        store = ChooseScoreStore()
        store.put("ch", "b0", 0.5)
        assert store.get("ch", "b0") == 0.5
        assert store.has("ch", "b0")

    def test_missing(self):
        store = ChooseScoreStore()
        assert store.get("ch", "b0") is None
        assert not store.has("ch", "b0")

    def test_scores_for_choose(self):
        store = ChooseScoreStore()
        store.put("ch", "b0", 0.5)
        store.put("ch", "b1", 0.7)
        store.put("other", "b0", 0.1)
        assert store.scores_for("ch") == {"b0": 0.5, "b1": 0.7}

    def test_len(self):
        store = ChooseScoreStore()
        store.put("ch", "b0", 1.0)
        store.put("ch", "b0", 2.0)  # overwrite
        assert len(store) == 1


class TestFailureInjector:
    def _cluster_with_data(self):
        cluster = Cluster(2, 10 * MB)
        ds = Dataset.from_data(
            list(range(20)), num_partitions=2, dataset_id="d", nominal_bytes=2 * MB
        )
        cluster.register_dataset(ds)
        return cluster

    def test_fires_at_stage(self):
        cluster = self._cluster_with_data()
        injector = FailureInjector.at_stages([(2, "worker-0")])
        assert injector.maybe_fail(cluster, 0) == []
        assert injector.maybe_fail(cluster, 1) == []
        reports = injector.maybe_fail(cluster, 2)
        assert [r.node_id for r in reports] == ["worker-0"]
        assert reports[0].lost == [("d", 0)]
        assert not reports[0].permanent

    def test_fires_only_once(self):
        cluster = self._cluster_with_data()
        injector = FailureInjector.at_stages([(0, "worker-0")])
        assert injector.maybe_fail(cluster, 0)
        assert injector.maybe_fail(cluster, 0) == []

    def test_multiple_events(self):
        cluster = self._cluster_with_data()
        injector = FailureInjector.at_stages([(0, "worker-0"), (0, "worker-1")])
        reports = injector.maybe_fail(cluster, 0)
        lost = [k for r in reports for k in r.lost]
        assert set(lost) == {("d", 0), ("d", 1)}

    def test_unmaterialized_data_is_lost(self):
        # without a checkpoint, a memory-resident partition does not
        # survive its node: the slot is gone and the dataset has a hole
        cluster = self._cluster_with_data()
        injector = FailureInjector.at_stages([(0, "worker-0")])
        reports = injector.maybe_fail(cluster, 0)
        assert reports[0].lost == [("d", 0)]
        assert reports[0].reloadable == []
        assert cluster.missing_partitions("d") == [("d", 0)]

    def test_checkpointed_data_survives_on_disk(self):
        cluster = self._cluster_with_data()
        cluster.mark_checkpointed("d")
        injector = FailureInjector.at_stages([(0, "worker-0")])
        reports = injector.maybe_fail(cluster, 0)
        assert reports[0].lost == []
        assert reports[0].reload == [("d", 0)]
        payload, seconds, _ = cluster.load_partition("d", 0)
        assert payload == list(range(10))
        assert cluster.metrics.partition_misses == 1  # read from checkpoint
