"""Tests for memory policies: LRU, AMM (Alg. 2) and its ablation variants."""

import pytest

from repro.cluster.memory import (
    AccessOnlyPolicy,
    AMMPolicy,
    LRUPolicy,
    SizeOnlyPolicy,
    make_policy,
)
from repro.cluster.node import Node, Slot


def slot(ds, nbytes=100, last=0.0, idx=0):
    return Slot((ds, idx), [1], nbytes, in_memory=True, last_access=last)


class TestLRU:
    def test_oldest_evicted(self):
        policy = LRUPolicy()
        candidates = [slot("a", last=5.0), slot("b", last=1.0), slot("c", last=3.0)]
        assert policy.select_victim(None, candidates).dataset_id == "b"

    def test_tie_breaks_by_key(self):
        policy = LRUPolicy()
        candidates = [slot("b", last=1.0), slot("a", last=1.0)]
        assert policy.select_victim(None, candidates).dataset_id == "a"

    def test_always_spills(self):
        assert LRUPolicy().should_spill(slot("a"))


class TestAMM:
    def make_amm(self, accesses):
        policy = AMMPolicy()
        policy.bind(lambda ds: accesses.get(ds, 0), alpha=2.0)
        return policy

    def test_preference_formula(self):
        policy = self.make_amm({"a": 3})
        assert policy.preference(slot("a", nbytes=100)) == 3 * 100 * 2.0

    def test_evicts_lowest_preference(self):
        policy = self.make_amm({"hot": 5, "cold": 0})
        victim = policy.select_victim(
            None, [slot("hot", nbytes=100), slot("cold", nbytes=100)]
        )
        assert victim.dataset_id == "cold"

    def test_size_matters(self):
        # equal access counts: the smaller partition is cheaper to reload
        policy = self.make_amm({"big": 1, "small": 1})
        victim = policy.select_victim(
            None, [slot("big", nbytes=1000), slot("small", nbytes=10)]
        )
        assert victim.dataset_id == "small"

    def test_tie_breaks_lru(self):
        policy = self.make_amm({"a": 1, "b": 1})
        victim = policy.select_victim(
            None, [slot("a", last=5.0), slot("b", last=1.0)]
        )
        assert victim.dataset_id == "b"

    def test_unbound_acts_like_size_lru(self):
        policy = AMMPolicy()
        victim = policy.select_victim(None, [slot("a", nbytes=10), slot("b", nbytes=100)])
        assert victim.dataset_id == "a"

    def test_dead_data_dropped_free(self):
        policy = self.make_amm({"dead": 0, "live": 2})
        assert not policy.should_spill(slot("dead"))
        assert policy.should_spill(slot("live"))

    def test_unbound_always_spills(self):
        assert AMMPolicy().should_spill(slot("x"))

    def test_preference_order(self):
        policy = self.make_amm({"a": 1, "b": 5, "c": 0})
        node = Node("w", 1000)
        for name in ("a", "b", "c"):
            node.put((name, 0), [1], 100, now=0.0, in_memory=True)
        order = [s.dataset_id for s in policy.preference_order(node)]
        assert order == ["c", "a", "b"]


class TestAblationVariants:
    def test_access_only_ignores_size(self):
        policy = AccessOnlyPolicy()
        policy.bind(lambda ds: {"a": 1, "b": 2}[ds], alpha=2.0)
        victim = policy.select_victim(
            None, [slot("a", nbytes=1), slot("b", nbytes=10**9)]
        )
        assert victim.dataset_id == "a"

    def test_size_only_ignores_access(self):
        policy = SizeOnlyPolicy()
        policy.bind(lambda ds: {"a": 100, "b": 0}[ds], alpha=2.0)
        victim = policy.select_victim(
            None, [slot("a", nbytes=10), slot("b", nbytes=1000)]
        )
        assert victim.dataset_id == "a"


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LRUPolicy),
            ("amm", AMMPolicy),
            ("amm-access-only", AccessOnlyPolicy),
            ("amm-size-only", SizeOnlyPolicy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("random")
