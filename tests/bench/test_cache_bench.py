"""Tests for the cache benchmark surfaces: the ``cache_reuse`` figure and
the ``--wallclock`` cold/warm harness (scaled far below the defaults so
the suite stays fast)."""

import json

from repro.bench import ALL_FIGURES, cache_reuse, run_wallclock
from repro.bench.wallclock import render_wallclock


class TestCacheReuseFigure:
    def test_registered(self):
        assert "cache_reuse" in ALL_FIGURES

    def test_small_scale_passes_all_checks(self):
        result = cache_reuse(branch_count=4, trace_n=2_000)
        assert result.all_checks_pass, result.checks
        assert len(result.rows) == 2
        # warm hits recorded for both choose modes
        assert all(row[4] > 0 for row in result.rows)


class TestWallclockHarness:
    def test_report_shape_and_artifact(self, tmp_path):
        out = tmp_path / "BENCH_pr4.json"
        report = run_wallclock(
            out_path=str(out),
            samples=60,
            features=16,
            trace_n=2_000,
            branch_count=4,
        )
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["benchmark"] == report["benchmark"]
        for bench in report["benches"].values():
            assert bench["wall_cold_s"] > 0
            assert bench["warm_hits"] > 0
            assert bench["outputs_identical"]
            assert bench["sim_reduction_pct"] > 0
        assert report["wall_reduction_pct_overall"] == (
            100.0
            * (1.0 - report["wall_warm_total_s"] / report["wall_cold_total_s"])
        )

    def test_render_mentions_every_bench(self, tmp_path):
        report = run_wallclock(
            out_path="", samples=60, features=16, trace_n=2_000, branch_count=4
        )
        text = render_wallclock(report)
        for name in report["benches"]:
            assert name in text
        assert "overall" in text
