"""The --telemetry bench report and the breakdown/timeline table builders."""

import pytest

from repro import Cluster, GB, run_mdf
from repro.bench.report import telemetry_breakdown, timeline_table
from repro.bench.telemetry import telemetry_report
from ..conftest import build_filter_mdf

#: laptop-scale parameters so the report stays test-suite fast
SMALL = dict(pairs_n=40, workers=2, mem_per_worker_gb=0.25, per_worker_data_gb=0.5,
             sample_interval=2.0)


class TestTelemetryReport:
    @pytest.fixture(scope="class")
    def report(self):
        return telemetry_report(**SMALL)

    def test_contains_every_section(self, report):
        assert "telemetry demo" in report
        assert "timeline under LRU" in report
        assert "timeline under AMM" in report
        assert "telemetry breakdown by branch" in report
        assert "telemetry breakdown by node" in report
        assert "Prometheus exposition" in report
        assert "JSON exposition" in report

    def test_trace_registry_consistency_holds(self, report):
        assert "0 mismatches" in report
        assert "MISMATCH" not in report

    def test_prometheus_lines_present(self, report):
        assert "# TYPE repro_tasks_executed_total counter" in report


class TestTableBuilders:
    def test_breakdown_totals_match_metrics(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB),
            telemetry=True,
        )
        table = telemetry_breakdown(result.telemetry.registry, "node")
        total_row = next(
            line for line in table.splitlines() if line.startswith("total")
        )
        assert str(result.metrics.tasks_executed) in total_row.replace(".00", "")

    def test_breakdown_unattributed_bucket(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB),
            telemetry=True,
        )
        table = telemetry_breakdown(result.telemetry.registry, "branch")
        assert "(unattributed)" in table  # source stage runs outside any branch

    def test_timeline_table_decimates(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB),
            telemetry=0.01,
        )
        samples = result.telemetry.samples
        assert len(samples) > 6
        table = timeline_table(samples, max_rows=6)
        assert f"showing 6 of {len(samples)} samples" in table

    def test_timeline_table_short_series_untouched(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB),
            telemetry=True,
        )
        table = timeline_table(result.telemetry.samples, max_rows=1000)
        assert "showing" not in table


class TestCliFlag:
    def test_telemetry_flag_prints_report(self, capsys, monkeypatch):
        import repro.bench.telemetry as bench_telemetry
        from repro.bench.__main__ import main

        monkeypatch.setattr(
            bench_telemetry, "telemetry_report", lambda: "FAKE TELEMETRY REPORT"
        )
        assert main(["--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "FAKE TELEMETRY REPORT" in out
