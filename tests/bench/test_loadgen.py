"""Tests for the multi-tenant service load generator (PR9).

A tiny parameterisation runs the real scenarios end to end; the report
must carry the acceptance evidence (identity, validators, cross-tenant
reuse) and the exact percentiles must be exact.
"""

import json

from repro.bench.loadgen import percentile, render_loadgen, run_loadgen


class TestPercentile:
    def test_exact_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == 3.0
        assert percentile(values, 99) == 5.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 1) == 1.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty(self):
        assert percentile([], 50) is None


class TestLoadgen:
    def test_tiny_run_report_and_verdicts(self, tmp_path):
        out = str(tmp_path / "BENCH_pr10.json")
        report = run_loadgen(
            out_path=out,
            tenants=(2,),
            jobs_per_tenant=1,
            overlaps=(1.0,),
            workers=2,
        )
        # the acceptance invariants
        assert report["ok"], report
        assert report["outputs_identical"]
        assert report["identity_breaches"] == []
        assert report["validator_violations"] == 0
        # warm reuse: the second tenant rode the first tenant's work
        warm = report["warm_reuse"]
        assert warm["warm_cross_tenant_hits"] > 0
        assert warm["warm_latency_s"] < warm["cold_latency_s"]
        # grid shape
        (cell,) = report["overlap_grid"]
        assert cell["tenants"] == 2 and cell["overlap"] == 1.0
        assert cell["jobs"] == 2
        assert cell["jobs_per_sec"] > 0
        assert cell["latency_p50_s"] <= cell["latency_p99_s"]
        # full overlap with 2 tenants: somebody reused somebody's entries
        assert cell["cross_tenant_hits"] > 0
        # concurrency is honest about the host
        assert report["concurrency"]["cpu_count"] >= 1
        assert report["concurrency"]["wall_serial_s"] > 0
        # report persisted
        persisted = json.load(open(out))
        assert persisted["benchmark"] == report["benchmark"]

        # PR10: the obs plane audited every scenario
        assert report["replay_parity"]
        assert report["replay_parity_failures"] == []
        assert report["fairness_alerts"] == 0
        assert report["slo_alerts"] == 0
        for name, share in cell["fairness"].items():
            assert share["within_fair_bound"], (name, share)

        rendered = render_loadgen(report)
        assert "outputs identical to solo: yes" in rendered
        assert "validator violations: 0" in rendered
        assert "cross-tenant hits (warm tenant):" in rendered
        assert "warm tenant faster than cold: yes" in rendered
        assert "service replay parity: yes" in rendered
        assert "fairness alerts: 0" in rendered
        assert "slo alerts: 0" in rendered

    def test_zero_overlap_has_no_cross_tenant_hits(self, tmp_path):
        report = run_loadgen(
            out_path=str(tmp_path / "r.json"),
            tenants=(2,),
            jobs_per_tenant=1,
            overlaps=(0.0,),
            workers=1,
        )
        (cell,) = report["overlap_grid"]
        assert cell["cross_tenant_hits"] == 0
        assert cell["hit_rate"] == 0.0
        assert report["outputs_identical"]
