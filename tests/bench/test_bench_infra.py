"""Tests for the benchmark harness infrastructure (report + figure types)."""

import math

import pytest

from repro.bench import FigureResult, improvement, render_table, rows_to_dict
from repro.bench.figures import ALL_FIGURES, table1_optimizations
from repro.bench.report import _fmt


class TestReport:
    def test_improvement(self):
        assert improvement(100.0, 40.0) == pytest.approx(60.0)
        assert improvement(100.0, 120.0) == pytest.approx(-20.0)

    def test_improvement_undefined_baseline_is_nan(self):
        # a non-positive baseline has no meaningful ratio; the tables
        # render the NaN as "-" instead of claiming a fake 0%
        assert math.isnan(improvement(0.0, 40.0))
        assert math.isnan(improvement(-1.0, 40.0))
        assert _fmt(improvement(0.0, 40.0)) == "-"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert "T" in lines[1]
        assert "a" in lines[3] and "bb" in lines[3]
        assert len(lines) >= 6

    def test_render_table_note(self):
        text = render_table("T", ["x"], [[1]], note="hello")
        assert "note: hello" in text

    def test_fmt_floats(self):
        assert _fmt(123.456) == "123"
        assert _fmt(1.234) == "1.23"
        assert _fmt(0.1234) == "0.123"
        assert _fmt(float("nan")) == "-"
        assert _fmt("str") == "str"

    def test_rows_to_dict(self):
        out = rows_to_dict(["a", "b"], [[1, 2], [3, 4]])
        assert out == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]


class TestFigureResult:
    def test_render_includes_checks(self):
        result = table1_optimizations()
        text = result.render()
        assert "Table 1" in text
        assert "shape checks" in text
        assert "OK" in text

    def test_as_dict(self):
        result = table1_optimizations()
        d = result.as_dict()
        assert d["figure"] == "Table 1"
        assert isinstance(d["rows"], list) and d["rows"]
        assert d["checks"]

    def test_all_checks_pass_flag(self):
        result = FigureResult("F", "t", ["c"], [[1]], checks={"x": True, "y": False})
        assert not result.all_checks_pass

    def test_registry_complete(self):
        """Every §6 artefact has a registered experiment."""
        expected = {
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10_13",
            "fig11_14",
            "fig12_15",
            "fig16",
            "fig17_18",
            "choose_throughput",
            "failure_recovery",
            "appendix_b",
            "supplementary_ts5",
            "cache_reuse",
        }
        assert set(ALL_FIGURES) == expected


class TestCliModule:
    def test_unknown_figure_exits_2(self):
        from repro.bench.__main__ import main

        assert main(["not-a-figure"]) == 2

    def test_single_figure_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_profile_flag_reports_attribution_and_artifact(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.bench.__main__ import main
        from repro.prof import active_profile_collector

        monkeypatch.chdir(tmp_path)  # artifact lands in the scratch dir
        assert main(["--profile", "failure_recovery"]) == 0
        out = capsys.readouterr().out
        assert "profiling: on" in out
        assert "[profile] failure_recovery:" in out
        assert "compute" in out
        artifact = tmp_path / "PROFILE_failure_recovery.speedscope.json"
        assert artifact.exists()
        # the collector is uninstalled afterwards: plain runs stay unprofiled
        assert active_profile_collector() is None
