"""Golden-trace regression: canonical workloads reproduce byte-for-byte.

Any drift in a scheduling, eviction, pruning or discard decision changes
the recorded JSONL and fails here.  For *intended* decision changes,
regenerate with ``PYTHONPATH=src python -m tests.golden.regenerate`` and
review the diff.
"""

import pytest

from repro.trace import Trace, validate_trace

from .regenerate import GOLDEN_FILES, RECORDERS


@pytest.mark.parametrize("name", sorted(RECORDERS))
class TestGoldenTraces:
    def test_reproduces_byte_for_byte(self, name):
        path = GOLDEN_FILES[name]
        assert path.exists(), (
            f"golden trace {path} missing — regenerate with "
            f"`PYTHONPATH=src python -m tests.golden.regenerate`"
        )
        result = RECORDERS[name]()
        assert result.events.to_jsonl() == path.read_text(), (
            f"decision trace of {name!r} drifted from the golden recording; "
            f"if the change is intended, regenerate via "
            f"`PYTHONPATH=src python -m tests.golden.regenerate` and review the diff"
        )

    def test_golden_file_satisfies_invariants(self, name):
        """The recordings themselves must pass all four validators."""
        trace = Trace.load_jsonl(GOLDEN_FILES[name])
        assert validate_trace(trace) == []


class TestGoldenCoverage:
    def test_explore_choose_golden_pins_evictions_and_pruning(self):
        trace = Trace.load_jsonl(GOLDEN_FILES["explore_choose"])
        kinds = trace.kinds()
        assert kinds.get("partition_evicted", 0) > 0
        assert kinds.get("branch_pruned", 0) > 0
        assert kinds.get("choose_finalized", 0) == 1

    def test_quickstart_golden_matches_docs_walkthrough(self):
        trace = Trace.load_jsonl(GOLDEN_FILES["quickstart"])
        finalized = trace.filter("choose_finalized")
        assert len(finalized) == 1
        assert finalized[0].data["kept"] == ["explore-threshold#0"]
