"""Golden decision traces: canonical recordings + regeneration entry point.

The two recorded workloads:

* ``quickstart`` — ``examples/quickstart.py`` on a roomy 4-worker cluster
  (the exact job every new user runs first);
* ``explore_choose`` — a monotone-pruning explore/choose job on a starved
  cluster, so the golden trace also pins evictions, spills and pruning.

Traces are byte-stable: timestamps are simulated seconds, stage ids are
per-graph, and the JSONL encoding is canonical (sorted keys, compact
separators).  Any engine change that alters a decision — scheduling
order, eviction victim, pruning point — shows up as a byte diff.

Regenerate after an *intended* decision change with::

    PYTHONPATH=src python -m tests.golden.regenerate

then review the diff like any other golden update.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

from repro import CallableEvaluator, Cluster, GB, MB, MDFBuilder, Min, run_mdf

GOLDEN_DIR = Path(__file__).resolve().parent
REPO_ROOT = GOLDEN_DIR.parents[1]

GOLDEN_FILES = {
    "quickstart": GOLDEN_DIR / "quickstart.trace.jsonl",
    "explore_choose": GOLDEN_DIR / "explore_choose.trace.jsonl",
    # one representative run per lab scheduler, each over the zoo
    # workload that exercises it hardest (wide reordering for HEFT,
    # sibling speculation for speculative, eviction pressure for work
    # stealing, arbitrary order for the random control)
    "policy_heft": GOLDEN_DIR / "policy_heft.trace.jsonl",
    "policy_speculative": GOLDEN_DIR / "policy_speculative.trace.jsonl",
    "policy_wsteal": GOLDEN_DIR / "policy_wsteal.trace.jsonl",
    "policy_random": GOLDEN_DIR / "policy_random.trace.jsonl",
}


def load_quickstart_module():
    """Import ``examples/quickstart.py`` (not a package) by file path."""
    path = REPO_ROOT / "examples" / "quickstart.py"
    spec = importlib.util.spec_from_file_location("quickstart_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_explore_choose_mdf():
    """Five filter branches, monotone count evaluator, Min selection.

    Sorted thresholds give monotonically rising scores, so the engine
    prunes the tail branches (Table 1); the tight cluster used by
    :func:`record_explore_choose` forces evictions and spills.
    """
    builder = MDFBuilder("golden-explore-choose")
    src = builder.read_data(list(range(1000)), name="src", nominal_bytes=96 * MB)
    evaluator = CallableEvaluator(len, name="count", monotone=True)
    result = src.explore(
        {"threshold": [50, 150, 400, 700, 900]},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
        name="explore-threshold",
    ).choose(evaluator, Min(), name="keep-smallest")
    result.write(name="out")
    return builder.build()


def record_quickstart():
    mdf = load_quickstart_module().build_quickstart_mdf()
    cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
    return run_mdf(mdf, cluster, scheduler="bas", memory="amm", validate=True)


def record_explore_choose():
    mdf = build_explore_choose_mdf()
    cluster = Cluster(num_workers=2, mem_per_worker=48 * MB)
    return run_mdf(mdf, cluster, scheduler="bas", memory="amm", validate=True)


def _record_lab_policy(workload_name: str, scheduler: str):
    """One lab-zoo workload under one contender scheduler (validated)."""
    from repro.lab.workloads import get_workload

    result, _ = get_workload(workload_name).run(
        scheduler=scheduler, memory="amm", validate=True
    )
    return result


def record_policy_heft():
    return _record_lab_policy("wide_topk", "heft")


def record_policy_speculative():
    return _record_lab_policy("nested_topk", "speculative")


def record_policy_wsteal():
    return _record_lab_policy("starved_explore", "wsteal")


def record_policy_random():
    return _record_lab_policy("filter_min", "random")


RECORDERS = {
    "quickstart": record_quickstart,
    "explore_choose": record_explore_choose,
    "policy_heft": record_policy_heft,
    "policy_speculative": record_policy_speculative,
    "policy_wsteal": record_policy_wsteal,
    "policy_random": record_policy_random,
}


def main() -> None:
    for name, record in RECORDERS.items():
        result = record()
        path = GOLDEN_FILES[name]
        result.events.save_jsonl(path)
        print(f"{name}: {len(result.events)} events -> {path}")


if __name__ == "__main__":
    main()
