"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
    TopK,
)


@pytest.fixture
def small_cluster():
    """Four workers with 1 GB each — no memory pressure for small jobs."""
    return Cluster(num_workers=4, mem_per_worker=1 * GB)


@pytest.fixture
def tight_cluster():
    """Four workers with little memory — forces evictions."""
    return Cluster(num_workers=4, mem_per_worker=64 * MB)


def build_filter_mdf(thresholds=(10, 100, 500), nominal=64 * MB, data_n=1000):
    """A minimal one-explore MDF: filter values below a threshold, keep the
    smallest surviving dataset."""
    builder = MDFBuilder("filter-mdf")
    src = builder.read_data(list(range(data_n)), name="src", nominal_bytes=nominal)
    result = src.explore(
        {"threshold": list(thresholds)},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
    ).choose(CallableEvaluator(len, name="count"), Min(), name="choose-min")
    result.write(name="out")
    return builder.build()


def build_nested_mdf(outer=(2, 3), inner=(5, 7), nominal=64 * MB, data_n=400):
    """A nested two-level MDF multiplying integers, keeping the max sum."""
    builder = MDFBuilder("nested-mdf")
    src = builder.read_data(list(range(data_n)), name="src", nominal_bytes=nominal)
    score = CallableEvaluator(lambda xs: float(sum(xs)), name="sum")

    def inner_branch(pipe, p):
        return pipe.transform(
            lambda xs, m=p["m2"]: [x * m for x in xs],
            name=f"mul-{p['_outer']}-{p['m2']}",
        )

    def outer_branch(pipe, p):
        first = pipe.transform(
            lambda xs, m=p["m1"]: [x * m for x in xs], name=f"mul1-{p['m1']}"
        )
        return first.explore(
            {"m2": list(inner), "_outer": [p["m1"]]},
            inner_branch,
            name=f"inner-{p['m1']}",
        ).choose(score, TopK(1), name=f"choose-inner-{p['m1']}")

    result = src.explore({"m1": list(outer)}, outer_branch, name="outer").choose(
        score, TopK(1), name="choose-outer"
    )
    result.write(name="out")
    return builder.build()


@pytest.fixture
def filter_mdf():
    return build_filter_mdf()


@pytest.fixture
def nested_mdf():
    return build_nested_mdf()
