"""Tests for the §3.2 patterns: cross validation and iterative explore."""

import numpy as np
import pytest

from repro import Cluster, GB, KThreshold, MB
from repro.engine import run_mdf
from repro.patterns import cross_validation_mdf, fold_splits, iterative_explore_mdf
from repro.patterns.iterative import IterationState


class TestFoldSplits:
    def test_counts(self):
        splits = fold_splits(10, 5)
        assert len(splits) == 5
        for train, val in splits:
            assert len(train) == 8 and len(val) == 2
            assert sorted(train + val) == list(range(10))

    def test_uneven(self):
        splits = fold_splits(10, 3)
        val_sizes = sorted(len(v) for _, v in splits)
        assert val_sizes == [3, 3, 4]

    def test_disjoint_validation_folds(self):
        splits = fold_splits(12, 4)
        vals = [set(v) for _, v in splits]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (vals[i] & vals[j])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            fold_splits(10, 1)
        with pytest.raises(ValueError):
            fold_splits(3, 5)


class TestCrossValidation:
    def test_selects_best_fold(self):
        # items are (x, y) pairs from y = 2x + noise; the "model" is the
        # least-squares slope, scored by negative validation error
        rng = np.random.default_rng(0)
        xs = rng.uniform(-1, 1, size=60)
        items = [(float(x), float(2.0 * x + rng.normal(0, 0.1))) for x in xs]

        def train(train_items, val_items):
            tx = np.array([x for x, _ in train_items])
            ty = np.array([y for _, y in train_items])
            slope = float((tx * ty).sum() / (tx * tx).sum())
            vx = np.array([x for x, _ in val_items])
            vy = np.array([y for _, y in val_items])
            err = float(np.mean((slope * vx - vy) ** 2))
            return {"slope": slope, "val_error": err}

        mdf = cross_validation_mdf(
            items,
            train_fn=train,
            score_fn=lambda m: -m["val_error"],
            k=5,
            nominal_bytes=32 * MB,
        )
        result = run_mdf(mdf, Cluster(4, 1 * GB))
        model = result.output[0]
        assert abs(model["slope"] - 2.0) < 0.2
        decision = result.decision_for("choose-fold")
        assert len(decision.scores) == 5
        best = max(decision.scores.values())
        winning_branch = decision.kept[0]
        assert decision.scores[winning_branch] == best

    def test_structure(self):
        mdf = cross_validation_mdf(
            list(range(20)),
            train_fn=lambda tr, va: sum(tr),
            score_fn=float,
            k=4,
        )
        assert len(mdf.scopes["explore-folds"].branches) == 4
        mdf.validate()


class TestIterativeExplore:
    def test_fastest_converging_config_wins(self):
        # state halves (rate r): converges when |x| < 0.01; larger r wins
        mdf = iterative_explore_mdf(
            initial=1.0,
            configs=[0.9, 0.5, 0.1],
            step_fn=lambda x, r: x * r,
            converged_fn=lambda x, r: abs(x) < 0.01,
            max_rounds=60,
            nominal_bytes=16 * MB,
        )
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        state = result.output[0]
        assert isinstance(state, IterationState)
        assert state.converged
        # config 0.1 converges fastest: 1 -> 0.1 -> 0.01 -> 0.001 (3 rounds)
        assert state.rounds == 3
        assert result.decision_for("choose-config").kept == ["explore-configs#2"]

    def test_diverging_branch_marked(self):
        mdf = iterative_explore_mdf(
            initial=1.0,
            configs=[2.0, 0.5],
            step_fn=lambda x, r: x * r,
            converged_fn=lambda x, r: abs(x) < 0.01,
            diverged_fn=lambda x, r: abs(x) > 100.0,
            max_rounds=20,
            nominal_bytes=16 * MB,
        )
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        decision = result.decision_for("choose-config")
        # config 2.0 diverges (huge penalty); 0.5 converges and wins
        assert decision.kept == ["explore-configs#1"]
        assert decision.scores["explore-configs#0"] <= -1e8

    def test_short_circuit_stops_real_computation(self):
        calls = []

        def step(x, r):
            calls.append(r)
            return x * r

        mdf = iterative_explore_mdf(
            initial=1.0,
            configs=[0.1, 0.2],
            step_fn=step,
            converged_fn=lambda x, r: abs(x) < 0.01,
            max_rounds=50,
            nominal_bytes=16 * MB,
        )
        calls.clear()
        run_mdf(mdf, Cluster(2, 1 * GB))
        # converged branches short-circuit: far fewer than 2*50 step calls
        assert len(calls) <= 10

    def test_first_k_converged_prunes_rest(self):
        mdf = iterative_explore_mdf(
            initial=1.0,
            configs=[0.5, 0.4, 0.3, 0.2],
            step_fn=lambda x, r: x * r,
            converged_fn=lambda x, r: abs(x) < 0.01,
            max_rounds=40,
            selection=KThreshold(1, 0.0, above=True),
            nominal_bytes=16 * MB,
        )
        result = run_mdf(mdf, Cluster(2, 1 * GB))
        decision = result.decision_for("choose-config")
        assert len(decision.kept) == 1
        assert len(decision.pruned) == 3  # never executed
