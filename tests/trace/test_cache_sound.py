"""Tests for the ``cache_sound`` invariant validator.

Honest cache protocols pass (that direction is covered end-to-end by
``tests/cache``); here hand-built malformed traces must be caught: a hit
serving different bytes than its admit recorded, a cluster-tier hit on an
invalidated entry, and a hit whose materialised dataset registers with
different bytes than promised.
"""

from repro.trace import Trace, check_cache_sound


def admit(trace, fp="fp-1", dataset="d:x", nbytes=100):
    trace.emit(
        "cache_admit",
        fingerprint=fp,
        dataset=dataset,
        nbytes=nbytes,
        partitions=2,
        tier="cluster",
    )


def hit(trace, fp="fp-1", dataset="d:y", nbytes=100, tier="cluster"):
    trace.emit(
        "cache_hit",
        stage="stage-1",
        dataset=dataset,
        fingerprint=fp,
        tier=tier,
        nbytes=nbytes,
        saved_seconds=0.5,
    )


def register(trace, dataset="d:y", nbytes=100):
    trace.emit(
        "dataset_registered",
        dataset=dataset,
        producer="op",
        nbytes=nbytes,
        partitions=2,
    )


class TestHonestProtocol:
    def test_empty_trace_passes(self):
        assert check_cache_sound(Trace()) == []

    def test_admit_hit_register_passes(self):
        trace = Trace()
        admit(trace)
        hit(trace)
        register(trace)
        assert check_cache_sound(trace) == []

    def test_readmission_after_invalidate_passes(self):
        trace = Trace()
        admit(trace)
        trace.emit(
            "cache_invalidate", fingerprint="fp-1", dataset="d:x", reason="test"
        )
        admit(trace)
        hit(trace)
        register(trace)
        assert check_cache_sound(trace) == []

    def test_discarded_pending_hit_passes(self):
        """An incremental choose may drop a hit's output before it is ever
        registered — that is not a soundness violation."""
        trace = Trace()
        admit(trace)
        hit(trace)
        trace.emit(
            "branch_discarded",
            choose="c",
            branch="b",
            dataset="d:y",
            materialized=False,
        )
        assert check_cache_sound(trace) == []

    def test_store_tier_hit_without_admit_passes(self):
        """Store-tier entries can predate the trace (cross-process reuse)."""
        trace = Trace()
        hit(trace, tier="store")
        register(trace)
        assert check_cache_sound(trace) == []


class TestViolations:
    def test_hit_bytes_mismatch_admit(self):
        trace = Trace()
        admit(trace, nbytes=100)
        hit(trace, nbytes=150)
        register(trace, nbytes=150)
        violations = check_cache_sound(trace)
        assert len(violations) == 1
        assert "admit" in violations[0].message

    def test_cluster_hit_on_invalidated_entry(self):
        trace = Trace()
        admit(trace)
        trace.emit(
            "cache_invalidate", fingerprint="fp-1", dataset="d:x", reason="test"
        )
        hit(trace)
        register(trace)
        violations = check_cache_sound(trace)
        assert len(violations) == 1
        assert "invalidated" in violations[0].message

    def test_registered_bytes_mismatch_promise(self):
        trace = Trace()
        admit(trace)
        hit(trace, nbytes=100)
        register(trace, nbytes=64)
        violations = check_cache_sound(trace)
        assert len(violations) == 1
        assert "promised" in violations[0].message

    def test_violations_carry_check_name_and_seq(self):
        trace = Trace()
        admit(trace, nbytes=1)
        hit(trace, nbytes=2)
        (violation,) = check_cache_sound(trace)
        assert violation.check == "cache_sound"
        assert violation.seq >= 0
