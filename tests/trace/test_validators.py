"""Tests for the paper-invariant validators (repro.trace.validate).

Two directions: every honest engine configuration must validate cleanly,
and deliberately-broken schedulers/evictors (test doubles) plus hand-built
malformed traces must be caught.
"""

import pytest

from repro import (
    AMMPolicy,
    CallableEvaluator,
    Cluster,
    GB,
    InvariantViolation,
    MB,
    MDFBuilder,
    Min,
    assert_valid,
    run_mdf,
    set_auto_validate,
    validate_trace,
)
from repro.engine.scheduler import BranchAwareScheduler
from repro.trace import (
    Trace,
    check_amm_ranking,
    check_depth_first,
    check_no_use_after_discard,
    check_pruning_sound,
    check_recovery_sound,
)

from ..conftest import build_filter_mdf, build_nested_mdf


# --------------------------------------------------------------- honest runs


class TestHonestRunsValidate:
    @pytest.mark.parametrize("scheduler", ["bas", "bfs"])
    @pytest.mark.parametrize("memory", ["lru", "amm"])
    @pytest.mark.parametrize("mem_mb", [1024, 64])
    def test_all_checks_pass(self, scheduler, memory, mem_mb):
        for build in (build_filter_mdf, build_nested_mdf):
            cluster = Cluster(num_workers=4, mem_per_worker=mem_mb * MB)
            result = run_mdf(build(), cluster, scheduler=scheduler, memory=memory)
            assert validate_trace(result.events) == []

    def test_validators_accept_jsonl_roundtrip(self):
        cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
        result = run_mdf(build_nested_mdf(), cluster, scheduler="bas", memory="amm")
        reloaded = Trace.from_jsonl(result.events.to_jsonl())
        assert validate_trace(reloaded) == []

    def test_monotone_pruning_run_validates(self):
        builder = MDFBuilder("prune-mdf")
        src = builder.read_data(list(range(1000)), name="src", nominal_bytes=64 * MB)
        evaluator = CallableEvaluator(len, name="count", monotone=True)
        result = src.explore(
            {"threshold": [10, 100, 200, 500, 900]},
            lambda pipe, p: pipe.transform(
                lambda xs, t=p["threshold"]: [x for x in xs if x < t],
                name=f"filter-{p['threshold']}",
            ),
            name="exp",
        ).choose(evaluator, Min(), name="ch")
        result.write(name="out")
        mdf = builder.build()
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        job = run_mdf(mdf, cluster)
        assert job.metrics.branches_pruned > 0
        assert len(job.events.filter("branch_pruned")) == job.metrics.branches_pruned
        assert validate_trace(job.events) == []


# ------------------------------------------------------------- broken doubles


class BrokenBAS(BranchAwareScheduler):
    """Claims to be branch-aware but schedules breadth-first (FIFO)."""

    def select(self, ready, last_executed, successors_of_last, context):
        self.last_rationale = "broken-fifo"
        return ready[0]


class BrokenAMM(AMMPolicy):
    """Claims AMM but evicts the *highest*-preference partition."""

    def select_victim(self, node, candidates):
        return max(candidates, key=lambda s: (self.preference(s), s.last_access, s.key))


class TestBrokenDoublesAreCaught:
    def test_broken_scheduler_caught_by_depth_first(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11))
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(mdf, cluster, scheduler=BrokenBAS())
        violations = check_depth_first(result.events)
        assert violations, "FIFO scheduling under the 'bas' name must be flagged"
        assert all(v.check == "depth_first" for v in violations)

    def test_honest_bas_on_same_workload_is_clean(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11))
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(mdf, cluster, scheduler="bas")
        assert check_depth_first(result.events) == []

    def test_broken_evictor_caught_by_amm_ranking(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11), nominal=128 * MB)
        cluster = Cluster(num_workers=2, mem_per_worker=64 * MB)
        result = run_mdf(mdf, cluster, scheduler="bas", memory=BrokenAMM())
        assert len(result.events.filter("partition_evicted")) > 0
        violations = check_amm_ranking(result.events)
        assert violations, "max-preference eviction under the 'amm' name must be flagged"
        assert all(v.check == "amm_ranking" for v in violations)

    def test_honest_amm_on_same_workload_is_clean(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11), nominal=128 * MB)
        cluster = Cluster(num_workers=2, mem_per_worker=64 * MB)
        result = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
        assert len(result.events.filter("partition_evicted")) > 0
        assert check_amm_ranking(result.events) == []


# --------------------------------------------------------- synthetic traces


def synthetic_prune_event(trace, **overrides):
    data = dict(
        choose="ch",
        branch="exp#1",
        reason="monotone-trend",
        stages=["stage-9"],
        plan={"discard_incrementally": True, "prune_superfluous": True},
        properties={
            "associative": True,
            "monotone": True,
            "convex": False,
            "non_exhaustive": False,
        },
    )
    data.update(overrides)
    trace.emit("branch_pruned", **data)


class TestPruningSoundSynthetic:
    def test_unjustified_properties_caught(self):
        trace = Trace()
        synthetic_prune_event(
            trace,
            properties={
                "associative": True,
                "monotone": False,
                "convex": False,
                "non_exhaustive": False,
            },
        )
        violations = check_pruning_sound(trace)
        assert len(violations) == 1
        assert "do not justify" in violations[0].message

    def test_non_associative_selection_caught(self):
        trace = Trace()
        synthetic_prune_event(
            trace,
            properties={
                "associative": False,
                "monotone": True,
                "convex": False,
                "non_exhaustive": False,
            },
        )
        assert len(check_pruning_sound(trace)) == 1

    def test_plan_forbidding_pruning_caught(self):
        trace = Trace()
        synthetic_prune_event(
            trace, plan={"discard_incrementally": True, "prune_superfluous": False}
        )
        violations = check_pruning_sound(trace)
        assert len(violations) == 1
        assert "plan forbids" in violations[0].message

    def test_activity_after_prune_caught(self):
        trace = Trace()
        synthetic_prune_event(trace, stages=["stage-9"])
        trace.emit(
            "stage_scheduled",
            stage="stage-9",
            branch="exp#1",
            scheduler="bas",
            rationale=None,
            ready=["stage-9"],
            ready_choose=[],
            successors_ready=["stage-9"],
        )
        trace.emit(
            "branch_evaluated", choose="ch", branch="exp#1", score=1.0, pipelined=False
        )
        messages = [v.message for v in check_pruning_sound(trace)]
        assert any("later stage_scheduled" in m for m in messages)
        assert any("later evaluated" in m for m in messages)

    def test_table1_override_caught(self):
        trace = Trace()
        synthetic_prune_event(trace)
        violations = check_pruning_sound(trace, table1={"ch": {"prune_superfluous": False}})
        assert any("must not prune" in v.message for v in violations)

    def test_justified_prune_passes(self):
        trace = Trace()
        synthetic_prune_event(trace)
        assert check_pruning_sound(trace) == []


class TestUseAfterDiscardSynthetic:
    def access(self, trace, dataset):
        trace.emit(
            "dataset_access",
            dataset=dataset,
            index=0,
            node="worker-0",
            hit=True,
            nbytes=1,
            seconds=0.0,
            reload=False,
        )

    def register(self, trace, dataset):
        trace.emit(
            "dataset_registered", dataset=dataset, producer="op", nbytes=1, partitions=1
        )

    def test_read_after_discard_caught(self):
        trace = Trace()
        self.register(trace, "d:a")
        trace.emit("dataset_discarded", dataset="d:a")
        self.access(trace, "d:a")
        violations = check_no_use_after_discard(trace)
        assert len(violations) == 1
        assert "discarded at event #1" in violations[0].message

    def test_read_of_unregistered_dataset_caught(self):
        trace = Trace()
        self.access(trace, "d:ghost")
        violations = check_no_use_after_discard(trace)
        assert len(violations) == 1
        assert "never registered" in violations[0].message

    def test_member_absorbed_into_composite_caught(self):
        trace = Trace()
        self.register(trace, "d:a")
        self.register(trace, "d:b")
        trace.emit(
            "composite_registered", dataset="d:ab", members=["d:a", "d:b"], producer="ch"
        )
        self.access(trace, "d:a")  # must go through the composite now
        assert len(check_no_use_after_discard(trace)) == 1

    def test_access_via_composite_passes(self):
        trace = Trace()
        self.register(trace, "d:a")
        trace.emit(
            "composite_registered", dataset="d:ab", members=["d:a"], producer="ch"
        )
        self.access(trace, "d:ab")
        assert check_no_use_after_discard(trace) == []


class TestAmmRankingSynthetic:
    def evict(self, trace, ranking, victim=("d:a", 0), spilled=True, alpha=2.0):
        trace.emit(
            "partition_evicted",
            node="worker-0",
            dataset=victim[0],
            index=victim[1],
            nbytes=1,
            spilled=spilled,
            policy="amm",
            alpha=alpha,
            ranking=ranking,
        )

    def entry(self, dataset, index=0, acc=1, nbytes=100, last_access=0.0, alpha=2.0, pre=None):
        return {
            "dataset": dataset,
            "index": index,
            "acc": acc,
            "nbytes": nbytes,
            "last_access": last_access,
            "pre": acc * nbytes * alpha if pre is None else pre,
        }

    def test_inconsistent_pre_caught(self):
        trace = Trace()
        self.evict(trace, [self.entry("d:a", pre=999.0)])
        assert any("does not match" in v.message for v in check_amm_ranking(trace))

    def test_wrong_victim_caught(self):
        trace = Trace()
        ranking = [self.entry("d:a", acc=5), self.entry("d:b", acc=1)]
        self.evict(trace, ranking, victim=("d:a", 0))
        assert any("lower preference" in v.message for v in check_amm_ranking(trace))

    def test_dead_data_spilled_caught(self):
        """R4: acc=0 partitions must be dropped free of charge."""
        trace = Trace()
        self.evict(trace, [self.entry("d:a", acc=0)], spilled=True)
        assert any("must drop free" in v.message for v in check_amm_ranking(trace))

    def test_live_data_dropped_caught(self):
        trace = Trace()
        self.evict(trace, [self.entry("d:a", acc=3)], spilled=False)
        assert any("must spill" in v.message for v in check_amm_ranking(trace))

    def test_missing_ranking_caught(self):
        trace = Trace()
        self.evict(trace, [{"dataset": "d:a", "index": 0, "nbytes": 1, "last_access": 0.0}])
        assert any("no pre(d) ranking" in v.message for v in check_amm_ranking(trace))

    def test_alpha_override_checks_against_expected_cost_model(self):
        trace = Trace()
        self.evict(trace, [self.entry("d:a", alpha=2.0)], alpha=2.0)
        assert check_amm_ranking(trace) == []
        assert any(
            "does not match" in v.message for v in check_amm_ranking(trace, alpha=8.0)
        )

    def test_lru_evictions_unconstrained(self):
        trace = Trace()
        trace.emit(
            "partition_evicted",
            node="worker-0",
            dataset="d:a",
            index=0,
            nbytes=1,
            spilled=True,
            policy="lru",
            alpha=None,
            ranking=[{"dataset": "d:a", "index": 0, "nbytes": 1, "last_access": 0.0}],
        )
        assert check_amm_ranking(trace) == []


class TestRecoverySoundSynthetic:
    def start_recovery(self, trace, recomputed, reloaded=(), dropped=()):
        trace.emit(
            "recovery_started",
            node="worker-0",
            stage_index=2,
            permanent=False,
            reloaded=[list(k) for k in reloaded],
            recomputed=[list(k) for k in recomputed],
            dropped=[list(k) for k in dropped],
        )

    def store(self, trace, dataset, index):
        trace.emit(
            "partition_stored",
            dataset=dataset,
            index=index,
            node="worker-1",
            nbytes=1,
            tier="memory",
        )

    def access(self, trace, dataset):
        trace.emit(
            "dataset_access",
            dataset=dataset,
            index=0,
            node="worker-1",
            hit=True,
            nbytes=1,
            seconds=0.0,
            reload=False,
        )

    def test_read_before_recompute_caught(self):
        trace = Trace()
        self.start_recovery(trace, [("d:a", 0)])
        self.access(trace, "d:a")
        violations = check_recovery_sound(trace)
        assert any("still pending recompute" in v.message for v in violations)

    def test_read_after_store_passes(self):
        trace = Trace()
        self.start_recovery(trace, [("d:a", 0)])
        self.store(trace, "d:a", 0)
        self.access(trace, "d:a")
        assert check_recovery_sound(trace) == []

    def test_reregistration_settles_pending(self):
        trace = Trace()
        self.start_recovery(trace, [("d:a", 0), ("d:a", 1)])
        trace.emit(
            "dataset_registered", dataset="d:a", producer="op", nbytes=1, partitions=2
        )
        self.access(trace, "d:a")
        assert check_recovery_sound(trace) == []

    def test_discard_settles_pending(self):
        trace = Trace()
        self.start_recovery(trace, [("d:a", 0)])
        trace.emit("dataset_discarded", dataset="d:a")
        assert check_recovery_sound(trace) == []

    def test_access_through_composite_member_caught(self):
        trace = Trace()
        trace.emit(
            "composite_registered", dataset="d:ab", members=["d:a", "d:b"], producer="ch"
        )
        self.start_recovery(trace, [("d:a", 0)])
        self.access(trace, "d:ab")
        self.store(trace, "d:a", 0)
        violations = check_recovery_sound(trace)
        assert len(violations) == 1
        assert "'d:a'" in violations[0].message

    def test_never_rebuilt_caught(self):
        trace = Trace()
        self.start_recovery(trace, [("d:a", 1)])
        violations = check_recovery_sound(trace)
        assert any("never rebuilt or discarded" in v.message for v in violations)

    def test_reloads_and_drops_unconstrained(self):
        trace = Trace()
        self.start_recovery(trace, [], reloaded=[("d:a", 0)], dropped=[("d:b", 0)])
        self.access(trace, "d:a")
        assert check_recovery_sound(trace) == []


# ----------------------------------------------------------- assert plumbing


class TestAssertAndAutoValidate:
    def test_validate_none_trace_is_empty(self):
        assert validate_trace(None) == []
        assert_valid(None)  # no raise

    def test_assert_valid_raises_with_every_violation(self):
        trace = Trace()
        synthetic_prune_event(
            trace, plan={"discard_incrementally": False, "prune_superfluous": False}
        )
        with pytest.raises(InvariantViolation) as excinfo:
            assert_valid(trace)
        assert "plan forbids" in str(excinfo.value)
        assert excinfo.value.violations

    def test_run_mdf_validate_flag_passes_honest_run(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, validate=True)
        assert result.output == list(range(10))

    def test_run_mdf_validate_flag_catches_broken_scheduler(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11))
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        with pytest.raises(InvariantViolation):
            run_mdf(mdf, cluster, scheduler=BrokenBAS(), validate=True)

    def test_auto_validate_flag_routes_through_run_mdf(self):
        mdf = build_nested_mdf(outer=(2, 3, 5), inner=(7, 11))
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        set_auto_validate(True)
        try:
            with pytest.raises(InvariantViolation):
                run_mdf(mdf, cluster, scheduler=BrokenBAS())
            # explicit validate=False overrides the global flag
            run_mdf(mdf, cluster, scheduler=BrokenBAS(), validate=False)
        finally:
            set_auto_validate(False)
