"""Unit tests for the decision-trace event log (repro.trace.events)."""

import json

import pytest

from repro import Cluster, GB, run_mdf
from repro.trace import EVENT_SCHEMA, Trace, TraceEvent

from ..conftest import build_filter_mdf, build_nested_mdf


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class TestEmission:
    def test_events_are_sequenced_and_timestamped(self):
        clock = FakeClock(1.5)
        trace = Trace(clock=clock)
        e0 = trace.emit("dataset_discarded", dataset="d:a")
        clock.now = 2.25
        e1 = trace.emit("dataset_discarded", dataset="d:b")
        assert (e0.seq, e0.t) == (0, 1.5)
        assert (e1.seq, e1.t) == (1, 2.25)
        assert len(trace) == 2

    def test_unknown_kind_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="unknown trace event kind"):
            trace.emit("made_up_kind", foo=1)

    def test_missing_payload_field_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="missing=\\['nbytes'\\]"):
            trace.emit("checkpoint_written", dataset="d:a")

    def test_unexpected_payload_field_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="unexpected=\\['bogus'\\]"):
            trace.emit("checkpoint_written", dataset="d:a", nbytes=1, bogus=2)

    def test_disabled_trace_records_nothing(self):
        trace = Trace()
        trace.enabled = False
        assert trace.emit("dataset_discarded", dataset="d:a") is None
        assert len(trace) == 0

    def test_every_schema_kind_emittable(self):
        trace = Trace()
        for kind, fields in EVENT_SCHEMA.items():
            trace.emit(kind, **{name: None for name in fields})
        assert len(trace) == len(EVENT_SCHEMA)

    def test_filter_and_kinds(self):
        trace = Trace()
        trace.emit("dataset_discarded", dataset="d:a")
        trace.emit("checkpoint_written", dataset="d:a", nbytes=1)
        trace.emit("dataset_discarded", dataset="d:b")
        assert [e.data["dataset"] for e in trace.filter("dataset_discarded")] == [
            "d:a",
            "d:b",
        ]
        assert trace.kinds() == {"dataset_discarded": 2, "checkpoint_written": 1}


class TestJsonlExport:
    def test_lines_are_canonical_json(self):
        trace = Trace(clock=FakeClock(0.5))
        trace.emit("dataset_discarded", dataset="d:a")
        line = trace.to_jsonl().rstrip("\n")
        # canonical: sorted keys, compact separators, one line per event
        assert line == '{"data":{"dataset":"d:a"},"kind":"dataset_discarded","seq":0,"t":0.5}'

    def test_roundtrip_preserves_events(self):
        trace = Trace(clock=FakeClock(1.0))
        trace.emit("checkpoint_written", dataset="d:a", nbytes=42)
        trace.emit(
            "node_failed",
            node="worker-0",
            permanent=False,
            lost=[["d:a", 0]],
            reloadable=[],
        )
        back = Trace.from_jsonl(trace.to_jsonl())
        assert [e.as_dict() for e in back] == [e.as_dict() for e in trace]

    def test_save_and_load(self, tmp_path):
        trace = Trace()
        trace.emit("dataset_discarded", dataset="d:a")
        path = tmp_path / "t.jsonl"
        trace.save_jsonl(path)
        back = Trace.load_jsonl(path)
        assert back.to_jsonl() == trace.to_jsonl()

    def test_identical_runs_export_identical_bytes(self):
        """The property golden-trace regression relies on."""
        mdf = build_filter_mdf()
        runs = []
        for _ in range(2):
            cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
            result = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
            runs.append(result.events.to_jsonl())
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0


class TestChromeExport:
    def run_trace(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        return run_mdf(build_filter_mdf(), cluster, scheduler="bas", memory="amm").events

    def test_stages_become_complete_events_per_branch(self):
        trace = self.run_trace()
        chrome = trace.to_chrome()
        events = chrome["traceEvents"]
        # stage_completed events and non-stage span events both render as
        # complete ("X") events, together covering every clock advance
        stages = [e for e in events if e["ph"] == "X"]
        spans = trace.filter("stage_completed") + trace.filter("span")
        assert len(stages) == len(spans)
        for e in stages:
            assert e["dur"] >= 0.0
        # one timeline row (tid) per branch plus the main row
        branch_tids = {e["tid"] for e in stages}
        branches = {e.data["branch"] for e in spans}
        assert len(branch_tids) == len(branches)

    def test_decisions_become_instant_events(self):
        trace = self.run_trace()
        events = self.run_trace().to_chrome()["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} >= {"branch_discarded", "choose_finalized"}

    def test_thread_names_metadata_present(self):
        events = self.run_trace().to_chrome()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and all(e["name"] == "thread_name" for e in meta)

    def test_save_chrome_writes_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self.run_trace().save_chrome(path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert "traceEvents" in loaded and loaded["displayTimeUnit"] == "ms"


class TestJobResultIntegration:
    def test_result_events_is_the_cluster_trace(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster)
        assert result.events is cluster.trace
        assert len(result.events) > 0

    def test_cluster_reset_starts_a_fresh_trace(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        first = run_mdf(build_filter_mdf(), cluster)
        n_first = len(first.events)
        second = run_mdf(build_filter_mdf(), cluster)
        assert len(second.events) == n_first  # not doubled by accumulation

    def test_trace_covers_the_decision_surface(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_nested_mdf(), cluster)
        kinds = result.events.kinds()
        for expected in (
            "stage_scheduled",
            "stage_completed",
            "task_dispatched",
            "dataset_registered",
            "dataset_access",
            "choose_evaluation",
            "branch_evaluated",
            "branch_discarded",
            "choose_finalized",
            "dataset_discarded",
        ):
            assert kinds.get(expected, 0) > 0, f"no {expected} events recorded"


class TestTraceEvent:
    def test_as_dict_and_to_json_agree(self):
        event = TraceEvent(3, 1.25, "dataset_discarded", {"dataset": "d:a"})
        assert json.loads(event.to_json()) == event.as_dict()
