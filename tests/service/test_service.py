"""End-to-end tests for the multi-tenant job service and its CLI.

Concurrent jobs from several tenants over one shared store: every job's
outputs byte-identical to a solo run, traces validator-clean, streams
parseable, spool state queryable, failures contained.
"""

import io
import json
import os

import pytest

from repro.service import DONE, FAILED, JobService, JobSpec, outputs_digest
from repro.service.__main__ import main as service_main


def solo_digest(workload_name):
    with JobService(workers=1, cache=False) as service:
        service.submit("solo", workload_name)
        record = service.drain(timeout=120)[0]
    assert record.status == DONE, record.error
    return record.result["outputs_digest"]


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec(job_id="j1", tenant="t", workload="filter_min",
                       backend="mp", cost=2.5)
        again = JobSpec.from_dict(spec.as_dict())
        assert again == spec

    def test_from_dict_ignores_unknown_keys(self):
        spec = JobSpec.from_dict(
            {"job_id": "j1", "tenant": "t", "workload": "w", "mystery": 1}
        )
        assert spec.job_id == "j1"
        assert not hasattr(spec, "mystery")


class TestJobService:
    def test_concurrent_tenants_byte_identical_to_solo(self, tmp_path):
        reference = {
            "filter_min": solo_digest("filter_min"),
            "nested_topk": solo_digest("nested_topk"),
        }
        with JobService(
            workers=2, spool=str(tmp_path), tenants={"alice": 2.0, "bob": 1.0}
        ) as service:
            for tenant in ("alice", "bob"):
                service.submit(tenant, "filter_min")
                service.submit(tenant, "nested_topk")
            records = service.drain(timeout=120)
        assert len(records) == 4
        for record in records:
            assert record.status == DONE, record.error
            assert record.result["violations"] == 0
            assert (
                record.result["outputs_digest"]
                == reference[record.spec.workload]
            )
            assert record.latency is not None and record.latency > 0

    def test_streams_written_and_parseable(self, tmp_path):
        with JobService(workers=1, spool=str(tmp_path)) as service:
            job_id = service.submit("t", "filter_min")
            record = service.drain(timeout=120)[0]
        stream = os.path.join(str(tmp_path), "streams", f"{job_id}.ndjson")
        assert record.result["stream_path"] == stream
        events = [json.loads(line) for line in open(stream)]
        assert len(events) == record.result["events"]
        assert all("kind" in e and "t" in e for e in events)
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_state_json_snapshot(self, tmp_path):
        with JobService(workers=1, spool=str(tmp_path)) as service:
            service.submit("t", "filter_min")
            service.drain(timeout=120)
        state = json.load(open(os.path.join(str(tmp_path), "state.json")))
        assert state["counts"]["done"] == 1
        assert state["jobs"][0]["spec"]["workload"] == "filter_min"
        assert state["jobs"][0]["latency"] > 0

    def test_failed_job_contained(self, tmp_path):
        """A bad submission fails its own record; the pool survives and
        other jobs complete."""
        with JobService(workers=1, spool=str(tmp_path)) as service:
            bad = service.submit("t", "no-such-workload")
            good = service.submit("t", "filter_min")
            service.drain(timeout=120)
            assert service.record(bad).status == FAILED
            assert "no-such-workload" in service.record(bad).error
            assert service.record(good).status == DONE

    def test_unknown_spec_override_rejected(self, tmp_path):
        with JobService(workers=1, spool=str(tmp_path)) as service:
            with pytest.raises(TypeError):
                service.submit("t", "filter_min", not_a_field=1)

    def test_submit_after_close_rejected(self, tmp_path):
        service = JobService(workers=1, spool=str(tmp_path))
        service.close()
        with pytest.raises(RuntimeError):
            service.submit("t", "filter_min")

    def test_shared_cache_cross_tenant_reuse(self, tmp_path):
        """Sequential tenants on the compute-heavy workload: the second
        run hits entries the first tenant owns."""
        with JobService(workers=1, spool=str(tmp_path)) as service:
            service.submit("cold", "dl_grid")
            service.drain(timeout=240)
            service.submit("warm", "dl_grid")
            records = service.drain(timeout=240)
        by_tenant = {r.tenant: r for r in records}
        cold_cache = by_tenant["cold"].result["cache"]
        warm_cache = by_tenant["warm"].result["cache"]
        assert cold_cache["store_writes"] > 0
        assert warm_cache["cross_tenant_hits"] > 0
        assert (
            by_tenant["warm"].result["outputs_digest"]
            == by_tenant["cold"].result["outputs_digest"]
        )


class TestOutputsDigest:
    def test_digest_is_order_insensitive_over_sink_names(self):
        a = outputs_digest({"x": [1, 2], "y": [3]})
        b = outputs_digest({"y": [3], "x": [1, 2]})
        assert a == b

    def test_digest_differs_on_payload(self):
        assert outputs_digest({"x": [1]}) != outputs_digest({"x": [2]})


class TestCLI:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = service_main(list(argv), out=out)
        return code, out.getvalue()

    def test_submit_serve_status_follow(self, tmp_path):
        spool = str(tmp_path)
        code, text = self.run_cli(
            "submit", "--spool", spool, "--tenant", "alice",
            "--workload", "filter_min",
        )
        assert code == 0 and "queued ticket" in text
        code, text = self.run_cli(
            "submit", "--spool", spool, "--tenant", "bob",
            "--workload", "filter_min", "--cost", "2.0",
        )
        assert code == 0
        code, text = self.run_cli(
            "serve", "--spool", spool, "--workers", "2",
            "--tenant", "alice:2", "--tenant", "bob:1", "--once",
        )
        assert code == 0, text
        assert "served 2 job(s): 2 done, 0 failed" in text
        code, text = self.run_cli("status", "--spool", spool)
        assert code == 0
        assert "done=2" in text and "tenant alice" in text
        code, text = self.run_cli(
            "follow", "--spool", spool, "--job", "job-0001",
            "--idle-timeout", "0.2",
        )
        assert code == 0
        assert "stages" in text  # the live dashboard rendered

    def test_status_json_mode(self, tmp_path):
        spool = str(tmp_path)
        self.run_cli("submit", "--spool", spool, "--workload", "filter_min")
        self.run_cli("serve", "--spool", spool, "--once")
        code, text = self.run_cli("status", "--spool", spool, "--json")
        assert code == 0
        assert json.loads(text)["counts"]["done"] == 1

    def test_bad_ticket_is_skipped(self, tmp_path):
        spool = str(tmp_path)
        inbox = os.path.join(spool, "inbox")
        os.makedirs(inbox)
        with open(os.path.join(inbox, "bad.json"), "w") as fh:
            fh.write("{not json")
        self.run_cli("submit", "--spool", spool, "--workload", "filter_min")
        code, text = self.run_cli("serve", "--spool", spool, "--once")
        assert code == 0
        assert "bad ticket" in text and "served 1 job(s)" in text

    def test_usage_and_errors(self, tmp_path):
        code, text = self.run_cli("--help")
        assert code == 0 and "usage" in text
        code, _ = self.run_cli("serve")  # no --spool
        assert code == 2
        code, _ = self.run_cli("not-a-command", "--spool", str(tmp_path))
        assert code == 2
        code, text = self.run_cli("submit", "--spool", str(tmp_path))
        assert code == 2 and "--workload" in text

    def test_status_without_state(self, tmp_path):
        code, text = self.run_cli("status", "--spool", str(tmp_path))
        assert code == 2 and "no state.json" in text
