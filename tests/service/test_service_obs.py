"""The service observability plane (PR10).

Cross-process metrics aggregation, the fairness auditor's SFQ-tag
checks, SLO burn-rate tracking, and the keystone replay-parity
invariant: rebuilding the service registry from ``service_events.ndjson``
plus the per-job NDJSON streams must reproduce the live registry exactly
on every consistency view.
"""

import io
import json
import os

import pytest

from repro.obs import lint_prometheus_text
from repro.service import (
    DONE,
    FAILED,
    FairnessAuditor,
    JobService,
    SLOTracker,
    replay_service_registry,
    service_registry_diff,
)
from repro.service.__main__ import main as service_main
from repro.service.obs import ServiceObs
from repro.service.queue import FairShareQueue


def admission_event(queue, job, t=0.0, heads=None):
    """The ``running`` event the service would log for this admission."""
    return {
        "event": "running",
        "t": t,
        "tenant": job.tenant,
        "cost": job.cost,
        "finish_tag": job.finish_tag,
        "weights": queue.weights(),
        "heads": {k: list(v) for k, v in (heads or {}).items()},
    }


class TestFairnessAuditor:
    def drive(self, weights, jobs_per_tenant, slots=1):
        """Run a full-backlog admission sequence through a real SFQ
        queue, auditing every admission; returns the auditor."""
        queue = FairShareQueue(slots=slots)
        for name, weight in sorted(weights.items()):
            queue.register(name, weight)
        for name in sorted(weights):
            for i in range(jobs_per_tenant):
                queue.put(name, payload=f"{name}-{i}")
        auditor = FairnessAuditor()
        while queue.backlog:
            heads = queue.pending_heads()
            job = queue.next_job()
            auditor.on_admission(admission_event(queue, job, heads=heads))
            queue.release(job)
        return auditor

    def test_clean_backlog_raises_nothing(self):
        auditor = self.drive({"a": 2.0, "b": 1.0}, jobs_per_tenant=12)
        assert auditor.alerts == []

    def test_share_exact_within_one_granule_under_full_backlog(self):
        """Two backlogged tenants: each tenant's achieved cost stays
        within one job granule of its entitled weighted share — SFQ's
        pairwise fairness bound, exact here because every admission has
        exactly one competitor."""
        auditor = self.drive({"a": 2.0, "b": 1.0}, jobs_per_tenant=15)
        shares = auditor.shares()
        assert set(shares) == {"a", "b"}
        for name, share in shares.items():
            gap = abs(share["achieved_cost"] - share["entitled_cost"])
            assert gap <= share["granule"] + 1e-9, (name, share)

    def test_multi_tenant_backlog_stays_inside_audit_bound(self):
        """With more tenants the pairwise SFQ bounds compound — the gap
        can legitimately exceed the tenant's own granule — but the drift
        stays under the auditor's alert threshold (slack × (granule +
        max granule)) and no alert fires on a fair queue."""
        auditor = self.drive({"a": 1.0, "b": 1.0, "c": 3.0}, jobs_per_tenant=15)
        assert auditor.alerts == []
        shares = auditor.shares()
        assert auditor.max_granule == max(s["granule"] for s in shares.values())
        for name, share in shares.items():
            gap = abs(share["achieved_cost"] - share["entitled_cost"])
            bound = auditor.slack * (share["granule"] + auditor.max_granule)
            assert gap <= bound + 1e-9, (name, share)

    def test_entitlement_tracks_weights(self):
        auditor = self.drive({"a": 3.0, "b": 1.0}, jobs_per_tenant=16)
        shares = auditor.shares()
        # within the shared-backlog window, a's entitled share is 3/4
        assert shares["a"]["entitled_share"] == pytest.approx(0.75, abs=0.05)
        assert shares["a"]["achieved_share"] > shares["b"]["achieved_share"]

    def test_injected_bypass_raises_exactly_one_alert(self):
        """A rigged admission whose finish tag jumps past a backlogged
        head by more than one granule: one latched alert, not a storm."""
        auditor = FairnessAuditor()
        rigged = {
            "event": "running",
            "t": 1.0,
            "tenant": "greedy",
            "cost": 1.0,
            "finish_tag": 10.0,  # the starved head's tag is 1.0 + granule 1.0
            "weights": {"greedy": 1.0, "starved": 1.0},
            "heads": {"starved": [1.0, 1.0], "greedy": [10.0, 1.0]},
        }
        auditor.on_admission(rigged)
        auditor.on_admission(rigged)  # repeat offence: still latched
        assert len(auditor.alerts) == 1
        (alert,) = auditor.alerts
        assert alert.kind == "fairness"
        assert alert.subject == "starved"
        assert "bypassed" in alert.message

    def test_alert_counted_in_registry_under_service_alerts(self):
        from repro.obs.registry import MetricsRegistry
        from repro.service.obs import SERVICE_LABEL_NAMES

        registry = MetricsRegistry(label_names=SERVICE_LABEL_NAMES)
        auditor = FairnessAuditor(registry=registry)
        auditor._raise(0.0, "starved", "test", tenant="starved")
        assert registry.aggregate("service_alerts", ("tenant", "policy")) == {
            ("starved", "fairness"): 1.0
        }

    def test_within_tenant_admission_never_self_alerts(self):
        """A tenant admitted while itself backlogged (FIFO within the
        tenant) must not be flagged as bypassing its own head."""
        auditor = self.drive({"solo": 1.0}, jobs_per_tenant=10)
        assert auditor.alerts == []
        assert auditor.shares()["solo"]["achieved_share"] == pytest.approx(1.0)


class TestSLOTracker:
    def finished(self, tenant, ok=True, latency=0.1, t=0.0):
        return {
            "event": "done" if ok else "failed",
            "t": t,
            "tenant": tenant,
            "ok": ok,
            "latency": latency,
        }

    def test_attainment_counts_latency_and_errors(self):
        slo = SLOTracker(slos={"*": {"latency_s": 1.0, "target": 0.5}})
        slo.on_finished(self.finished("t", ok=True, latency=0.5))
        slo.on_finished(self.finished("t", ok=True, latency=5.0))  # too slow
        slo.on_finished(self.finished("t", ok=False))
        att = slo.attainment()["t"]
        assert att["jobs"] == 3
        assert att["attained"] == pytest.approx(1 / 3)
        assert not att["met"]

    def test_untracked_tenant_ignored(self):
        slo = SLOTracker(slos={"vip": {"target": 0.9}})
        slo.on_finished(self.finished("anon", ok=False))
        assert slo.attainment() == {}
        assert slo.alerts == []

    def test_burn_alert_raised_once_then_rearmed(self):
        """One alert per excursion: the window must recover (burn drops
        below the threshold) before a second alert can fire."""
        slo = SLOTracker(
            slos={"t": {"target": 0.5}}, window=4, burn_threshold=1.0
        )
        for _ in range(4):
            slo.on_finished(self.finished("t", ok=False))
        assert len(slo.alerts) == 1
        assert slo.alerts[0].kind == "slo"
        # recovery: good jobs push the window's bad fraction under budget
        for _ in range(4):
            slo.on_finished(self.finished("t", ok=True))
        assert len(slo.alerts) == 1
        # second excursion re-raises
        for _ in range(4):
            slo.on_finished(self.finished("t", ok=False))
        assert len(slo.alerts) == 2

    def test_exact_tenant_objective_beats_wildcard(self):
        slo = SLOTracker(
            slos={"*": {"target": 0.9}, "vip": {"target": 0.99}}
        )
        assert slo.slo_for("vip")["target"] == 0.99
        assert slo.slo_for("other")["target"] == 0.9


class TestServiceObsEndToEnd:
    def run_service(self, tmp_path, slos=None, submissions=None, workers=2):
        spool = str(tmp_path)
        with JobService(
            workers=workers,
            spool=spool,
            tenants={"alice": 2.0, "bob": 1.0},
            slos=slos,
        ) as service:
            for tenant, workload in submissions or (
                ("alice", "filter_min"),
                ("alice", "nested_topk"),
                ("bob", "filter_min"),
                ("bob", "nested_topk"),
            ):
                service.submit(tenant, workload)
            service.drain(timeout=240)
        return service, spool

    def test_replay_parity_and_exports(self, tmp_path):
        service, spool = self.run_service(tmp_path)
        events_path = os.path.join(spool, "service_events.ndjson")
        assert os.path.exists(events_path)
        first = json.loads(open(events_path).readline())
        assert first["event"] == "config"
        # the keystone: log + streams rebuild the registry exactly
        replayed = replay_service_registry(spool)
        assert service_registry_diff(service.obs, replayed) == []
        # the merged job-view families actually landed (e.g. branch counts)
        jobs_by_status = service.obs.registry.aggregate(
            "service_jobs", ("status",)
        )
        assert jobs_by_status[("queued",)] == 4.0
        assert jobs_by_status[("done",)] == 4.0
        assert service.obs.registry.value("branches_executed") > 0
        # exact latency histogram: one value retained per finished job
        latency_total = sum(
            len(h.values)
            for h in service.obs.registry.series(
                "service_latency_seconds"
            ).values()
        )
        assert latency_total == 4
        # exports written and format-clean
        text = open(os.path.join(spool, "metrics.prom")).read()
        assert lint_prometheus_text(text) == []
        metrics = json.load(open(os.path.join(spool, "metrics.json")))
        assert metrics["service_jobs"]["kind"] == "counter"

    def test_clean_run_raises_no_alerts(self, tmp_path):
        service, _ = self.run_service(
            tmp_path, slos={"*": {"latency_s": 300.0, "target": 0.9}}
        )
        summary = service.status()["obs"]
        assert summary["alerts"] == []
        # live admission windows are ragged (a slot frees with whatever
        # backlog exists), so the structural bound is granule + max granule
        peak = max(s["granule"] for s in summary["fairness"].values())
        for share in summary["fairness"].values():
            gap = abs(share["achieved_cost"] - share["entitled_cost"])
            assert gap <= share["granule"] + peak + 1e-9
        for att in summary["slo"].values():
            assert att["met"]

    def test_impossible_slo_alerts_and_replays_identically(self, tmp_path):
        """A 0-second latency objective makes every job bad: the burn
        alert fires live, lands in service_alerts, and the replayed
        registry reproduces the same alert count from the log alone."""
        service, spool = self.run_service(
            tmp_path,
            slos={"*": {"latency_s": 0.0, "target": 0.9}},
            submissions=(("alice", "filter_min"), ("alice", "filter_min")),
            workers=1,
        )
        summary = service.status()["obs"]
        assert any(a["kind"] == "slo" for a in summary["alerts"])
        alerts = service.obs.registry.aggregate("service_alerts", ("policy",))
        assert alerts[("slo",)] >= 1.0
        replayed = replay_service_registry(spool)
        assert service_registry_diff(service.obs, replayed) == []

    def test_failed_job_replay_parity(self, tmp_path):
        service, spool = self.run_service(
            tmp_path,
            submissions=(("alice", "no-such-workload"), ("bob", "filter_min")),
        )
        statuses = {r.status for r in service.records.values()}
        assert statuses == {DONE, FAILED}
        jobs = service.obs.registry.aggregate("service_jobs", ("status",))
        assert jobs[("failed",)] == 1.0 and jobs[("done",)] == 1.0
        replayed = replay_service_registry(spool)
        assert service_registry_diff(service.obs, replayed) == []

    def test_obs_off_restores_pr9_behaviour(self, tmp_path):
        """obs=False: no obs plane, no event log, no metrics exports,
        and the worker payload carries no observability keys."""
        spool = str(tmp_path)
        with JobService(workers=1, spool=spool, obs=False) as service:
            service.submit("t", "filter_min")
            (record,) = service.drain(timeout=120)
        assert service.obs is None
        assert record.status == DONE
        assert "profile" not in record.result
        assert "store" not in record.result
        for name in ("service_events.ndjson", "metrics.prom", "metrics.json"):
            assert not os.path.exists(os.path.join(spool, name)), name
        state = json.load(open(os.path.join(spool, "state.json")))
        assert state["obs"] is None

    def test_worker_payload_obs_keys_gated_by_spec(self, tmp_path):
        from repro.service.jobs import JobSpec
        from repro.service.worker import run_job

        def spec(obs):
            return JobSpec(
                job_id="j1",
                tenant="t",
                workload="filter_min",
                cache_dir=str(tmp_path / "cache"),
                stream_path=str(tmp_path / f"j1-{obs}.ndjson"),
                obs=obs,
            ).as_dict()

        with_obs = run_job(spec(True))
        without = run_job(spec(False))
        assert with_obs["ok"] and without["ok"]
        assert "obs" in with_obs and "profile" in with_obs
        assert with_obs["obs"]["families"]  # non-empty snapshot
        assert "obs" not in without and "profile" not in without
        assert "store" in with_obs and "store" not in without

    def test_snapshot_kept_out_of_state_json(self, tmp_path):
        _, spool = self.run_service(
            tmp_path, submissions=(("alice", "filter_min"),), workers=1
        )
        state = json.load(open(os.path.join(spool, "state.json")))
        (job,) = state["jobs"]
        assert "obs" not in job["result"]

    def test_replay_requires_config_first(self, tmp_path):
        path = str(tmp_path / "events.ndjson")
        with open(path, "w") as fh:
            fh.write(json.dumps({"event": "submitted", "tenant": "t",
                                 "workload": "w"}) + "\n")
        with pytest.raises(ValueError, match="config"):
            replay_service_registry(str(tmp_path), events_path=path)

    def test_unknown_event_kind_rejected(self):
        obs = ServiceObs()
        with pytest.raises(ValueError, match="unknown service event"):
            obs.apply({"event": "mystery", "tenant": "t", "workload": "w"})


class TestObsCLI:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = service_main(list(argv), out=out)
        return code, out.getvalue()

    def serve_one(self, spool):
        self.run_cli("submit", "--spool", spool, "--tenant", "alice",
                     "--workload", "filter_min")
        code, text = self.run_cli("serve", "--spool", spool, "--once")
        assert code == 0, text

    def test_status_metrics_streams_the_export_verbatim(self, tmp_path):
        spool = str(tmp_path)
        self.serve_one(spool)
        code, text = self.run_cli("status", "--spool", spool, "--metrics")
        assert code == 0
        assert text == open(os.path.join(spool, "metrics.prom")).read()
        assert lint_prometheus_text(text) == []
        code, text = self.run_cli(
            "status", "--spool", spool, "--metrics", "--json"
        )
        assert code == 0
        assert json.loads(text)["service_jobs"]["kind"] == "counter"

    def test_status_metrics_missing_export(self, tmp_path):
        code, text = self.run_cli(
            "status", "--spool", str(tmp_path), "--metrics"
        )
        assert code == 2 and "metrics.prom" in text

    def test_status_surfaces_snapshot_age_and_staleness(self, tmp_path):
        spool = str(tmp_path)
        self.serve_one(spool)
        code, text = self.run_cli("status", "--spool", spool)
        assert code == 0
        assert "snapshot age:" in text and "STALE" not in text
        # age the snapshot artificially: the same read now flags STALE
        path = os.path.join(spool, "state.json")
        state = json.load(open(path))
        state["updated_unix"] -= 1000.0
        with open(path, "w") as fh:
            json.dump(state, fh)
        code, text = self.run_cli("status", "--spool", spool)
        assert code == 0 and "STALE" in text
        code, text = self.run_cli("status", "--spool", spool, "--json")
        assert json.loads(text)["snapshot_age_s"] > 900

    def test_top_once_renders_dashboard(self, tmp_path):
        spool = str(tmp_path)
        self.serve_one(spool)
        code, text = self.run_cli("top", "--spool", spool, "--once")
        assert code == 0
        assert "repro service top" in text
        assert "share(achieved/entitled)" in text
        assert "alice" in text
        assert "p50" in text and "p99" in text
        assert "alerts: 0" in text

    def test_top_without_state(self, tmp_path):
        code, text = self.run_cli("top", "--spool", str(tmp_path), "--once")
        assert code == 2 and "no state.json" in text
