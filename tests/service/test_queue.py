"""Tests for the weighted fair-share admission queue (SFQ laws).

Weighted shares under backlog, per-tenant FIFO, no starvation, work
conservation, and the slot-window bookkeeping the service relies on.
"""

import pytest

from repro.service import FairShareQueue


def drain_admissions(queue, count):
    """Admit ``count`` jobs, releasing each slot immediately (so the
    admission *order* is isolated from slot contention)."""
    admitted = []
    for _ in range(count):
        job = queue.next_job()
        if job is None:
            break
        admitted.append(job)
        queue.release(job)
    return admitted


class TestFairShares:
    def test_weighted_shares_under_backlog(self):
        queue = FairShareQueue(slots=1)
        queue.register("heavy", weight=2.0)
        queue.register("light", weight=1.0)
        for i in range(30):
            queue.put("heavy", f"h{i}")
            queue.put("light", f"l{i}")
        admitted = drain_admissions(queue, 30)
        heavy = sum(1 for j in admitted if j.tenant == "heavy")
        light = sum(1 for j in admitted if j.tenant == "light")
        # SFQ converges to exact weighted round-robin with uniform costs
        assert heavy == 20 and light == 10
        shares = queue.admission_shares()
        assert shares["heavy"] == pytest.approx(2 / 3)
        assert shares["light"] == pytest.approx(1 / 3)

    def test_equal_weights_alternate(self):
        queue = FairShareQueue(slots=1)
        for i in range(6):
            queue.put("a", f"a{i}")
            queue.put("b", f"b{i}")
        admitted = drain_admissions(queue, 12)
        counts = {"a": 0, "b": 0}
        for job in admitted[:6]:
            counts[job.tenant] += 1
        assert counts == {"a": 3, "b": 3}  # interleaved, not clustered

    def test_cost_scales_finish_tags(self):
        """A tenant submitting double-cost jobs gets half the admissions
        — fairness is in served *cost*, not job count."""
        queue = FairShareQueue(slots=1)
        for i in range(20):
            queue.put("big", f"b{i}", cost=2.0)
            queue.put("small", f"s{i}", cost=1.0)
        admitted = drain_admissions(queue, 15)
        big = sum(1 for j in admitted if j.tenant == "big")
        small = sum(1 for j in admitted if j.tenant == "small")
        assert small == 2 * big

    def test_no_starvation_for_light_tenant(self):
        """A tenant arriving into a deep foreign backlog is admitted
        promptly — its finish tag starts at the current virtual time,
        not behind the backlog."""
        queue = FairShareQueue(slots=1)
        for i in range(50):
            queue.put("flood", f"f{i}")
        drain_admissions(queue, 5)  # vtime has advanced
        queue.put("late", "the-one-job")
        admitted = drain_admissions(queue, 3)
        assert any(j.tenant == "late" for j in admitted)


class TestOrdering:
    def test_fifo_within_tenant(self):
        queue = FairShareQueue(slots=1)
        for i in range(8):
            queue.put("t", f"job-{i}")
        admitted = drain_admissions(queue, 8)
        assert [j.payload for j in admitted] == [f"job-{i}" for i in range(8)]

    def test_deterministic_tiebreak(self):
        """Identical tags admit in arrival order (seq), repeatably."""
        def run():
            queue = FairShareQueue(slots=1)
            queue.put("a", "a0")
            queue.put("b", "b0")
            queue.put("c", "c0")
            return [j.payload for j in drain_admissions(queue, 3)]

        assert run() == run()


class TestSlots:
    def test_slot_window_respected(self):
        queue = FairShareQueue(slots=2)
        for i in range(5):
            queue.put("t", i)
        first = queue.next_job()
        second = queue.next_job()
        assert first is not None and second is not None
        assert queue.next_job() is None  # window full
        assert queue.free_slots == 0
        queue.release(first)
        assert queue.free_slots == 1
        assert queue.next_job() is not None  # work conservation

    def test_backlog_counts_all_tenants(self):
        queue = FairShareQueue(slots=1)
        queue.put("a", 1)
        queue.put("b", 2)
        assert queue.backlog == 2
        job = queue.next_job()
        assert queue.backlog == 1
        queue.release(job)

    def test_auto_registration_on_put(self):
        queue = FairShareQueue()
        queue.put("new-tenant", "x")
        assert queue.tenant("new-tenant").weight == 1.0

    def test_completed_counted_on_release(self):
        queue = FairShareQueue(slots=1)
        queue.put("t", 1)
        job = queue.next_job()
        assert queue.tenant("t").admitted == 1
        assert queue.tenant("t").completed == 0
        queue.release(job)
        assert queue.tenant("t").completed == 1


class TestValidation:
    def test_rejects_bad_weight(self):
        queue = FairShareQueue()
        with pytest.raises(ValueError):
            queue.register("t", weight=0.0)

    def test_rejects_bad_cost(self):
        queue = FairShareQueue()
        with pytest.raises(ValueError):
            queue.put("t", "x", cost=-1.0)

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            FairShareQueue(slots=0)

    def test_release_without_admit_raises(self):
        queue = FairShareQueue()
        job = queue.put("t", "x")
        with pytest.raises(RuntimeError):
            queue.release(job)
