"""Tests for sequential, k-parallel and Spark-like baseline execution."""

import pytest

from repro import Cluster, GB, MB
from repro.baselines import (
    BaselineResult,
    cache_points,
    pick_best,
    run_parallel,
    run_sequential,
    seep_bfs,
    seep_mdf,
    spark_cache,
    spark_sequential,
    spark_yarn,
)
from repro.workloads import (
    string_int_pairs,
    synthetic_combinations,
    synthetic_job,
    synthetic_mdf,
)

PAIRS = string_int_pairs(500)
NOMINAL = 256 * MB


def jobs(b1=2, b2=2):
    return [
        synthetic_job(PAIRS, p, nominal_bytes=NOMINAL)
        for p in synthetic_combinations(b1, b2)
    ]


@pytest.fixture
def cluster():
    return Cluster(4, 1 * GB)


class TestSequential:
    def test_time_is_sum_plus_overhead(self, cluster):
        family = jobs()
        result = run_sequential(family, cluster, job_overhead=1.0)
        per_job = sum(j.completion_time for j in result.jobs)
        assert result.completion_time == pytest.approx(per_job + len(family))

    def test_all_jobs_run(self, cluster):
        result = run_sequential(jobs(), cluster)
        assert len(result.jobs) == 4
        assert all(j.output is not None for j in result.jobs)

    def test_cold_caches(self, cluster):
        """Every job re-reads the input from storage (no cross-job reuse)."""
        result = run_sequential(jobs(), cluster)
        assert result.metrics.bytes_read_disk >= 4 * NOMINAL

    def test_empty_family(self, cluster):
        result = run_sequential([], cluster)
        assert result.completion_time == 0.0
        assert result.jobs == []


class TestParallel:
    def test_waves(self, cluster):
        family = jobs()  # 4 jobs
        result = run_parallel(family, cluster, k=2, job_overhead=0.0)
        assert len(result.jobs) == 4

    def test_parallel_beats_sequential(self, cluster):
        family = jobs(3, 3)
        seq = run_sequential(jobs(3, 3), cluster)
        par = run_parallel(family, cluster, k=4)
        assert par.completion_time < seq.completion_time

    def test_higher_k_overlaps_more_without_pressure(self, cluster):
        fam = jobs(3, 3)
        p2 = run_parallel(jobs(3, 3), cluster, k=2)
        p8 = run_parallel(fam, cluster, k=8)
        assert p8.completion_time <= p2.completion_time

    def test_invalid_k(self, cluster):
        with pytest.raises(ValueError):
            run_parallel(jobs(), cluster, k=0)

    def test_name_default(self, cluster):
        assert run_parallel(jobs(), cluster, k=4).name == "4-parallel"

    def test_memory_split(self):
        """Very tight per-job memory (mem/k) shows up as disk traffic."""
        fam = jobs(2, 2)
        roomy = run_parallel(jobs(2, 2), Cluster(4, 1 * GB), k=1)
        tight = run_parallel(fam, Cluster(4, 1 * GB), k=8)
        assert (
            tight.metrics.bytes_read_disk >= roomy.metrics.bytes_read_disk
        )


class TestPickBest:
    def test_post_hoc_choice(self, cluster):
        result = run_sequential(jobs(), cluster)
        best = pick_best(result, lambda out: sum(v for _, v in out), maximize=True)
        scores = [sum(v for _, v in out) for out in result.outputs()]
        assert sum(v for _, v in best) == max(scores)

    def test_empty(self):
        from repro.cluster.metrics import Metrics

        empty = BaselineResult("x", 0.0, Metrics(), [])
        assert pick_best(empty, lambda o: 0.0) is None


class TestSparkLike:
    def test_cache_points_outermost_only(self):
        mdf = synthetic_mdf(PAIRS, b1=2, b2=2, nominal_bytes=NOMINAL)
        points = cache_points(mdf)
        assert points == frozenset({"read-pairs"})

    def test_spark_sequential_is_bfs_lru(self, cluster):
        result = spark_sequential(jobs(), cluster)
        assert result.name == "spark-sequential"
        assert len(result.jobs) == 4

    def test_spark_yarn(self, cluster):
        result = spark_yarn(jobs(), cluster, k=2)
        assert result.name == "spark-yarn"

    def test_spark_cache_single_job(self, cluster):
        mdf = synthetic_mdf(PAIRS, b1=2, b2=2, nominal_bytes=NOMINAL)
        result = spark_cache(mdf, cluster)
        assert result.output is not None
        # no pruning: every branch scored
        assert all(len(d.pruned) == 0 for d in result.decisions.values())

    def test_seep_variants_agree_on_output(self, cluster):
        mdf = synthetic_mdf(PAIRS, b1=2, b2=2, nominal_bytes=NOMINAL)
        a = seep_mdf(mdf, cluster)
        b = seep_bfs(mdf, cluster)
        assert a.output == b.output

    def test_mdf_matches_baseline_best(self, cluster):
        """The MDF's winner equals the post-hoc best of the job family."""
        mdf = synthetic_mdf(PAIRS, b1=2, b2=2, nominal_bytes=NOMINAL)
        mdf_result = seep_mdf(mdf, cluster)
        family = run_sequential(jobs(2, 2), cluster)
        best = pick_best(family, lambda out: sum(v for _, v in out), maximize=True)
        assert sorted(mdf_result.output) == sorted(best)
