"""The simulated-clock timeline sampler (the Fig 17 memory-over-time series)."""

import pytest

from repro import Cluster, MB, run_mdf
from repro.obs import TelemetryConfig, TimelineSampler
from ..conftest import build_nested_mdf


def _run(policy, **kwargs):
    cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
    return run_mdf(build_nested_mdf(), cluster, memory=policy, **kwargs)


class TestSampler:
    def test_series_shape(self):
        result = _run("amm", telemetry=True)
        samples = result.telemetry.samples
        assert len(samples) >= 2
        # t=0 baseline then strictly increasing timestamps up to job end
        assert samples[0].t == 0.0
        assert samples[0].memory_in_use == 0
        ts = [s.t for s in samples]
        assert ts == sorted(ts)
        assert len(set(ts)) == len(ts)
        assert samples[-1].t == pytest.approx(result.completion_time)

    def test_evictions_monotone_and_memory_bounded(self):
        result = _run("lru", telemetry=True)
        samples = result.telemetry.samples
        evictions = [s.evictions for s in samples]
        assert evictions == sorted(evictions)
        assert evictions[-1] == result.metrics.evictions
        for s in samples:
            assert s.memory_in_use == sum(s.per_node_memory.values())
            assert s.memory_capacity == 4 * 64 * MB

    def test_lru_vs_amm_timelines_differ(self):
        """Fig 17: the same starved job leaves different memory footprints
        over time under LRU vs AMM."""
        lru = _run("lru", telemetry=True).telemetry
        amm = _run("amm", telemetry=True).telemetry
        assert lru.samples and amm.samples
        lru_series = [(s.t, s.memory_in_use, s.evictions) for s in lru.samples]
        amm_series = [(s.t, s.memory_in_use, s.evictions) for s in amm.samples]
        assert lru_series != amm_series

    def test_interval_as_float_argument(self):
        coarse = _run("amm", telemetry=5.0).telemetry
        fine = _run("amm", telemetry=0.05).telemetry
        assert len(fine.samples) > len(coarse.samples)

    def test_telemetry_config_passthrough(self):
        result = _run("amm", telemetry=TelemetryConfig(interval=0.5, max_samples=8))
        sampler = result.telemetry.timeline
        assert len(sampler) <= 8 + 1  # thinning keeps the series bounded
        assert sampler.interval >= 0.5  # doubled on every thinning pass

    def test_thinning_halves_resolution(self):
        class FakeClock:
            def __init__(self):
                self.now = 0.0
                self._subs = []

            def subscribe(self, fn):
                self._subs.append(fn)

            def unsubscribe(self, fn):
                self._subs.remove(fn)

            def advance(self, dt):
                self.now += dt
                for fn in self._subs:
                    fn(self.now)

        class FakeCluster:
            def __init__(self):
                self.clock = FakeClock()
                self.nodes = []

            class _Obs:
                @staticmethod
                def max_value(name):
                    return 0.0

            obs = _Obs()

            class _Metrics:
                memory_hit_ratio = 1.0
                evictions = 0

            metrics = _Metrics()

            @staticmethod
            def live_dataset_count():
                return 0

        cluster = FakeCluster()
        sampler = TimelineSampler(cluster, interval=1.0, max_samples=4).attach()
        for _ in range(20):
            cluster.clock.advance(1.0)
        sampler.detach()
        assert len(sampler) <= 5
        assert sampler.interval > 1.0

    def test_utilisation_series(self):
        """Per-node busy/idle sampling: utilisation is the fraction of the
        inter-sample window the workers spent busy, always within [0, 1]."""
        result = _run("amm", telemetry=True)
        samples = result.telemetry.samples
        for s in samples:
            assert 0.0 <= s.utilisation <= 1.0
            assert set(s.per_node_busy) == {f"worker-{i}" for i in range(4)}
        # the baseline sample has no predecessor window to measure against
        assert samples[0].utilisation == 0.0
        # the job does real work, so some window shows busy workers
        assert any(s.utilisation > 0.0 for s in samples[1:])
        # per-node busy seconds are cumulative: non-decreasing per worker
        for node in samples[0].per_node_busy:
            series = [s.per_node_busy[node] for s in samples]
            assert series == sorted(series)

    def test_utilisation_survives_thinning(self):
        """Thinning recomputes utilisation over the widened windows — the
        surviving samples stay consistent with their own busy deltas."""
        result = _run("amm", telemetry=TelemetryConfig(interval=0.01, max_samples=8))
        samples = result.telemetry.samples
        for prev, s in zip(samples, samples[1:]):
            window = (s.t - prev.t) * len(s.per_node_busy)
            delta = sum(s.per_node_busy.values()) - sum(prev.per_node_busy.values())
            expected = min(1.0, max(0.0, delta / window)) if window > 0 else 0.0
            assert s.utilisation == pytest.approx(expected, abs=1e-12)

    def test_as_dict_exposes_utilisation(self):
        result = _run("amm", telemetry=True)
        payload = result.telemetry.samples[-1].as_dict()
        assert "utilisation" in payload
        assert "per_node_busy" in payload

    def test_invalid_interval_rejected(self):
        cluster = Cluster(num_workers=1, mem_per_worker=64 * MB)
        with pytest.raises(ValueError):
            TimelineSampler(cluster, interval=0.0)
        with pytest.raises(ValueError):
            TimelineSampler(cluster, max_samples=1)
