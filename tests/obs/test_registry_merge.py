"""Cross-process registry transport: snapshot round-trip and merge parity.

The service ships each finished job's registry across the pool pipe as a
plain-dict snapshot and folds it into the long-lived service registry.
The load-bearing invariant: a registry merged from N process-local
shards is *indistinguishable* from the registry one process observing
everything would have built — counters sum, peak gauges ratchet,
histogram bucket counts add so quantiles match exactly, and exact
histograms keep every raw value so nearest-rank percentiles stay exact.
"""

import json

import pytest

from repro.obs.registry import ExactHistogram, Histogram, MetricsRegistry


def percentile_reference(values, q):
    """The loadgen's nearest-rank percentile (the parity target)."""
    import math

    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class TestHistogramMergeParity:
    def test_bucketed_merge_equals_single_process(self):
        bounds = (0.1, 1.0, 10.0)
        values_a = [0.05, 0.5, 2.0, 20.0]
        values_b = [0.3, 0.7, 5.0]
        solo = Histogram(bounds)
        shard_a, shard_b = Histogram(bounds), Histogram(bounds)
        for v in values_a + values_b:
            solo.observe(v)
        for v in values_a:
            shard_a.observe(v)
        for v in values_b:
            shard_b.observe(v)
        shard_a.merge(shard_b)
        assert shard_a.counts == solo.counts
        assert shard_a.sum == pytest.approx(solo.sum)
        assert shard_a.count == solo.count
        for q in (0.5, 0.95, 0.99):
            assert shard_a.quantile(q) == pytest.approx(solo.quantile(q))

    def test_mismatched_bounds_refused(self):
        a, b = Histogram((1.0, 2.0)), Histogram((1.0, 3.0))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_exact_merge_nearest_rank_parity(self):
        """Exact histograms merged across shards give the *same* exact
        nearest-rank percentiles as one shard observing every value —
        and both match the load generator's percentile function."""
        values_a = [0.9, 0.1, 0.5, 0.3]
        values_b = [0.7, 0.2, 0.8]
        solo = ExactHistogram()
        shard_a, shard_b = ExactHistogram(), ExactHistogram()
        for v in values_a + values_b:
            solo.observe(v)
        for v in values_a:
            shard_a.observe(v)
        for v in values_b:
            shard_b.observe(v)
        shard_a.merge(shard_b)
        for q in (1, 50, 90, 99, 100):
            expected = percentile_reference(values_a + values_b, q)
            assert solo.quantile(q / 100.0) == expected
            assert shard_a.quantile(q / 100.0) == expected

    def test_exact_refuses_bucket_only_source(self):
        exact, bucketed = ExactHistogram(), Histogram()
        bucketed.observe(1.0)
        with pytest.raises(ValueError, match="bucket-only"):
            exact.merge(bucketed)


class TestSnapshotRoundTrip:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("tasks_executed", node="w0", branch="b#0").inc(4)
        reg.gauge("peak_memory", node="w0").set(1024)
        reg.histogram("task_seconds", buckets=(0.1, 1.0), stage="s0").observe(0.5)
        reg.histogram("wait_seconds", exact=True, node="w0").observe(0.25)
        reg.histogram("wait_seconds", exact=True, node="w0").observe(0.75)
        return reg

    def test_snapshot_is_json_serialisable(self):
        snap = self.build().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_from_snapshot_rebuilds_equivalent_registry(self):
        reg = self.build()
        again = MetricsRegistry.from_snapshot(reg.snapshot())
        assert again.label_names == reg.label_names
        assert again.names() == reg.names()
        assert again.value("tasks_executed") == 4.0
        assert again.max_value("peak_memory") == 1024.0
        (hist,) = again.series("wait_seconds").values()
        assert isinstance(hist, ExactHistogram)
        assert hist.values == [0.25, 0.75]
        assert again.snapshot() == reg.snapshot()

    def test_snapshot_names_filter(self):
        snap = self.build().snapshot(names=["tasks_executed"])
        assert list(snap["families"]) == ["tasks_executed"]


class TestRegistryMerge:
    def test_sharded_merge_equals_single_process(self):
        """Two worker shards folded in equal one process observing all."""
        solo = MetricsRegistry()
        shards = [MetricsRegistry(), MetricsRegistry()]
        observations = [
            (0, {"node": "w0"}, 3.0),
            (1, {"node": "w0"}, 2.0),
            (1, {"node": "w1"}, 5.0),
        ]
        for shard_idx, labels, amount in observations:
            solo.counter("bytes_spilled", **labels).inc(amount)
            shards[shard_idx].counter("bytes_spilled", **labels).inc(amount)
        target = MetricsRegistry()
        for shard in shards:
            target.merge(MetricsRegistry.from_snapshot(shard.snapshot()))
        assert target.aggregate("bytes_spilled", ("node",)) == solo.aggregate(
            "bytes_spilled", ("node",)
        )

    def test_collapse_onto_service_labels(self):
        """A job registry (engine dims) collapses onto one {tenant,
        workload} label set in a service-dims registry — children
        differing only in engine dimensions sum into one series."""
        job = MetricsRegistry()
        job.counter("tasks_executed", node="w0", stage="s0").inc(2)
        job.counter("tasks_executed", node="w1", stage="s1").inc(3)
        service = MetricsRegistry(
            label_names=("tenant", "workload", "status", "policy")
        )
        service.merge(
            job,
            labels={"tenant": "acme", "workload": "dl_grid"},
            names=["tasks_executed"],
        )
        assert service.aggregate("tasks_executed", ("tenant", "workload")) == {
            ("acme", "dl_grid"): 5.0
        }

    def test_dimension_mismatch_without_collapse_refused(self):
        service = MetricsRegistry(label_names=("tenant",))
        with pytest.raises(ValueError, match="label dimensions"):
            service.merge(MetricsRegistry())

    def test_gauges_ratchet_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("peak", node="w0").set(5)
        b.gauge("peak", node="w0").set(3)
        a.merge(b)
        assert a.max_value("peak") == 5.0
        b.gauge("peak", node="w0").set(9)
        a.merge(b)
        assert a.max_value("peak") == 9.0
