"""Per-branch / per-node attribution sums to the job-global Metrics.

The acceptance bar for the telemetry layer: every task, eviction and byte
must be attributable to a ``{branch, node}`` pair (or the explicit
unattributed remainder), and the per-dimension sums must equal the
job-global ``Metrics`` exactly — the registry is the single source of
both, so these are identities, not approximations.
"""

import pytest

from repro import Cluster, GB, MB, run_mdf
from ..conftest import build_filter_mdf, build_nested_mdf


def _total(registry, name, dims):
    return sum(registry.aggregate(name, dims).values())


@pytest.fixture(params=["lru", "amm"])
def pressured_run(request):
    mdf = build_nested_mdf()
    cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
    result = run_mdf(mdf, cluster, memory=request.param, telemetry=True)
    return result


class TestAttribution:
    def test_tasks_fully_attributed(self, pressured_run):
        reg = pressured_run.telemetry.registry
        m = pressured_run.metrics
        assert _total(reg, "tasks_executed", ("branch", "node")) == m.tasks_executed

    def test_evictions_fully_attributed(self, pressured_run):
        reg = pressured_run.telemetry.registry
        m = pressured_run.metrics
        assert m.evictions > 0, "fixture must exercise memory pressure"
        assert _total(reg, "evictions", ("branch", "node")) == m.evictions

    def test_bytes_fully_attributed(self, pressured_run):
        reg = pressured_run.telemetry.registry
        m = pressured_run.metrics
        for name in (
            "bytes_read_memory",
            "bytes_read_disk",
            "bytes_written_memory",
            "bytes_written_disk",
        ):
            assert _total(reg, name, ("branch", "node")) == getattr(m, name), name

    def test_attribution_granularity_invariant(self, pressured_run):
        """The same total regardless of the grouping dimensions."""
        reg = pressured_run.telemetry.registry
        for name in ("tasks_executed", "evictions", "bytes_read_disk"):
            totals = {
                dims: _total(reg, name, dims)
                for dims in ((), ("branch",), ("node",), ("branch", "node", "stage"))
            }
            assert len(set(totals.values())) == 1, (name, totals)

    def test_eviction_policy_label_matches_run(self, pressured_run):
        reg = pressured_run.telemetry.registry
        policies = {k[0] for k in reg.aggregate("evictions", ("policy",))}
        assert len(policies) == 1  # one policy per run


class TestBreakdownTables:
    def test_branch_breakdown_renders_totals(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=4, mem_per_worker=1 * GB),
            telemetry=True,
        )
        table = result.telemetry.branch_breakdown()
        assert "telemetry breakdown by branch" in table
        assert "total" in table
        # every branch that executed tasks appears as a row
        reg = result.telemetry.registry
        branches = {k[0] for k in reg.aggregate("tasks_executed", ("branch",)) if k[0]}
        assert len(branches) == 3  # one per explored threshold
        for branch in branches:
            assert branch in table

    def test_node_breakdown_lists_workers(self):
        result = run_mdf(
            build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB),
            telemetry=True,
        )
        table = result.telemetry.node_breakdown()
        assert "worker-0" in table and "worker-1" in table

    def test_telemetry_none_without_flag(self):
        result = run_mdf(build_filter_mdf(), Cluster(num_workers=2, mem_per_worker=1 * GB))
        assert result.telemetry is None
