"""Trace↔telemetry consistency: the bridge rebuilds the live registry.

The decision trace and the labeled registry observe the same execution;
``registry_from_trace`` replays the former into the latter and
``diff_registries`` asserts equality over every guaranteed view — on live
runs and on the golden recordings under ``tests/golden/``.
"""

import pytest

from repro import Cluster, GB, MB, run_mdf
from repro.obs import CONSISTENCY_VIEWS, diff_registries, registry_from_trace
from repro.trace import Trace
from ..conftest import build_filter_mdf, build_nested_mdf
from ..golden.regenerate import GOLDEN_FILES, build_explore_choose_mdf, load_quickstart_module


class TestLiveConsistency:
    @pytest.mark.parametrize("policy", ["lru", "amm"])
    @pytest.mark.parametrize("scheduler", ["bas", "bfs"])
    def test_pressured_nested_run(self, policy, scheduler):
        cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
        result = run_mdf(
            build_nested_mdf(), cluster, scheduler=scheduler, memory=policy,
            telemetry=True,
        )
        rebuilt = registry_from_trace(result.events)
        assert diff_registries(result.telemetry.registry, rebuilt) == []

    def test_roomy_filter_run(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, telemetry=True)
        rebuilt = registry_from_trace(result.events)
        assert diff_registries(result.telemetry.registry, rebuilt) == []

    def test_jsonl_round_trip_preserves_consistency(self):
        cluster = Cluster(num_workers=4, mem_per_worker=64 * MB)
        result = run_mdf(build_nested_mdf(), cluster, memory="amm", telemetry=True)
        replayed = Trace.from_jsonl(result.events.to_jsonl())
        rebuilt = registry_from_trace(replayed)
        assert diff_registries(result.telemetry.registry, rebuilt) == []


class TestGoldenConsistency:
    """The recorded golden traces bridge to the live registries of the runs
    that produced them (byte-stable traces make this a real cross-check)."""

    def test_quickstart_golden(self):
        mdf = load_quickstart_module().build_quickstart_mdf()
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        run_mdf(mdf, cluster, scheduler="bas", memory="amm")
        golden = Trace.load_jsonl(GOLDEN_FILES["quickstart"])
        assert diff_registries(cluster.obs, registry_from_trace(golden)) == []

    def test_explore_choose_golden(self):
        cluster = Cluster(num_workers=2, mem_per_worker=48 * MB)
        run_mdf(build_explore_choose_mdf(), cluster, scheduler="bas", memory="amm")
        golden = Trace.load_jsonl(GOLDEN_FILES["explore_choose"])
        assert diff_registries(cluster.obs, registry_from_trace(golden)) == []


class TestDiffRegistries:
    def test_detects_injected_drift(self):
        cluster = Cluster(num_workers=2, mem_per_worker=1 * GB)
        result = run_mdf(build_filter_mdf(), cluster, telemetry=True)
        rebuilt = registry_from_trace(result.events)
        rebuilt.counter("tasks_executed", branch="ghost", stage="s99").inc(7)
        problems = diff_registries(result.telemetry.registry, rebuilt)
        assert problems
        assert any("tasks_executed" in p and "ghost" in p for p in problems)

    def test_views_cover_acceptance_instruments(self):
        covered = {name for name, _ in CONSISTENCY_VIEWS}
        for required in (
            "tasks_executed",
            "evictions",
            "bytes_read_memory",
            "bytes_read_disk",
            "bytes_written_memory",
            "bytes_written_disk",
        ):
            assert required in covered
