"""The job-global ``Metrics`` as a derived view over the labeled registry."""

from dataclasses import fields

import pytest

from repro.cluster.metrics import _FLOAT_FIELDS, _MAX_FIELDS, Metrics
from repro.obs import MetricsRegistry


class TestUnbound:
    def test_plain_dataclass_behaviour(self):
        m = Metrics(partition_hits=3)
        m.evictions += 2
        assert m.partition_hits == 3
        assert m.evictions == 2

    def test_as_dict_covers_every_field(self):
        d = Metrics().as_dict()
        for f in fields(Metrics):
            assert f.name in d
        assert "memory_hit_ratio" in d and "total_time" in d


class TestBound:
    def test_reads_aggregate_registry(self):
        reg = MetricsRegistry()
        m = Metrics().bind(reg)
        reg.counter("evictions", node="w0", branch="b1").inc(2)
        reg.counter("evictions", node="w1").inc(3)
        assert m.evictions == 5
        assert isinstance(m.evictions, int)

    def test_writes_forward_as_counter_delta(self):
        reg = MetricsRegistry()
        m = Metrics().bind(reg)
        m.tasks_executed += 4
        m.tasks_executed += 1
        assert reg.value("tasks_executed") == 5.0
        assert m.tasks_executed == 5

    def test_peak_field_reads_max_and_ratchets(self):
        reg = MetricsRegistry()
        m = Metrics().bind(reg)
        m.peak_datasets_stored = 4
        m.peak_datasets_stored = 2  # ratchet: lower writes ignored
        assert m.peak_datasets_stored == 4

    def test_float_fields_stay_float(self):
        reg = MetricsRegistry()
        m = Metrics().bind(reg)
        m.time_io += 0.25
        assert m.time_io == pytest.approx(0.25)

    def test_hit_ratio_derives_from_registry(self):
        reg = MetricsRegistry()
        m = Metrics().bind(reg)
        reg.counter("bytes_read_memory", node="w0").inc(75)
        reg.counter("bytes_read_disk", node="w0").inc(25)
        assert m.memory_hit_ratio == pytest.approx(0.75)


class TestMerge:
    def test_merge_sums_counts_and_maxes_peaks(self):
        a = Metrics(evictions=2, peak_datasets_stored=5, time_io=1.0)
        b = Metrics(evictions=3, peak_datasets_stored=4, time_io=0.5)
        merged = a.merge(b)
        assert merged.evictions == 5
        assert merged.peak_datasets_stored == 5
        assert merged.time_io == pytest.approx(1.5)

    def test_merge_iterates_every_dataclass_field(self):
        """Regression: a newly added field must participate in merge()
        automatically instead of silently dropping out of merged reports."""
        ones = Metrics(**{f.name: 1 for f in fields(Metrics)})
        merged = ones.merge(ones)
        for f in fields(Metrics):
            expected = 1 if f.name in _MAX_FIELDS else 2
            assert getattr(merged, f.name) == expected, f.name

    def test_merge_of_bound_views(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        a, b = Metrics().bind(reg_a), Metrics().bind(reg_b)
        reg_a.counter("evictions", branch="x").inc(1)
        reg_b.counter("evictions", branch="y").inc(2)
        merged = a.merge(b)
        assert merged.evictions == 3

    def test_field_category_sets_are_subsets_of_fields(self):
        names = {f.name for f in fields(Metrics)}
        assert _MAX_FIELDS <= names
        assert _FLOAT_FIELDS <= names
