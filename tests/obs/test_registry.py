"""Unit tests for the labeled metrics registry (instruments + aggregation)."""

import math

import pytest

from repro.obs import DEFAULT_BUCKETS, LABEL_NAMES, MetricsRegistry, labels_dict
from repro.obs.registry import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_ratchet(self):
        g = Gauge()
        g.set(5)
        g.set_max(3)
        assert g.value == 5.0
        g.set_max(7)
        assert g.value == 7.0
        g.inc(1)
        g.dec(2)
        assert g.value == 6.0

    def test_histogram_observe_and_quantiles(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.5)
        assert 0.0 <= h.p50 <= 2.0
        assert h.quantile(1.0) >= h.quantile(0.5)

    def test_histogram_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().p95)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_default_buckets_span_micro_to_kiloseconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 1000.0


class TestRegistry:
    def test_counter_children_keyed_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("tasks", node="w0").inc(2)
        reg.counter("tasks", node="w1").inc(3)
        reg.counter("tasks", node="w0").inc(1)
        assert reg.value("tasks") == 6.0
        assert reg.value("tasks", node="w0") == 3.0

    def test_unknown_label_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x", nope="y")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_context_merges_into_counters(self):
        reg = MetricsRegistry()
        with reg.label_context(stage="s1", branch="b1"):
            reg.counter("evictions", node="w0").inc()
        (labels,) = reg.series("evictions")
        assert labels_dict(labels) == {"node": "w0", "branch": "b1", "stage": "s1"}

    def test_label_context_nesting_inner_wins(self):
        reg = MetricsRegistry()
        with reg.label_context(branch="outer"):
            with reg.label_context(branch="inner"):
                reg.counter("c").inc()
        (labels,) = reg.series("c")
        assert labels_dict(labels) == {"branch": "inner"}

    def test_explicit_labels_override_ambient(self):
        reg = MetricsRegistry()
        with reg.label_context(stage="ambient"):
            reg.counter("c", stage="explicit").inc()
        (labels,) = reg.series("c")
        assert labels_dict(labels) == {"stage": "explicit"}

    def test_gauges_ignore_ambient_context(self):
        reg = MetricsRegistry()
        with reg.label_context(branch="b1"):
            reg.gauge("mem", node="w0").set(10)
        (labels,) = reg.series("mem")
        assert labels_dict(labels) == {"node": "w0"}

    def test_aggregate_groups_and_sums(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="w0", dataset="d1").inc(10)
        reg.counter("bytes", node="w0", dataset="d2").inc(5)
        reg.counter("bytes", node="w1", dataset="d1").inc(1)
        assert reg.aggregate("bytes", ("node",)) == {("w0",): 15.0, ("w1",): 1.0}
        assert reg.aggregate("bytes", ()) == {(): 16.0}
        # total is granularity-independent
        assert sum(reg.aggregate("bytes", ("dataset",)).values()) == 16.0

    def test_max_value_over_children(self):
        reg = MetricsRegistry()
        reg.gauge("mem", node="w0").set(4)
        reg.gauge("mem", node="w1").set(9)
        assert reg.max_value("mem") == 9.0
        assert reg.max_value("missing") == 0.0

    def test_histogram_value_is_sum(self):
        reg = MetricsRegistry()
        reg.histogram("lat", stage="s0").observe(1.5)
        reg.histogram("lat", stage="s1").observe(2.5)
        assert reg.value("lat") == pytest.approx(4.0)

    def test_label_names_fixed(self):
        assert LABEL_NAMES == ("node", "branch", "stage", "dataset", "policy")
