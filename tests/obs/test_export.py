"""Exporter formats: Prometheus text exposition and JSON."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    lint_prometheus_text,
    prometheus_text,
    registry_json,
    registry_to_dict,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("tasks_executed", node="w0", branch="b#0").inc(4)
    reg.counter("tasks_executed", node="w1").inc(2)
    reg.gauge("node_memory_in_use", node="w0").set(1024)
    reg.histogram("task_seconds", buckets=(0.1, 1.0, 10.0), stage="s0").observe(0.5)
    reg.histogram("task_seconds", buckets=(0.1, 1.0, 10.0), stage="s0").observe(2.0)
    return reg


class TestPrometheus:
    def test_counter_exposition(self, registry):
        text = prometheus_text(registry)
        assert "# TYPE repro_tasks_executed_total counter" in text
        assert '# HELP repro_tasks_executed_total' in text
        assert 'repro_tasks_executed_total{node="w0",branch="b#0"} 4' in text
        assert 'repro_tasks_executed_total{node="w1"} 2' in text

    def test_gauge_exposition(self, registry):
        text = prometheus_text(registry)
        assert "# TYPE repro_node_memory_in_use gauge" in text
        assert 'repro_node_memory_in_use{node="w0"} 1024' in text

    def test_histogram_exposition_cumulative(self, registry):
        text = prometheus_text(registry)
        assert "# TYPE repro_task_seconds histogram" in text
        assert 'repro_task_seconds_bucket{stage="s0",le="0.1"} 0' in text
        assert 'repro_task_seconds_bucket{stage="s0",le="1"} 1' in text
        assert 'repro_task_seconds_bucket{stage="s0",le="10"} 2' in text
        assert 'repro_task_seconds_bucket{stage="s0",le="+Inf"} 2' in text
        assert 'repro_task_seconds_sum{stage="s0"} 2.5' in text
        assert 'repro_task_seconds_count{stage="s0"} 2' in text

    def test_deterministic_output(self, registry):
        assert prometheus_text(registry) == prometheus_text(registry)

    def test_custom_namespace(self, registry):
        text = prometheus_text(registry, namespace="mdf")
        assert "mdf_tasks_executed_total" in text
        assert "repro_" not in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", dataset='d"q\\uote\n').inc()
        text = prometheus_text(reg)
        assert 'dataset="d\\"q\\\\uote\\n"' in text


class TestJson:
    def test_round_trips_through_json(self, registry):
        blob = registry_json(registry)
        parsed = json.loads(blob)
        assert parsed == registry_to_dict(registry)

    def test_counter_series(self, registry):
        d = registry_to_dict(registry)
        assert d["tasks_executed"]["kind"] == "counter"
        values = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in d["tasks_executed"]["series"]
        }
        assert values[(("branch", "b#0"), ("node", "w0"))] == 4.0

    def test_histogram_series_has_quantiles(self, registry):
        (entry,) = registry_to_dict(registry)["task_seconds"]["series"]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(2.5)
        assert entry["p50"] is not None
        assert all(b["count"] for b in entry["buckets"])  # empty buckets omitted

    def test_empty_histogram_quantiles_are_null(self):
        reg = MetricsRegistry()
        reg.histogram("h")  # registered, never observed
        (entry,) = registry_to_dict(reg)["h"]["series"]
        assert entry["p50"] is None and entry["p99"] is None


class TestEscapingRegression:
    """Hostile label values (tenant names are arbitrary strings) must
    survive the exposition: escaped on the way out, and the strict linter
    must accept the escaped form while rejecting the raw one."""

    NASTY = 'ten"ant\\with\nnewline'

    def test_each_escape_applied_once(self):
        reg = MetricsRegistry()
        reg.counter("c", dataset=self.NASTY).inc()
        text = prometheus_text(reg)
        assert 'dataset="ten\\"ant\\\\with\\nnewline"' in text
        # backslash-first ordering: the escapes never double-escape
        assert "\\\\\\\\" not in text

    def test_escaped_export_lints_clean(self):
        reg = MetricsRegistry()
        reg.counter("c", dataset=self.NASTY).inc(3)
        reg.histogram("h", buckets=(1.0, 2.0), dataset=self.NASTY).observe(1.5)
        assert lint_prometheus_text(prometheus_text(reg)) == []

    def test_linter_rejects_raw_quote_and_backslash(self):
        bad = (
            "# TYPE m gauge\n"
            'm{dataset="raw"quote"} 1\n'
        )
        assert any("malformed label" in p for p in lint_prometheus_text(bad))
        bad = (
            "# TYPE m gauge\n"
            'm{dataset="trailing\\"} 1\n'
        )
        assert any("malformed label" in p for p in lint_prometheus_text(bad))


class TestLinter:
    def test_clean_real_export(self, registry):
        assert lint_prometheus_text(prometheus_text(registry)) == []

    def test_counter_without_total_suffix(self):
        text = "# TYPE repro_jobs counter\nrepro_jobs 1\n"
        assert any("_total suffix" in p for p in lint_prometheus_text(text))

    def test_sample_without_type(self):
        assert any(
            "no TYPE" in p for p in lint_prometheus_text("orphan_metric 1\n")
        )

    def test_bad_sample_value(self):
        text = "# TYPE m gauge\nm not-a-number\n"
        assert any("bad sample value" in p for p in lint_prometheus_text(text))

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="1"} 5\n'
            'm_bucket{le="+Inf"} 3\n'
        )
        assert any("not cumulative" in p for p in lint_prometheus_text(text))

    def test_unknown_type(self):
        text = "# TYPE m enumeration\nm 1\n"
        assert any("unknown TYPE" in p for p in lint_prometheus_text(text))
