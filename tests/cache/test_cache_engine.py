"""Engine-level tests for the lineage-fingerprint result cache.

The contract: cache **off** (the default) is byte-identical to a run
without the subsystem; cache **on** never changes outputs, only skips
work — across branches inside one run and across ``run_mdf`` calls.
"""

import pytest

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
    ResultCache,
    prometheus_text,
    run_mdf,
    validate_trace,
)
from repro.engine import EngineConfig
from repro.obs.bridge import diff_registries, registry_from_trace

from ..conftest import build_filter_mdf


def fresh_cluster(workers=4):
    return Cluster(num_workers=workers, mem_per_worker=1 * GB)


class TestDisabledIsIdentity:
    def test_default_config_has_no_cache(self):
        assert EngineConfig().cache is None

    def test_disabled_run_traces_identically(self):
        """No cache (default) must emit exactly the events it always did."""
        mdf = build_filter_mdf()
        without = run_mdf(mdf, fresh_cluster())
        explicit = run_mdf(mdf, fresh_cluster(), config=EngineConfig(cache=None))
        assert [
            (e.kind, e.data) for e in without.events
        ] == [(e.kind, e.data) for e in explicit.events]

    def test_enabled_run_costs_the_same_simulated_time(self):
        """The cache itself is free: a cold cached run and an uncached run
        advance the simulated clock identically."""
        plain = run_mdf(build_filter_mdf(), fresh_cluster())
        cached = run_mdf(
            build_filter_mdf(),
            fresh_cluster(),
            config=EngineConfig(cache=ResultCache()),
        )
        assert cached.completion_time == pytest.approx(plain.completion_time)
        assert repr(cached.outputs) == repr(plain.outputs)


class TestWarmReuse:
    def run_twice(self, config=None, **kw):
        cluster = fresh_cluster()
        cache = ResultCache()
        config = config or EngineConfig(pruning=False, cache=cache, **kw)
        cold = run_mdf(build_filter_mdf(), cluster, config=config)
        warm = run_mdf(build_filter_mdf(), cluster, config=config, reset=False)
        return cold, warm, cache

    def test_warm_run_hits_and_is_faster(self):
        cold, warm, cache = self.run_twice()
        assert cache.stats.hits > 0
        warm_time = warm.completion_time - cold.completion_time
        assert warm_time < cold.completion_time
        assert repr(warm.outputs) == repr(cold.outputs)

    def test_warm_run_validates(self):
        _, warm, _ = self.run_twice()
        assert validate_trace(warm.events) == []

    def test_shared_prefix_reduction_at_least_25_percent(self):
        """The PR acceptance bar: a warm re-run of the explore workload
        completes in at most 75% of the cold simulated time."""
        cold, warm, _ = self.run_twice()
        warm_time = warm.completion_time - cold.completion_time
        assert warm_time <= 0.75 * cold.completion_time

    def test_cross_branch_reuse_of_identical_branches(self):
        """Two branches with identical parameters fingerprint identically;
        the second one is served from the first one's result."""

        labels = iter("ab")

        def duplicated_mdf():
            builder = MDFBuilder("dup-mdf")
            src = builder.read_data(
                list(range(500)), name="src", nominal_bytes=64 * MB
            )
            src.explore(
                {"threshold": [50, 50]},
                lambda pipe, p: pipe.transform(
                    lambda xs, t=p["threshold"]: [x for x in xs if x < t],
                    name=f"filter-{next(labels)}",
                ),
            ).choose(
                CallableEvaluator(len, name="count"), Min(), name="choose"
            ).write(name="out")
            return builder.build()

        cluster = fresh_cluster()
        cache = ResultCache()
        result = run_mdf(
            duplicated_mdf(),
            cluster,
            config=EngineConfig(pruning=False, cache=cache),
        )
        assert cache.stats.hits >= 1
        assert result.output == list(range(50))
        assert validate_trace(result.events) == []


class TestObservability:
    def test_counters_surface_in_telemetry_export(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        config = EngineConfig(pruning=False, cache=cache)
        run_mdf(build_filter_mdf(), cluster, config=config)
        run_mdf(build_filter_mdf(), cluster, config=config, reset=False)
        assert cluster.obs.value("cache_hits") == cache.stats.hits > 0
        assert cluster.obs.value("cache_misses") == cache.stats.misses > 0
        assert cluster.obs.value("cache_admissions") == cache.stats.admissions
        assert cluster.obs.value("cache_bytes_saved") == cache.stats.bytes_saved
        assert cluster.obs.value("cache_compute_seconds_saved") == pytest.approx(
            cache.stats.compute_seconds_saved
        )
        text = prometheus_text(cluster.obs)
        assert "cache_hits" in text and "cache_bytes_saved" in text

    def test_bridge_rebuilds_cache_counters_from_trace(self):
        cluster = fresh_cluster()
        config = EngineConfig(pruning=False, cache=ResultCache())
        run_mdf(build_filter_mdf(), cluster, config=config)
        warm = run_mdf(build_filter_mdf(), cluster, config=config, reset=False)
        rebuilt = registry_from_trace(warm.events)
        assert diff_registries(cluster.obs, rebuilt) == []

    def test_hit_events_carry_fingerprint_and_savings(self):
        cluster = fresh_cluster()
        config = EngineConfig(pruning=False, cache=ResultCache())
        run_mdf(build_filter_mdf(), cluster, config=config)
        warm = run_mdf(build_filter_mdf(), cluster, config=config, reset=False)
        hits = [e for e in warm.events if e.kind == "cache_hit"]
        assert hits
        for event in hits:
            assert len(event.data["fingerprint"]) == 40
            assert event.data["tier"] in ("cluster", "store")
            assert event.data["nbytes"] > 0
            assert event.data["saved_seconds"] >= 0.0
