"""Tests for the result cache's entry lifecycle (repro.cache.store).

Entries point at live cluster partitions — never payloads — so their
validity tracks the data's: registered → hit, evicted-to-disk → still a
hit (disk-residency read), discarded → invalidated.  The optional disk
store survives ``cluster.reset()`` and feeds the store tier.
"""

import pytest

from repro import Cluster, GB
from repro.cache import DiskCacheStore, ResultCache
from repro.core.datasets import Dataset


def fresh_cluster(workers=2):
    return Cluster(num_workers=workers, mem_per_worker=1 * GB)


def register(cluster, payload, dataset_id=None, nominal=1024):
    dataset = Dataset.from_data(payload, num_partitions=cluster.num_workers)
    dataset.partitions = [
        type(p)(dataset.id, p.index, p.data, nominal // len(dataset.partitions))
        for p in dataset.partitions
    ]
    cluster.register_dataset(dataset)
    return dataset


class TestClusterTier:
    def test_admit_then_hit(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        dataset = register(cluster, list(range(10)))
        cache.admit("fp-1", dataset, cluster)
        hit = cache.lookup("fp-1", cluster)
        assert hit is not None and hit.tier == "cluster"
        assert hit.num_partitions == len(dataset.partitions)
        assert hit.total_bytes == sum(p.nominal_bytes for p in dataset.partitions)
        assert cache.stats.admissions == 1

    def test_unknown_fingerprint_misses(self):
        cache = ResultCache()
        assert cache.lookup("nope", fresh_cluster()) is None

    def test_discard_invalidates_eagerly(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        dataset = register(cluster, list(range(10)))
        cache.admit("fp-1", dataset, cluster)
        cache.invalidate_dataset(dataset.id, cluster, reason="dataset-discarded")
        cluster.discard_dataset(dataset.id)
        assert cache.lookup("fp-1", cluster) is None
        assert cache.stats.invalidations == 1

    def test_lost_backing_invalidates_lazily(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        dataset = register(cluster, list(range(10)))
        cache.admit("fp-1", dataset, cluster)
        cluster.discard_dataset(dataset.id)  # cache not told
        assert cache.lookup("fp-1", cluster) is None  # lazy path
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_eviction_to_disk_keeps_entry_valid(self):
        """Evicted partitions are demoted, not lost: the entry survives and
        a hit is simply charged the disk-residency read."""
        cluster = Cluster(num_workers=1, mem_per_worker=1 * GB)
        cache = ResultCache()
        dataset = register(cluster, list(range(10)), nominal=512)
        cache.admit("fp-1", dataset, cluster)
        big = register(cluster, list(range(100)), nominal=2 * GB)  # force spill
        assert big is not None
        hit = cache.lookup("fp-1", cluster)
        assert hit is not None and hit.tier == "cluster"

    def test_revalidate_drops_only_unbacked_entries(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        kept = register(cluster, list(range(10)))
        lost = register(cluster, list(range(10, 20)))
        cache.admit("fp-kept", kept, cluster)
        cache.admit("fp-lost", lost, cluster)
        cluster.discard_dataset(lost.id)
        cache.revalidate(cluster, reason="node-failure")
        assert cache.lookup("fp-kept", cluster) is not None
        assert cache.lookup("fp-lost", cluster) is None

    def test_readmission_replaces_previous_entry(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        first = register(cluster, list(range(4)))
        second = register(cluster, list(range(4)))
        cache.admit("fp-1", first, cluster)
        cache.admit("fp-1", second, cluster)
        assert len(cache) == 1
        assert cache.entry("fp-1").dataset_id == second.id

    def test_clear_forgets_cluster_tier(self):
        cluster = fresh_cluster()
        cache = ResultCache()
        cache.admit("fp-1", register(cluster, list(range(4))), cluster)
        cache.clear()
        assert cache.lookup("fp-1", cluster) is None


class TestStoreTier:
    def test_store_survives_cluster_reset(self, tmp_path):
        cluster = fresh_cluster()
        cache = ResultCache(store=DiskCacheStore(str(tmp_path)))
        dataset = register(cluster, list(range(10)))
        cache.admit("fp-1", dataset, cluster)
        assert cache.stats.store_writes == 1
        cluster.reset()
        cache.clear()
        hit = cache.lookup("fp-1", cluster)
        assert hit is not None and hit.tier == "store"
        assert hit.payloads is not None and len(hit.payloads) == hit.num_partitions

    def test_store_survives_new_cache_instance(self, tmp_path):
        cluster = fresh_cluster()
        store = DiskCacheStore(str(tmp_path))
        cache = ResultCache(store=store)
        cache.admit("fp-1", register(cluster, list(range(10))), cluster)
        fresh = ResultCache(store=DiskCacheStore(str(tmp_path)))
        assert fresh.lookup("fp-1", fresh_cluster()) is not None

    def test_unpicklable_payload_skips_store(self, tmp_path):
        cluster = fresh_cluster()
        cache = ResultCache(store=DiskCacheStore(str(tmp_path)))
        dataset = register(cluster, [lambda x: x for _ in range(4)])
        cache.admit("fp-1", dataset, cluster)
        assert cache.stats.unpicklable_skipped == 1
        assert cache.stats.store_writes == 0
        # the cluster-tier entry still works
        assert cache.lookup("fp-1", cluster).tier == "cluster"

    def test_store_clear_and_len(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        store.save("fp-1", [[1]], [8], None)
        store.save("fp-2", [[2]], [8], None)
        assert len(store) == 2
        store.clear()
        assert len(store) == 0
        assert store.load("fp-1") is None


class TestStats:
    def test_hit_rate(self):
        stats = ResultCache().stats
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_as_dict_round_trip(self):
        cache = ResultCache()
        d = cache.stats.as_dict()
        assert set(d) >= {"hits", "misses", "admissions", "invalidations"}
