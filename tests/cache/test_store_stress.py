"""Concurrency stress tests for the shared store (PR9 satellite c).

Real processes hammer one store directory with racing save/load/clear
calls: no torn reads (every load returns a well-formed blob or a miss),
no stray tmp files, no crashes.  The single-flight test proves an
in-flight fingerprint is computed exactly once across two concurrent
jobs (the loser serves the winner's publish).

Worker functions are module level — they cross the process boundary by
name (tests are an importable package).
"""

import multiprocessing
import os
import time

from repro.cache import SharedCacheStore

FINGERPRINTS = [f"fp-{i}" for i in range(6)]


def _hammer(args):
    """One stress worker: interleaved saves, loads and clears.

    Returns (loads_ok, corrupt_seen, errors).  Any exception is an
    error — the store's contract is that races never raise.
    """
    path, seed, iterations = args
    store = SharedCacheStore(path, tenant=f"t{seed % 3}", tmp_sweep_age=60.0)
    loads_ok = errors = 0
    for i in range(iterations):
        fp = FINGERPRINTS[(seed + i) % len(FINGERPRINTS)]
        try:
            op = (seed + i) % 7
            if op < 3:  # save (distinct payload per writer+round)
                payload = [[seed, i] * 40]
                store.save(fp, payload, [len(payload[0]) * 8], f"p{seed}")
            elif op < 6:  # load: a miss or a well-formed blob, never torn
                store._loaded.clear()  # force the disk read path
                loaded = store.load(fp)
                if loaded is not None:
                    payloads, partition_bytes, producer = loaded
                    assert isinstance(payloads, list)
                    assert len(payloads) == len(partition_bytes)
                    assert producer is None or producer.startswith("p")
                    loads_ok += 1
            else:  # the rarest op: wipe everything mid-race
                store.clear()
        except Exception:  # noqa: BLE001 - counted, fails the test
            errors += 1
    return loads_ok, store.corrupt_entries, errors


def _flight_worker(args):
    """One 'job' in the exactly-once race: claim-or-wait on a fingerprint.

    The winner 'computes' (sleeps, then appends a line to the compute
    log), publishes, and releases; losers wait for the publish.  Returns
    (computed, served) flags.
    """
    path, log_path, seed = args
    store = SharedCacheStore(path, tenant=f"t{seed}", flight_wait=20.0)
    fp = "fp-expensive"
    if store.contains(fp):
        return (0, 1)
    if store.try_begin_flight(fp):
        time.sleep(0.3)  # the 'expensive' computation, long enough
        # that every other worker reaches the wait path first
        with open(log_path, "a") as fh:  # O_APPEND: atomic small writes
            fh.write(f"computed-by-{seed}\n")
        store.save(fp, [[seed] * 8], [64], f"p{seed}")
        store.end_flight(fp)
        return (1, 0)
    loaded = store.wait_for_flight(fp)
    return (0, 1 if loaded is not None else 0)


class TestConcurrentStress:
    def test_parallel_save_load_clear_races(self, tmp_path):
        path = str(tmp_path)
        procs, iterations = 4, 120
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(procs) as pool:
            results = pool.map(
                _hammer, [(path, seed, iterations) for seed in range(procs)]
            )
        total_loads = sum(r[0] for r in results)
        total_corrupt = sum(r[1] for r in results)
        total_errors = sum(r[2] for r in results)
        assert total_errors == 0, f"store raised under race: {results}"
        # atomic publishes mean a reader never sees a torn entry
        assert total_corrupt == 0, f"torn reads detected: {results}"
        assert total_loads > 0  # the race actually exercised loads
        leftovers = [n for n in os.listdir(path) if n.endswith(".tmp")]
        assert leftovers == []  # every publish or failure cleaned up

    def test_inflight_fingerprint_computed_exactly_once(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        log_path = str(tmp_path / "compute.log")
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(2) as pool:
            results = pool.map(
                _flight_worker,
                [(str(store_dir), log_path, seed) for seed in range(2)],
            )
        computes = [line for line in open(log_path)] if os.path.exists(
            log_path
        ) else []
        assert len(computes) == 1, f"computed {len(computes)} times: {computes}"
        assert sum(c for c, _ in results) == 1  # exactly one winner...
        assert sum(s for _, s in results) == 1  # ...and the loser was served
