"""Cache × recovery interplay tests.

A node failure kills partitions the cache may be pointing at.  Lineage
recovery restores lost partitions byte-identically under their original
keys, so surviving entries refresh in place; entries whose backing is
truly gone (dead data dropped free, transients) are invalidated by the
post-recovery revalidation sweep.  The §5 exactness invariant — the failed
run finishes later than the clean run by precisely the charged recovery
seconds — must keep holding with the cache enabled.
"""

import pytest

from repro import Cluster, FailureInjector, GB, ResultCache, validate_trace
from repro.engine import EngineConfig, run_mdf

from ..conftest import build_filter_mdf


def fresh_cluster():
    return Cluster(num_workers=4, mem_per_worker=1 * GB)


def config(cache=None, **kw):
    return EngineConfig(pruning=False, cache=cache, **kw)


def failure_at(stage_index, node="worker-0", cache=None):
    return config(
        cache=cache, failures=FailureInjector.at_stages([(stage_index, node)])
    )


class TestExactnessWithCache:
    def test_failed_run_charges_exactly_recovery_seconds(self):
        """PR 3's 1e-9 exactness invariant survives the cache subsystem."""
        mdf = build_filter_mdf()
        clean = run_mdf(mdf, fresh_cluster(), config=config(cache=ResultCache()))
        cluster = fresh_cluster()
        failed = run_mdf(mdf, cluster, config=failure_at(2, cache=ResultCache()))
        charged = cluster.obs.value("recovery_seconds")
        assert charged > 0
        assert failed.completion_time == pytest.approx(
            clean.completion_time + charged, abs=1e-9
        )

    def test_same_output_despite_failure_with_cache(self):
        mdf = build_filter_mdf()
        clean = run_mdf(mdf, fresh_cluster(), config=config(cache=ResultCache()))
        failed = run_mdf(mdf, fresh_cluster(), config=failure_at(3, cache=ResultCache()))
        assert repr(failed.outputs) == repr(clean.outputs)

    def test_failure_run_validates_with_cache(self):
        result = run_mdf(
            build_filter_mdf(), fresh_cluster(), config=failure_at(2, cache=ResultCache())
        )
        assert validate_trace(result.events) == []


class TestInvalidationAndRefresh:
    def test_entries_for_dead_data_are_invalidated(self):
        """Whatever the failure kills for good must leave the cache too:
        after recovery no entry resolves to unreadable partitions."""
        cluster = fresh_cluster()
        cache = ResultCache()
        result = run_mdf(
            build_filter_mdf(), cluster, config=failure_at(2, cache=cache)
        )
        assert result is not None
        for fingerprint in list(cache._entries):
            entry = cache.entry(fingerprint)
            assert cache._resolve(entry, cluster) is not None

    def test_recovered_entries_still_serve_warm_runs(self):
        """Recovery restores partitions byte-identically under the original
        keys, so a warm re-run after a mid-run failure still hits."""
        mdf = build_filter_mdf()
        cluster = fresh_cluster()
        cache = ResultCache()
        cold = run_mdf(mdf, cluster, config=failure_at(2, cache=cache))
        hits_before = cache.stats.hits
        warm = run_mdf(mdf, cluster, config=config(cache=cache), reset=False)
        assert cache.stats.hits > hits_before
        assert repr(warm.outputs) == repr(cold.outputs)
        assert validate_trace(warm.events) == []

    def test_invalidate_events_traced_on_failure(self):
        """If revalidation drops entries it must say so in the trace."""
        cluster = fresh_cluster()
        cache = ResultCache()
        result = run_mdf(
            build_filter_mdf(), cluster, config=failure_at(2, cache=cache)
        )
        invalidates = [
            e for e in result.events if e.kind == "cache_invalidate"
        ]
        assert cache.stats.invalidations == len(invalidates)
        for event in invalidates:
            assert event.data["reason"] in (
                "node-failure",
                "dataset-discarded",
                "backing-lost",
            )

    def test_warm_run_with_failure_in_warm_phase(self):
        """A failure during the warm (cache-hitting) run must recover and
        still produce identical outputs."""
        mdf = build_filter_mdf()
        cluster = fresh_cluster()
        cache = ResultCache()
        cold = run_mdf(mdf, cluster, config=config(cache=cache))
        warm = run_mdf(
            mdf, cluster, config=failure_at(2, cache=cache), reset=False
        )
        assert repr(warm.outputs) == repr(cold.outputs)
        assert validate_trace(warm.events) == []
