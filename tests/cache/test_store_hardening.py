"""Tests for DiskCacheStore hardening (PR9 satellites a + b).

Corrupt/truncated entries are quarantined — unlinked, counted, served as
a miss — and never crash a run; stale ``*.tmp`` leftovers from killed
writers are swept at store open and never served.
"""

import os
import pickle

from repro import Cluster, GB
from repro.cache import DiskCacheStore, ResultCache
from repro.engine import EngineConfig, run_mdf
from repro.lab.workloads import get_workload


def fresh_cluster(workers=2):
    return Cluster(num_workers=workers, mem_per_worker=1 * GB)


def save_entry(store, fingerprint="fp-1", payloads=None):
    payloads = payloads if payloads is not None else [[1, 2], [3, 4]]
    assert store.save(fingerprint, payloads, [64, 64], "producer")
    return payloads


class TestCorruptEntries:
    def test_truncated_entry_is_a_miss_and_unlinked(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        save_entry(store)
        path = store._file("fp-1")
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn write
        store._loaded.clear()  # drop the memo; force the disk read
        assert store.load("fp-1") is None
        assert store.corrupt_entries == 1
        assert not os.path.exists(path)  # quarantined
        assert store.load("fp-1") is None  # now a plain miss
        assert store.corrupt_entries == 1  # not double counted

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        with open(store._file("fp-junk"), "wb") as fh:
            fh.write(b"not a pickle at all")
        assert store.contains("fp-junk")
        assert store.load("fp-junk") is None
        assert store.corrupt_entries == 1
        assert not store.contains("fp-junk")

    def test_wrong_shape_blob_is_corrupt(self, tmp_path):
        """A well-formed pickle that isn't a cache blob is still corrupt."""
        store = DiskCacheStore(str(tmp_path))
        with open(store._file("fp-shape"), "wb") as fh:
            pickle.dump({"payloads": [1], "partition_bytes": [1, 2],
                         "producer": None}, fh)
        assert store.load("fp-shape") is None
        assert store.corrupt_entries == 1

    def test_missing_file_is_a_plain_miss_not_corruption(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        assert store.load("never-saved") is None
        assert store.corrupt_entries == 0

    def test_resave_after_corruption_serves_again(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        save_entry(store)
        with open(store._file("fp-1"), "wb") as fh:
            fh.write(b"xx")
        store._loaded.clear()
        assert store.load("fp-1") is None
        payloads = save_entry(store)
        loaded = store.load("fp-1")
        assert loaded is not None and loaded[0] == payloads


class TestTmpSweep:
    def test_stale_tmp_swept_at_open_and_never_served(self, tmp_path):
        planted = tmp_path / "deadbeef.pkl.12345.tmp"
        planted.write_bytes(b"partial write from a killed process")
        old = os.path.getmtime(planted) - 3600
        os.utime(planted, (old, old))
        store = DiskCacheStore(str(tmp_path), tmp_sweep_age=60.0)
        assert store.tmps_swept == 1
        assert not planted.exists()
        assert not store.contains("deadbeef")  # tmp was never an entry
        assert len(store) == 0

    def test_young_tmp_survives_aged_sweep(self, tmp_path):
        """A tmp younger than the sweep age may belong to a live writer
        mid-publish — it must not be yanked out from under it."""
        planted = tmp_path / "cafe.pkl.999.tmp"
        planted.write_bytes(b"in-flight write")
        store = DiskCacheStore(str(tmp_path), tmp_sweep_age=60.0)
        assert store.tmps_swept == 0
        assert planted.exists()

    def test_default_sweep_removes_any_age(self, tmp_path):
        (tmp_path / "f00d.pkl.1.tmp").write_bytes(b"x")
        store = DiskCacheStore(str(tmp_path))  # tmp_sweep_age=0.0
        assert store.tmps_swept == 1

    def test_clear_removes_tmps_too(self, tmp_path):
        store = DiskCacheStore(str(tmp_path))
        save_entry(store)
        (tmp_path / "aaaa.pkl.7.tmp").write_bytes(b"x")
        store.clear()
        leftover = [n for n in os.listdir(tmp_path) if n.endswith((".pkl", ".tmp"))]
        assert leftover == []


class TestCorruptionRegression:
    def test_run_completes_with_recompute_after_corruption(self, tmp_path):
        """End to end: corrupt every store entry between runs; the rerun
        must recompute cleanly and produce identical outputs."""
        workload = get_workload("filter_min")
        store = DiskCacheStore(str(tmp_path))
        cache = ResultCache(store=store)

        def run():
            cluster = workload.make_cluster()
            config = EngineConfig(cache=cache)
            result = run_mdf(
                workload.make_mdf(), cluster, scheduler="bas", memory="amm",
                config=config, validate=True,
            )
            return result, cluster

        cold, _ = run()
        assert cache.stats.store_writes > 0
        for name in os.listdir(tmp_path):  # truncate every entry
            if name.endswith(".pkl"):
                full = os.path.join(tmp_path, name)
                blob = open(full, "rb").read()
                with open(full, "wb") as fh:
                    fh.write(blob[: max(1, len(blob) // 3)])
        store._loaded.clear()
        cache.clear()
        rerun, cluster = run()
        assert repr(rerun.outputs) == repr(cold.outputs)
        assert cache.stats.corrupt_entries > 0
        assert cluster.obs.value("cache_corrupt_entries") > 0
        # the quarantined files were unlinked, then re-written by the rerun
        assert store.corrupt_entries == cache.stats.corrupt_entries
