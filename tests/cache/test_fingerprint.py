"""Tests for canonical lineage fingerprints (repro.cache.fingerprint).

The cache's soundness rests on two properties: *stability* (the same
computation fingerprints identically across processes and runs) and
*discrimination* (any change to the function, its parameters or its inputs
changes the fingerprint).  Anything without a deterministic canonical form
must refuse with :class:`FingerprintError` rather than guess.
"""

import numpy as np
import pytest

from repro.cache import (
    FingerprintError,
    callable_token,
    choose_fingerprint,
    digest,
    operator_fingerprint,
    stage_fingerprint,
    value_token,
)
from repro.core.operators import Source, Transform


def make_transform(factor, name="t"):
    return Transform(lambda xs, f=factor: [x * f for x in xs], name=name)


class TestOperatorFingerprints:
    def test_same_parameters_same_fingerprint(self):
        assert operator_fingerprint(make_transform(3)) == operator_fingerprint(
            make_transform(3)
        )

    def test_different_parameters_differ(self):
        assert operator_fingerprint(make_transform(3)) != operator_fingerprint(
            make_transform(4)
        )

    def test_name_is_not_identity(self):
        """Auto-generated labels must not defeat cross-run recognition."""
        assert operator_fingerprint(make_transform(3, "a")) == operator_fingerprint(
            make_transform(3, "b")
        )

    def test_different_bodies_differ(self):
        a = Transform(lambda xs: [x + 1 for x in xs], name="t")
        b = Transform(lambda xs: [x + 2 for x in xs], name="t")
        assert operator_fingerprint(a) != operator_fingerprint(b)

    def test_cost_model_attributes_are_identity(self):
        a = Transform(lambda xs: xs, name="t", cost_factor=1.0)
        b = Transform(lambda xs: xs, name="t", cost_factor=2.0)
        assert operator_fingerprint(a) != operator_fingerprint(b)

    def test_source_payload_is_identity(self):
        a = Source.from_data([1, 2, 3], name="s", nominal_bytes=64)
        b = Source.from_data([1, 2, 3], name="s", nominal_bytes=64)
        c = Source.from_data([1, 2, 4], name="s", nominal_bytes=64)
        assert operator_fingerprint(a) == operator_fingerprint(b)
        assert operator_fingerprint(a) != operator_fingerprint(c)


class TestValueTokens:
    def test_primitives_and_collections(self):
        assert value_token(3) == value_token(3)
        assert value_token(3) != value_token(3.0)
        assert value_token([1, 2]) != value_token((1, 2))
        assert value_token({"a": 1, "b": 2}) == value_token({"b": 2, "a": 1})

    def test_ndarray_content_hashes(self):
        a = np.arange(10.0)
        assert value_token(a) == value_token(np.arange(10.0))
        assert value_token(a) != value_token(np.arange(10.0) + 1)

    def test_dataclass_values(self):
        from repro.workloads.datagen import LabelledImages

        x, y = np.zeros((4, 2)), np.array([0, 1, 0, 1])
        assert value_token(LabelledImages(x, y)) == value_token(
            LabelledImages(x.copy(), y.copy())
        )
        assert value_token(LabelledImages(x, y)) != value_token(
            LabelledImages(x + 1, y)
        )

    def test_plain_object_values(self):
        from repro.core.explore import ParameterGrid

        assert value_token(ParameterGrid(t=[1, 2])) == value_token(
            ParameterGrid(t=[1, 2])
        )
        assert value_token(ParameterGrid(t=[1, 2])) != value_token(
            ParameterGrid(t=[1, 3])
        )

    def test_unfingerprintable_raises(self):
        gen = (x for x in range(3))  # no __dict__, no canonical content
        with pytest.raises(FingerprintError):
            value_token(gen)

    def test_closure_captures_are_identity(self):
        def outer(k):
            return lambda xs: [x + k for x in xs]

        assert callable_token(outer(1)) == callable_token(outer(1))
        assert callable_token(outer(1)) != callable_token(outer(2))


class TestStageAndChooseFingerprints:
    def test_stage_kind_and_layout_discriminate(self):
        base = stage_fingerprint("narrow", ["op"], ["in"], None)
        assert base == stage_fingerprint("narrow", ["op"], ["in"], None)
        assert base != stage_fingerprint("wide", ["op"], ["in"], None)
        assert base != stage_fingerprint("narrow", ["op"], ["in2"], None)
        assert base != stage_fingerprint("narrow", ["op2"], ["in"], None)
        assert stage_fingerprint("source", [], [], 4) != stage_fingerprint(
            "source", [], [], 8
        )

    def test_choose_fingerprint_is_order_sensitive(self):
        assert choose_fingerprint(["a", "b"]) == choose_fingerprint(["a", "b"])
        assert choose_fingerprint(["a", "b"]) != choose_fingerprint(["b", "a"])

    def test_digest_is_stable_and_short(self):
        assert digest(["x", 1]) == digest(["x", 1])
        assert len(digest(["x", 1])) == 40
