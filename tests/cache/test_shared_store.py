"""Tests for the shared cross-tenant store tier (PR9 tentpole).

Ownership sidecars, per-tenant byte quotas with oldest-first eviction,
single-flight leases (claim / stale-break / bounded wait / release), and
the tenant-labelled hit/miss accounting the executor layers on top.
"""

import os
import time

from repro import Cluster, GB
from repro.cache import ResultCache, SharedCacheStore
from repro.engine import EngineConfig, run_mdf
from repro.lab.workloads import get_workload


def fresh_cluster(workers=2):
    return Cluster(num_workers=workers, mem_per_worker=1 * GB)


def save_entry(store, fingerprint, nbytes=200, tenant=None):
    payload = [list(range(nbytes // 8))]
    assert store.save(fingerprint, payload, [nbytes], "producer", tenant=tenant)


def backdate(path, seconds):
    old = os.path.getmtime(path) - seconds
    os.utime(path, (old, old))


class TestOwnership:
    def test_owner_sidecar_written_and_read(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        save_entry(store, "fp-1")
        assert store.owner_of("fp-1") == "alice"
        # a second handle (fresh process in real life) reads the sidecar
        other = SharedCacheStore(str(tmp_path), tenant="bob")
        assert other.owner_of("fp-1") == "alice"

    def test_explicit_tenant_overrides_store_default(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        save_entry(store, "fp-1", tenant="carol")
        assert store.owner_of("fp-1") == "carol"

    def test_unlabelled_entry_has_no_owner(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        save_entry(store, "fp-1")
        os.unlink(store._owner_file("fp-1"))
        store._owners.clear()
        assert store.owner_of("fp-1") is None

    def test_clear_removes_sidecars_and_flights(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        save_entry(store, "fp-1")
        assert store.try_begin_flight("fp-2")
        store.clear()
        assert [n for n in os.listdir(tmp_path) if not n.startswith(".")] == []


class TestQuotas:
    def test_oldest_entry_evicted_first(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice", quota_bytes=None)
        for i, fp in enumerate(["fp-old", "fp-mid", "fp-new"]):
            save_entry(store, fp, nbytes=400)
            backdate(store._file(fp), (3 - i) * 100)  # old < mid < new
        sizes = sum(
            os.path.getsize(store._file(fp)) for fp in ["fp-mid", "fp-new"]
        )
        store.quota_bytes = sizes  # room for exactly the two newest
        store._enforce_quota("alice")
        assert not store.contains("fp-old")
        assert store.contains("fp-mid") and store.contains("fp-new")
        assert store.quota_evictions == 1
        assert store.owner_of("fp-old") is None  # sidecar gone too

    def test_publish_triggers_enforcement(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice", quota_bytes=None)
        save_entry(store, "fp-a", nbytes=400)
        backdate(store._file("fp-a"), 100)
        store.quota_bytes = int(os.path.getsize(store._file("fp-a")) * 1.5)
        save_entry(store, "fp-b", nbytes=400)  # pushes alice over quota
        assert not store.contains("fp-a")  # oldest went
        assert store.contains("fp-b")  # the fresh publish survives

    def test_just_published_entry_kept_unless_it_alone_exceeds(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice", quota_bytes=8)
        save_entry(store, "fp-huge", nbytes=4000)
        assert not store.contains("fp-huge")  # alone over quota: evicted

    def test_quota_is_per_tenant(self, tmp_path):
        alice = SharedCacheStore(str(tmp_path), tenant="alice", quota_bytes=None)
        save_entry(alice, "fp-alice", nbytes=400)
        backdate(alice._file("fp-alice"), 100)
        bob = SharedCacheStore(
            str(tmp_path),
            tenant="bob",
            quota_bytes=int(os.path.getsize(alice._file("fp-alice")) * 1.2),
        )
        save_entry(bob, "fp-bob", nbytes=400)
        # bob is under *his* quota with one entry; alice's older, bigger
        # footprint is not his to evict
        assert bob.contains("fp-alice") and bob.contains("fp-bob")
        assert bob.quota_evictions == 0

    def test_tenant_usage_counts_only_owned_bytes(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        save_entry(store, "fp-1", nbytes=400)
        save_entry(store, "fp-2", nbytes=400, tenant="bob")
        assert store.tenant_usage("alice") == os.path.getsize(store._file("fp-1"))
        assert store.tenant_usage("bob") == os.path.getsize(store._file("fp-2"))
        assert store.tenant_usage("nobody") == 0


class TestSingleFlight:
    def test_exactly_one_claimant_wins(self, tmp_path):
        a = SharedCacheStore(str(tmp_path), tenant="a")
        b = SharedCacheStore(str(tmp_path), tenant="b")
        assert a.try_begin_flight("fp-1")
        assert not b.try_begin_flight("fp-1")
        a.end_flight("fp-1")
        assert b.try_begin_flight("fp-1")

    def test_stale_lease_is_broken(self, tmp_path):
        a = SharedCacheStore(str(tmp_path), tenant="a", flight_timeout=0.5)
        b = SharedCacheStore(str(tmp_path), tenant="b", flight_timeout=0.5)
        assert a.try_begin_flight("fp-1")
        backdate(a._flight_file("fp-1"), 10)  # holder looks crashed
        assert not a.flight_active("fp-1")
        assert b.try_begin_flight("fp-1")  # broke the stale lease

    def test_wait_returns_published_blob(self, tmp_path):
        a = SharedCacheStore(str(tmp_path), tenant="a")
        b = SharedCacheStore(str(tmp_path), tenant="b", flight_wait=5.0)
        assert a.try_begin_flight("fp-1")
        save_entry(a, "fp-1")  # publish while the lease is held
        loaded = b.wait_for_flight("fp-1")
        assert loaded is not None and loaded[2] == "producer"

    def test_wait_times_out_to_recompute(self, tmp_path):
        a = SharedCacheStore(str(tmp_path), tenant="a")
        b = SharedCacheStore(
            str(tmp_path), tenant="b", flight_wait=0.05, flight_poll=0.005
        )
        assert a.try_begin_flight("fp-1")  # ...and never publishes
        started = time.monotonic()
        assert b.wait_for_flight("fp-1") is None
        assert time.monotonic() - started < 2.0  # bounded, not a deadlock

    def test_wait_stops_when_lease_released_without_publish(self, tmp_path):
        a = SharedCacheStore(str(tmp_path), tenant="a")
        b = SharedCacheStore(str(tmp_path), tenant="b", flight_wait=5.0)
        assert a.try_begin_flight("fp-1")
        a.end_flight("fp-1")  # failed run / persistence skipped
        started = time.monotonic()
        assert b.wait_for_flight("fp-1") is None
        assert time.monotonic() - started < 2.0  # no full-wait stall


class TestResultCacheIntegration:
    def test_miss_claims_flight_and_finish_run_releases(self, tmp_path):
        store = SharedCacheStore(str(tmp_path), tenant="alice")
        cache = ResultCache(store=store)
        cluster = fresh_cluster()
        assert cache.lookup("fp-1", cluster) is None  # miss: we compute
        assert store.flight_active("fp-1")
        assert cache.lookup("fp-1", cluster) is None  # own flight: no wait
        cache.finish_run()
        assert not store.flight_active("fp-1")
        assert cache.lookup("fp-1", cluster) is None  # reclaims cleanly
        cache.finish_run()

    def test_waiter_serves_other_jobs_publish_as_store_hit(self, tmp_path):
        writer = SharedCacheStore(str(tmp_path), tenant="alice")
        assert writer.try_begin_flight("fp-1")
        save_entry(writer, "fp-1")
        reader = ResultCache(
            store=SharedCacheStore(str(tmp_path), tenant="bob", flight_wait=5.0)
        )
        hit = reader.lookup("fp-1", fresh_cluster())
        assert hit is not None and hit.tier == "store"
        assert hit.owner_tenant == "alice"
        writer.end_flight("fp-1")

    def test_singleflight_wait_counted(self, tmp_path):
        """A lookup that resolves by waiting out another job's flight
        counts in ``singleflight_waits`` and the tenant-labelled obs."""
        import threading

        writer = SharedCacheStore(str(tmp_path), tenant="alice")
        reader = ResultCache(
            store=SharedCacheStore(str(tmp_path), tenant="bob", flight_wait=5.0)
        )
        cluster = fresh_cluster()
        assert writer.try_begin_flight("fp-1")

        def publish_later():
            time.sleep(0.05)
            save_entry(writer, "fp-1")
            writer.end_flight("fp-1")

        thread = threading.Thread(target=publish_later)
        thread.start()
        try:
            hit = reader.lookup("fp-1", cluster)
        finally:
            thread.join()
        assert hit is not None and hit.tier == "store"
        assert reader.stats.singleflight_waits == 1
        assert cluster.obs.value("cache_singleflight_waits", policy="bob") == 1

    def test_cross_tenant_run_hits_and_labels(self, tmp_path):
        """Tenant alice's run populates the shared store; tenant bob's
        run hits it — stats and tenant-labelled obs counters move."""
        workload = get_workload("filter_min")

        def run(tenant):
            cache = ResultCache(
                store=SharedCacheStore(str(tmp_path), tenant=tenant),
                cost_based=False,  # cheap workload: let store hits serve
            )
            cluster = workload.make_cluster()
            result = run_mdf(
                workload.make_mdf(), cluster, scheduler="bas", memory="amm",
                config=EngineConfig(cache=cache), validate=True,
            )
            return result, cache, cluster

        cold, cold_cache, _ = run("alice")
        assert cold_cache.stats.store_writes > 0
        warm, warm_cache, cluster = run("bob")
        assert repr(warm.outputs) == repr(cold.outputs)
        assert warm_cache.stats.hits > 0
        assert warm_cache.stats.cross_tenant_hits == warm_cache.stats.hits
        obs = cluster.obs
        assert obs.value("cache_tenant_hits", policy="bob") > 0
        assert (
            obs.value("cache_cross_tenant_hits", policy="alice->bob")
            == warm_cache.stats.cross_tenant_hits
        )
