"""Differential policy testing: every scheduler, same answers.

The lab's central safety claim — a pluggable scheduling policy changes
*when* stages run, never *what* the job computes — checked over the
whole registry × the smoke workload zoo, plus the bench figures'
representative MDFs.  Each cell must show byte-identical outputs,
identical choose decisions, a validator-clean trace and live-vs-replayed
registry parity.
"""

import pytest

from repro.engine.policies import available_schedulers
from repro.lab import (
    assert_differential,
    available_workloads,
    compare_cell,
    differential_matrix,
    get_workload,
    render_matrix,
)
from repro.obs.bridge import diff_registries, registry_from_trace
from repro.trace.validate import validate_trace

SCHEDULERS = available_schedulers()
SMOKE = available_workloads("smoke")


class TestDifferentialMatrix:
    def test_zoo_has_enough_coverage(self):
        """The acceptance floor: >=4 schedulers x >=3 workloads."""
        assert len(SCHEDULERS) >= 4
        assert len(SMOKE) >= 3

    @pytest.mark.parametrize("workload", SMOKE)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_cell_matches_reference(self, workload, scheduler):
        cell = compare_cell(workload, scheduler, reference="bfs")
        assert cell.passed, cell.describe()

    def test_matrix_runs_whole_smoke_tier(self):
        cells = differential_matrix(workloads=SMOKE)
        assert len(cells) == len(SCHEDULERS) * len(SMOKE)
        assert all(c.passed for c in cells)

    def test_assert_differential_raises_on_contract_breach(self):
        """A policy whose workload genuinely depends on order must fail.

        Simulated by comparing against a doctored reference run whose
        outputs were tampered with — assert_differential is exercised
        end-to-end through compare_cell's plumbing instead."""
        cell = compare_cell("filter_min", "heft", reference="bfs")
        cell.outputs_identical = False
        assert not cell.passed
        assert "outputs differ" in cell.describe()

    def test_assert_differential_passes_smoke(self):
        cells = assert_differential(workloads=["filter_min"])
        assert all(c.passed for c in cells)

    def test_render_matrix_mentions_every_cell(self):
        cells = differential_matrix(workloads=["filter_min"])
        text = render_matrix(cells)
        for scheduler in SCHEDULERS:
            assert scheduler in text
        assert f"{len(cells)}/{len(cells)} cells" in text


class TestValidatorsAndReplayPerPolicy:
    """The seven validators and trace→registry replay, per policy."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_trace_validators_clean(self, scheduler):
        result, _ = get_workload("starved_explore").run(scheduler=scheduler)
        assert validate_trace(result.events) == []

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_registry_replay_parity(self, scheduler):
        result, cluster = get_workload("nested_topk").run(scheduler=scheduler)
        rebuilt = registry_from_trace(result.events)
        assert diff_registries(cluster.obs, rebuilt) == []


class TestBenchFigureMdfsDifferential:
    """The bench harness's representative MDFs under every policy.

    Uses the same MDF shapes the paper figures run (threshold explore on
    a starved cluster, nested synthetic grid) at test scale; every
    policy must agree with bfs on outputs and decisions.
    """

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_figure_shaped_synthetic_grid(self, scheduler):
        from repro import Cluster, MB, run_mdf
        from repro.workloads.datagen import string_int_pairs
        from repro.workloads.mdfs import synthetic_mdf

        def run(sched):
            mdf = synthetic_mdf(
                string_int_pairs(n=100, seed=3), b1=2, b2=2, nominal_bytes=16 * MB
            )
            cluster = Cluster(num_workers=2, mem_per_worker=64 * MB)
            return run_mdf(mdf, cluster, scheduler=sched, validate=True)

        reference = run("bfs")
        contender = run(scheduler)
        assert repr(contender.outputs) == repr(reference.outputs)
        assert {n: d.kept for n, d in contender.decisions.items()} == {
            n: d.kept for n, d in reference.decisions.items()
        }
