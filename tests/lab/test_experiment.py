"""The experiment harness: cells, reports, artifacts, gate baselines."""

import json

from repro.lab import Experimentation, LabReport, get_workload
from repro.lab.workloads import available_workloads


class TestWorkloadZoo:
    def test_smoke_tier_is_subset_of_full(self):
        smoke = set(available_workloads("smoke"))
        full = set(available_workloads("full"))
        assert smoke and smoke <= full

    def test_get_workload_unknown_name(self):
        try:
            get_workload("nope")
        except ValueError as exc:
            assert "nope" in str(exc) and "registered" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_run_returns_result_and_cluster(self):
        result, cluster = get_workload("filter_min").run(scheduler="bfs")
        assert result.completion_time > 0
        assert cluster.obs is not None


class TestExperimentation:
    def test_cells_is_full_cross_product(self):
        exp = Experimentation(
            schedulers=["bfs", "bas"],
            memories=["amm", "lru"],
            workloads=["filter_min"],
            cluster_sizes=[None, 2],
        )
        assert len(exp.cells()) == 2 * 2 * 1 * 2

    def test_run_cell_collects_all_dimensions(self):
        exp = Experimentation()
        cell = exp.run_cell("starved_explore", "heft", memory="amm")
        assert cell.completion_time > 0
        assert cell.exploration_cost > 0
        assert 0.0 <= cell.memory_hit_ratio <= 1.0
        assert cell.branches_executed == 3
        assert cell.evictions > 0  # the starved workload must evict
        assert cell.violations == 0
        assert set(cell.profile) >= {"compute", "io", "overhead"}
        assert cell.profile["compute"] > 0

    def test_cluster_size_override(self):
        exp = Experimentation()
        small = exp.run_cell("filter_min", "bfs", workers=2)
        default = exp.run_cell("filter_min", "bfs")
        assert small.workers == 2
        assert default.workers == 4
        assert small.completion_time != default.completion_time

    def test_memory_policy_dimension_changes_behaviour_not_outputs(self):
        exp = Experimentation(memories=["amm", "lru"])
        amm = exp.run_cell("starved_explore", "bas", memory="amm")
        lru = exp.run_cell("starved_explore", "bas", memory="lru")
        # both validator-clean; AMM must not be worse on the starved run
        assert amm.violations == 0 and lru.violations == 0
        assert amm.completion_time <= lru.completion_time

    def test_run_produces_deterministic_report(self):
        exp = Experimentation(
            schedulers=["bfs", "heft"], workloads=["filter_min"]
        )
        a = exp.run(progress=None)
        b = exp.run(progress=None)
        assert a.to_json() == b.to_json()

    def test_live_mode_monitors_every_cell(self):
        exp = Experimentation(
            schedulers=["bas", "heft"], workloads=["filter_min"], live=True
        )
        report = exp.run(progress=None)
        for cell in report.cells:
            assert cell.live_alerts == 0
            assert cell.live_eta_error == 0.0
            assert cell.live_stream_identical is True

    def test_live_off_leaves_cells_unmonitored(self):
        exp = Experimentation(schedulers=["bas"], workloads=["filter_min"])
        cell = exp.run_cell("filter_min", "bas")
        assert cell.live_eta_error is None
        assert cell.live_stream_identical is None


class TestLabReport:
    def _report(self):
        exp = Experimentation(
            schedulers=["bfs", "bas", "heft"], workloads=["filter_min"]
        )
        return exp.run()

    def test_render_table_lists_every_cell_and_best(self):
        report = self._report()
        text = report.render_table()
        for scheduler in ("bfs", "bas", "heft"):
            assert scheduler in text
        assert "best on filter_min" in text

    def test_best_policy_minimises_completion_time(self):
        report = self._report()
        best = report.best_policy("filter_min")
        times = {c.scheduler: c.completion_time for c in report.cells}
        assert times[best] == min(times.values())

    def test_save_writes_json_artifact(self, tmp_path):
        report = self._report()
        path = tmp_path / "lab.json"
        report.save(str(path))
        data = json.loads(path.read_text())
        assert len(data["cells"]) == 3
        assert data["cells"][0]["workload"] == "filter_min"

    def test_baseline_scenarios_keyed_for_gate(self):
        report = self._report()
        scenarios = report.baseline_scenarios()
        assert "lab_filter_min_heft" in scenarios
        assert all(v > 0 for v in scenarios.values())

    def test_gate_scenarios_match_lab_measurements(self):
        """The prof gate's pinned lab scenarios equal a fresh lab run."""
        from repro.prof.gate import SCENARIOS

        exp = Experimentation()
        for scenario, workload, scheduler in [
            ("lab_random", "filter_min", "random"),
            ("lab_wsteal", "starved_explore", "wsteal"),
        ]:
            cell = exp.run_cell(workload, scheduler)
            assert SCENARIOS[scenario]() == cell.completion_time

    def test_empty_report_best_policy(self):
        assert LabReport().best_policy("filter_min") is None
