"""What-if repricing (``--what-if compute=0.5x,alpha=2x``)."""

import pytest

from repro import Cluster, GB, run_mdf
from repro.prof import (
    attribution,
    parse_factors,
    profile_from_result,
    render_whatif,
    reprice,
)

from ..conftest import build_filter_mdf


@pytest.fixture(scope="module")
def profile():
    cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
    result = run_mdf(build_filter_mdf(), cluster, scheduler="bas", memory="amm")
    return profile_from_result(result)


class TestParseFactors:
    def test_plain_and_x_suffixed_values(self):
        assert parse_factors("compute=0.5x,alpha=2x") == {
            "compute": 0.5,
            "alpha": 2.0,
        }
        assert parse_factors("io=0.25") == {"io": 0.25}

    def test_whitespace_tolerated(self):
        assert parse_factors(" compute = 2x , io = 1 ") == {"compute": 2.0, "io": 1.0}

    @pytest.mark.parametrize(
        "spec",
        ["bogus=2x", "compute", "compute=fast", "compute=-1", ""],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_factors(spec)


class TestReprice:
    def test_identity_factors_keep_the_makespan(self, profile):
        factors = {"compute": 1.0, "io": 1.0, "alpha": 1.0}
        result = reprice(profile, factors)
        assert result.projected_makespan == pytest.approx(
            result.original_makespan, rel=1e-12
        )
        assert result.speedup == pytest.approx(1.0)

    def test_zero_compute_removes_exactly_the_compute_total(self, profile):
        totals = attribution(profile)
        result = reprice(profile, {"compute": 0.0})
        assert result.original_makespan - result.projected_makespan == pytest.approx(
            totals["compute"], rel=1e-9
        )
        assert result.projected["compute"] == 0.0

    def test_alpha_scales_io_and_reload_together(self, profile):
        """alpha is the paper's knob for storage-vs-recompute pricing: it
        is an alias for scaling io and reload jointly."""
        totals = attribution(profile)
        result = reprice(profile, {"alpha": 2.0})
        grown = result.projected_makespan - result.original_makespan
        assert grown == pytest.approx(totals["io"] + totals["reload"], rel=1e-9)

    def test_explicit_key_wins_over_alpha(self, profile):
        totals = attribution(profile)
        result = reprice(profile, {"alpha": 2.0, "io": 1.0})
        grown = result.projected_makespan - result.original_makespan
        assert grown == pytest.approx(totals["reload"], rel=1e-9, abs=1e-12)

    def test_speedup_reported_for_faster_compute(self, profile):
        result = reprice(profile, {"compute": 0.5})
        assert result.speedup > 1.0
        assert result.projected_makespan < result.original_makespan


class TestRender:
    def test_render_mentions_factors_and_makespans(self, profile):
        result = reprice(profile, {"compute": 0.5})
        text = render_whatif(result)
        assert "compute" in text
        assert f"{result.projected_makespan:.6f}" in text
        assert "speedup" in text.lower() or "x" in text
