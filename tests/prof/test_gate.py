"""CI perf-regression gate (``python -m repro.prof --gate``).

The simulator is deterministic, so the gate compares exact simulated
completion times against the committed baselines.  These tests prove the
three properties a gate must have: it passes on an unchanged engine, it
demonstrably fails on an injected slowdown, and ``--update`` writes a
baseline file the next run accepts.
"""

import json

import pytest

from repro.prof.__main__ import main
from repro.prof.gate import (
    DEFAULT_TOLERANCE,
    SCENARIOS,
    GateRow,
    measure,
    run_gate,
)

BASELINES = "benchmarks/baselines.json"


class TestGateRow:
    def test_delta_is_relative(self):
        row = GateRow(scenario="s", baseline=2.0, measured=2.2)
        assert row.delta == pytest.approx(0.1)

    def test_delta_handles_zero_baseline(self):
        assert GateRow(scenario="s", baseline=0.0, measured=1.0).delta == float("inf")
        assert GateRow(scenario="s", baseline=0.0, measured=0.0).delta == 0.0


class TestMeasure:
    def test_covers_every_scenario_deterministically(self):
        first = measure()
        second = measure()
        assert set(first) == set(SCENARIOS)
        assert first == second

    def test_slowdown_scales_measurements(self):
        clean = measure()
        slow = measure(slowdown=1.1)
        for name, seconds in clean.items():
            assert slow[name] == pytest.approx(1.1 * seconds, rel=1e-12)


class TestRunGate:
    def test_update_writes_baselines(self, tmp_path):
        path = tmp_path / "baselines.json"
        report = run_gate(path, update=True)
        assert report.updated and report.ok
        with open(path) as fh:
            payload = json.load(fh)
        assert set(payload["scenarios"]) == set(SCENARIOS)
        assert payload["tolerance"] == DEFAULT_TOLERANCE

    def test_clean_run_passes_against_fresh_baselines(self, tmp_path):
        path = tmp_path / "baselines.json"
        run_gate(path, update=True)
        report = run_gate(path)
        assert report.ok and not report.failures
        assert "gate PASSED" in report.render()

    def test_injected_slowdown_fails_every_scenario(self, tmp_path):
        """The gate must be demonstrably capable of failing: a simulated
        10% regression trips the default 5% tolerance on all scenarios."""
        path = tmp_path / "baselines.json"
        run_gate(path, update=True)
        report = run_gate(path, slowdown=1.1)
        assert not report.ok
        assert len(report.failures) == len(SCENARIOS)
        assert "gate FAILED" in report.render()

    def test_tolerance_wide_enough_absorbs_the_slowdown(self, tmp_path):
        path = tmp_path / "baselines.json"
        run_gate(path, update=True)
        assert run_gate(path, tolerance=0.5, slowdown=1.1).ok

    def test_missing_scenario_is_an_error(self, tmp_path):
        path = tmp_path / "baselines.json"
        run_gate(path, update=True)
        with open(path) as fh:
            payload = json.load(fh)
        del payload["scenarios"]["quickstart"]
        path.write_text(json.dumps(payload))
        with pytest.raises(KeyError, match="--update"):
            run_gate(path)


class TestCommittedBaselines:
    def test_repo_baselines_match_the_current_engine(self):
        """The committed baselines must agree with the engine as built —
        this is the very check CI runs."""
        report = run_gate(BASELINES)
        assert report.ok, report.render()


class TestCli:
    def test_gate_mode_exit_codes(self, tmp_path, capsys):
        path = str(tmp_path / "baselines.json")
        assert main(["--gate", path, "--update"]) == 0
        assert main(["--gate", path]) == 0
        assert "gate PASSED" in capsys.readouterr().out
        assert main(["--gate", path, "--inject-slowdown", "1.1"]) == 1
        assert "gate FAILED" in capsys.readouterr().out
