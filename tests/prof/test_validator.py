"""Broken-emitter detection: ``check_profile_conserved`` catches traces
whose span events no longer tile the makespan.

Each test takes a healthy golden trace, breaks it the way a buggy
emitter would (drop a completion event, lose a category, inflate a
per-node share, log past the final span), and asserts the validator
reports the damage.  The untouched goldens must keep passing — the
validator is part of the default ``validate_trace`` suite.
"""

import pytest

from repro.trace import Trace, check_profile_conserved, validate_trace
from repro.trace.validate import ALL_CHECKS

from ..golden.regenerate import GOLDEN_FILES


def load_golden(name="explore_choose"):
    trace = Trace.load_jsonl(GOLDEN_FILES[name])
    trace.strict = False  # let tests mutate payloads the emitter never would
    return trace


def span_events(trace):
    return [
        e
        for e in trace.events
        if e.kind == "span"
        or (e.kind == "stage_completed" and "io" in e.data and "per_node_io" in e.data)
    ]


def messages(violations):
    return " | ".join(v.message for v in violations)


class TestHealthyTraces:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FILES))
    def test_goldens_pass(self, name):
        assert check_profile_conserved(load_golden(name)) == []

    @pytest.mark.parametrize("name", sorted(GOLDEN_FILES))
    def test_goldens_pass_full_suite(self, name):
        assert validate_trace(load_golden(name)) == []

    def test_registered_in_all_checks(self):
        assert ALL_CHECKS["profile_conserved"] is check_profile_conserved


class TestBrokenEmitters:
    def test_dropped_end_event_leaves_a_gap(self):
        """An emitter that loses a stage_completed leaves the interval it
        covered unattributed — the validator must flag the gap."""
        trace = load_golden()
        victims = span_events(trace)
        victim = victims[len(victims) // 2]
        trace.events.remove(victim)
        violations = check_profile_conserved(trace)
        assert violations, "dropped span event went undetected"
        assert "gap" in messages(violations)

    def test_corrupted_component_breaks_conservation(self):
        trace = load_golden()
        victim = next(e for e in span_events(trace) if e.data["io"] > 0.0)
        victim.data["io"] *= 0.5  # half the io seconds silently vanish
        violations = check_profile_conserved(trace)
        assert violations
        assert "unattributed" in messages(violations)

    def test_inflated_per_node_share_exceeds_wall(self):
        trace = load_golden()
        victim = next(e for e in span_events(trace) if e.data["per_node_io"])
        node = next(iter(victim.data["per_node_io"]))
        wall = victim.data["finished"] - victim.data["started"]
        victim.data["per_node_io"][node] = 2.0 * wall + 1.0
        violations = check_profile_conserved(trace)
        assert violations
        assert "exceeds the wall" in messages(violations)

    def test_overlapping_spans_are_flagged(self):
        trace = load_golden()
        victims = span_events(trace)
        victim = victims[len(victims) // 2]
        # rewind the span's start into its predecessor: double-counted time
        victim.data["started"] -= 0.01
        victim.data["io"] += 0.01  # keep the span internally conserved
        violations = check_profile_conserved(trace)
        assert violations
        assert "overlaps" in messages(violations)

    def test_event_past_final_span_is_flagged(self):
        from repro.trace import TraceEvent

        trace = load_golden()
        final = span_events(trace)[-1]
        trace.events.append(
            TraceEvent(
                len(trace.events),
                final.data["finished"] + 1.0,
                "dataset_discarded",
                {"dataset": "d:straggler"},
            )
        )
        violations = check_profile_conserved(trace)
        assert violations
        assert "past the" in messages(violations)

    def test_breakage_fails_validate_trace_too(self):
        """The damage surfaces through the aggregate suite, not only the
        dedicated checker (this is what --validate runs)."""
        trace = load_golden()
        victims = span_events(trace)
        trace.events.remove(victims[len(victims) // 2])
        names = {v.check for v in validate_trace(trace)}
        assert "profile_conserved" in names
