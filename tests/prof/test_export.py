"""Profile exporters: speedscope, Chrome trace, and text renderers."""

import json

import pytest

from repro.prof import (
    build_profile,
    critical_path,
    render_attribution,
    render_branches,
    render_critical_path,
    render_per_node,
    save_chrome_spans,
    save_speedscope,
    to_chrome_spans,
    to_speedscope,
)
from repro.trace import Trace

from ..golden.regenerate import GOLDEN_FILES


@pytest.fixture(scope="module")
def profile():
    return build_profile(Trace.load_jsonl(GOLDEN_FILES["explore_choose"]))


class TestSpeedscope:
    def test_document_shape(self, profile):
        doc = to_speedscope(profile, name="golden")
        assert "speedscope" in doc["$schema"]
        assert doc["profiles"][0]["type"] == "evented"
        assert doc["profiles"][0]["unit"] == "seconds"
        assert doc["profiles"][0]["startValue"] == profile.start
        assert doc["profiles"][0]["endValue"] == pytest.approx(
            profile.completion_time
        )

    def test_events_balance_and_stay_in_range(self, profile):
        prof = to_speedscope(profile, name="golden")["profiles"][0]
        depth, last_at = 0, prof["startValue"]
        for event in prof["events"]:
            assert event["type"] in ("O", "C")
            assert event["at"] >= last_at - 1e-12  # monotone timestamps
            last_at = event["at"]
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0  # every opened frame is closed
        assert last_at <= prof["endValue"] + 1e-12

    def test_frames_cover_spans_and_categories(self, profile):
        doc = to_speedscope(profile, name="golden")
        names = {f["name"] for f in doc["shared"]["frames"]}
        assert any(name.startswith("stage") for name in names)
        assert {"io", "reload", "compute"} & names

    def test_save_writes_valid_json(self, profile, tmp_path):
        path = tmp_path / "p.speedscope.json"
        save_speedscope(profile, path, name="golden")
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded["profiles"][0]["events"]


class TestChrome:
    def test_one_complete_event_per_span(self, profile):
        events = to_chrome_spans(profile)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(profile.spans)
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and all(e["name"] == "thread_name" for e in meta)

    def test_args_carry_the_attribution(self, profile):
        events = to_chrome_spans(profile)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        for event, span in zip(complete, profile.spans):
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            assert sum(event["args"].values()) == pytest.approx(
                span.duration, rel=1e-9, abs=1e-12
            )

    def test_save_writes_valid_json(self, profile, tmp_path):
        path = tmp_path / "chrome.json"
        save_chrome_spans(profile, path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert "traceEvents" in loaded


class TestTextRenderers:
    def test_attribution_table(self, profile):
        text = render_attribution(profile)
        assert "makespan attribution" in text
        for category in ("io", "reload", "compute"):
            assert category in text
        assert "total" in text

    def test_per_node_table_lists_workers(self, profile):
        text = render_per_node(profile)
        assert "worker-0" in text
        assert "idle" in text

    def test_branch_table_includes_exploration_cost(self, profile):
        text = render_branches(profile)
        assert "pruned" in text
        assert "exploration cost" in text

    def test_critical_path_footer_states_the_invariant(self, profile):
        path = critical_path(profile)
        text = render_critical_path(path, profile.makespan)
        assert "critical-path length" in text
        assert "== completion time" in text
