"""Span reconstruction and time attribution (repro.prof tentpole).

The conservation claims under test:

* spans reconstructed from a trace tile ``[0, completion_time]`` — they
  are contiguous, never overlap, and per-node shares stay within walls;
* makespan attribution sums to the completion time to 1e-9 on every
  golden trace and on fresh runs, including eviction-heavy, failure and
  checkpointed runs;
* the critical path's segment lengths sum to exactly the completion time;
* traces recorded before the profile fields existed pass vacuously.
"""

import pytest

from repro import Cluster, FailureInjector, GB, MB, run_mdf
from repro.cluster.fault import CheckpointConfig
from repro.engine import EngineConfig
from repro.prof import (
    CATEGORIES,
    attribution,
    branch_attribution,
    build_profile,
    critical_path,
    critical_path_length,
    exploration_cost,
    per_node_attribution,
    profile_from_result,
)
from repro.trace import Trace

from ..conftest import build_filter_mdf, build_nested_mdf
from ..golden.regenerate import GOLDEN_FILES

REL_TOL = 1e-9


def assert_conserved(profile, completion_time):
    totals = attribution(profile)
    tol = REL_TOL * max(1.0, completion_time)
    assert abs(sum(totals.values()) - completion_time) <= tol
    assert abs(critical_path_length(profile) - completion_time) <= tol


class TestGoldenTraces:
    @pytest.mark.parametrize("name", sorted(GOLDEN_FILES))
    def test_spans_tile_the_makespan(self, name):
        profile = build_profile(Trace.load_jsonl(GOLDEN_FILES[name]))
        assert profile.has_spans
        assert profile.start == 0.0
        for prev, span in zip(profile.spans, profile.spans[1:]):
            assert span.started == pytest.approx(prev.finished, abs=1e-9)
            assert span.finished >= span.started
        assert_conserved(profile, profile.completion_time)

    @pytest.mark.parametrize("name", sorted(GOLDEN_FILES))
    def test_per_node_shares_within_walls(self, name):
        profile = build_profile(Trace.load_jsonl(GOLDEN_FILES[name]))
        for span in profile.spans:
            for node in set(span.per_node_io) | set(span.per_node_compute):
                share = span.per_node_io.get(node, 0.0) + span.per_node_compute.get(
                    node, 0.0
                )
                assert share <= span.duration + 1e-9

    @pytest.mark.parametrize("name", sorted(GOLDEN_FILES))
    def test_per_node_attribution_rows_sum_to_makespan(self, name):
        profile = build_profile(Trace.load_jsonl(GOLDEN_FILES[name]))
        per_node = per_node_attribution(profile)
        assert per_node  # at least one worker appears
        for node, slots in per_node.items():
            assert slots["idle"] >= 0.0
            assert sum(slots.values()) == pytest.approx(
                profile.makespan, rel=1e-9, abs=1e-9
            )

    def test_starved_golden_attributes_reload(self):
        """The explore_choose golden runs on a starved cluster: eviction
        spills force reloads, which must appear as the 'reload' category."""
        profile = build_profile(Trace.load_jsonl(GOLDEN_FILES["explore_choose"]))
        totals = attribution(profile)
        assert totals["reload"] > 0.0


class TestFreshRuns:
    def test_roomy_run_conserved(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster, memory="amm")
        assert_conserved(profile_from_result(result), result.completion_time)

    def test_nested_starved_run_conserved(self, tight_cluster):
        result = run_mdf(build_nested_mdf(), tight_cluster, memory="amm")
        assert_conserved(profile_from_result(result), result.completion_time)

    @pytest.mark.parametrize("stage_index", [1, 2, 4])
    def test_failure_run_conserved_with_recovery_category(self, stage_index):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        config = EngineConfig(
            failures=FailureInjector.at_stages([(stage_index, "worker-0")])
        )
        result = run_mdf(build_filter_mdf(), cluster, memory="amm", config=config)
        profile = profile_from_result(result)
        assert_conserved(profile, result.completion_time)
        totals = attribution(profile)
        assert totals["recovery"] > 0.0
        # §5 exactness bridges to the profiler: the recovery category is
        # exactly what the recovery_seconds histogram charged
        assert totals["recovery"] == pytest.approx(
            cluster.obs.value("recovery_seconds"), rel=1e-9
        )

    def test_checkpointed_failure_run_conserved(self):
        cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
        config = EngineConfig(
            failures=FailureInjector.at_stages([(4, "worker-0")]),
            checkpointing=CheckpointConfig(interval_stages=1),
        )
        result = run_mdf(build_filter_mdf(), cluster, memory="amm", config=config)
        assert_conserved(profile_from_result(result), result.completion_time)


class TestCriticalPath:
    def test_segments_cover_every_span_category(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster, memory="amm")
        profile = profile_from_result(result)
        path = critical_path(profile)
        assert sum(s.seconds for s in path) == pytest.approx(
            result.completion_time, rel=1e-9
        )
        assert all(s.seconds > 0.0 for s in path)
        assert all(s.category in CATEGORIES for s in path)
        # io/compute segments are pinned to the gating worker
        assert any(s.node for s in path)

    def test_segments_are_time_ordered_and_contiguous(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster, memory="amm")
        path = critical_path(profile_from_result(result))
        for prev, seg in zip(path, path[1:]):
            assert seg.started == pytest.approx(
                prev.started + prev.seconds, abs=1e-9
            )


class TestBranchAttribution:
    def test_fates_and_exploration_cost(self):
        """The starved golden prunes tail branches: kept + discarded carry
        time, pruned branches cost exactly nothing (the paper's win)."""
        profile = build_profile(Trace.load_jsonl(GOLDEN_FILES["explore_choose"]))
        costs = {c.branch: c for c in branch_attribution(profile)}
        fates = {c.fate for c in costs.values()}
        assert {"kept", "discarded", "pruned", "main"} <= fates
        for cost in costs.values():
            if cost.fate == "pruned":
                assert cost.seconds == 0.0
        explo = exploration_cost(profile)
        assert explo.sunk_seconds > 0.0
        assert 0.0 < explo.sunk_share < 1.0
        assert explo.pruned_branches == 3

    def test_branch_times_sum_to_makespan(self, small_cluster):
        result = run_mdf(build_filter_mdf(), small_cluster, memory="amm")
        profile = profile_from_result(result)
        total = sum(c.seconds for c in branch_attribution(profile))
        assert total == pytest.approx(result.completion_time, rel=1e-9)


class TestPreProfileTraces:
    def test_trace_without_profile_fields_is_vacuous(self):
        """A trace stripped of every span event (as recorded before the
        profiler existed) reconstructs to an empty, passing profile."""
        trace = Trace.load_jsonl(GOLDEN_FILES["quickstart"])
        stripped = Trace()
        stripped.strict = False
        for event in trace:
            if event.kind in ("stage_completed", "span"):
                continue
            stripped.events.append(event)
        profile = build_profile(stripped)
        assert not profile.has_spans
        assert profile.makespan == 0.0
        assert sum(attribution(profile).values()) == 0.0
        assert critical_path(profile) == []
