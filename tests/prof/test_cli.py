"""``python -m repro.prof`` trace mode: flags, outputs, artifacts."""

import json

import pytest

from repro.prof.__main__ import main, make_parser

from ..golden.regenerate import GOLDEN_FILES

GOLDEN = str(GOLDEN_FILES["explore_choose"])


class TestParser:
    def test_defaults(self):
        args = make_parser().parse_args([GOLDEN])
        assert args.trace == GOLDEN
        assert not args.critical_path and not args.by_branch
        assert args.what_if is None and args.gate is None

    def test_trace_is_optional_only_for_gate_mode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        assert "trace" in capsys.readouterr().err


class TestTraceMode:
    def test_plain_run_prints_attribution(self, capsys):
        assert main([GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "makespan attribution" in out
        assert "reload" in out

    def test_critical_path_flag(self, capsys):
        assert main([GOLDEN, "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical-path length" in out
        assert "== completion time" in out

    def test_by_branch_flag(self, capsys):
        assert main([GOLDEN, "--by-branch"]) == 0
        out = capsys.readouterr().out
        assert "exploration cost" in out
        assert "pruned" in out

    def test_per_node_flag(self, capsys):
        assert main([GOLDEN, "--per-node"]) == 0
        assert "idle" in capsys.readouterr().out

    def test_what_if_flag(self, capsys):
        assert main([GOLDEN, "--what-if", "compute=0.5x,alpha=2x"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out and "alpha" in out

    def test_artifact_flags_write_files(self, tmp_path, capsys):
        speedscope = tmp_path / "p.speedscope.json"
        chrome = tmp_path / "p.chrome.json"
        assert (
            main([GOLDEN, "--speedscope", str(speedscope), "--chrome", str(chrome)])
            == 0
        )
        with open(speedscope) as fh:
            assert json.load(fh)["profiles"]
        with open(chrome) as fh:
            assert json.load(fh)["traceEvents"]
