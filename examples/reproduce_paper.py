"""Regenerate every table and figure of the paper's evaluation (§6).

Runs all experiments of ``repro.bench`` at laptop scale, prints the
paper-style tables, and reports each figure's shape checks (who wins, by
roughly what factor — the criteria EXPERIMENTS.md records).

Run:  python examples/reproduce_paper.py                 # all figures
      python examples/reproduce_paper.py fig7 fig9       # a subset
      python examples/reproduce_paper.py --json out.json # machine-readable
"""

import json
import sys
import time

from repro.bench import ALL_FIGURES


def main(argv=None) -> int:
    argv = list(argv or [])
    json_path = None
    if "--json" in argv:
        i = argv.index("--json")
        try:
            json_path = argv[i + 1]
        except IndexError:
            print("--json requires a path")
            return 2
        del argv[i : i + 2]
    names = argv or list(ALL_FIGURES)
    failures = []
    dumped = {}
    total_start = time.time()
    for name in names:
        if name not in ALL_FIGURES:
            print(f"unknown figure {name!r}; options: {', '.join(ALL_FIGURES)}")
            return 2
        start = time.time()
        result = ALL_FIGURES[name]()
        print(result.render())
        print(f"[{name}: {time.time() - start:.1f}s wall]\n")
        dumped[name] = result.as_dict()
        if not result.all_checks_pass:
            failures.append(name)
    print(f"total wall time: {time.time() - total_start:.1f}s")
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(dumped, handle, indent=2, default=str)
        print(f"results written to {json_path}")
    if failures:
        print(f"SHAPE CHECK FAILURES: {failures}")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
