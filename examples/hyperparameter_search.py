"""Hyper-parameter search for a neural classifier (paper §6.1 job 1).

The deep-learning MDF explores eight weight-initialisation strategies,
four learning rates and four momentum values.  Exhaustive exploration
trains |W x R x M| = 128 models; the *early-choose* pattern first explores
the initialisations, keeps the most accurate one, and only then explores
the hyper-parameters — |W| + |R x M| = 24 trainings for (near) the same
final quality, inside a single MDF submission.

Run:  python examples/hyperparameter_search.py
"""

from repro import Cluster, GB, MB
from repro.baselines import run_sequential, seep_mdf
from repro.workloads import (
    MLPTrainer,
    cifar_like,
    deep_learning_combinations,
    deep_learning_job,
    deep_learning_mdf,
)

NOMINAL = 1 * GB


def main() -> None:
    data = cifar_like(n_samples=1200, features=128, seed=3)
    trainer = MLPTrainer(hidden=24, epochs=2, seed=1)
    cluster = Cluster(num_workers=8, mem_per_worker=4 * GB)

    print("training data: 1200 CIFAR-shaped samples, 10 classes\n")

    # exhaustive: all 128 combinations -------------------------------------
    exhaustive = seep_mdf(
        deep_learning_mdf(
            data, mode="exhaustive", trainer=trainer, nominal_bytes=NOMINAL
        ),
        cluster,
    )
    model_ex = exhaustive.output[0]

    # early choose: winners of W feed the R x M exploration ------------------
    early = seep_mdf(
        deep_learning_mdf(
            data, mode="early_choose", trainer=trainer, nominal_bytes=NOMINAL
        ),
        cluster,
    )
    model_early = early.output[0]

    # what a user without MDFs would do: submit 128 separate jobs -----------
    jobs = [
        deep_learning_job(data, p, trainer=trainer, nominal_bytes=NOMINAL)
        for p in deep_learning_combinations("exhaustive")
    ]
    sequential = run_sequential(jobs, cluster)

    print(f"{'sequential (128 jobs)':24s} {sequential.completion_time:9.1f} s")
    print(
        f"{'MDF exhaustive':24s} {exhaustive.completion_time:9.1f} s   "
        f"acc={model_ex.accuracy:.3f}  init={model_ex.init}  "
        f"lr={model_ex.learning_rate}  m={model_ex.momentum}"
    )
    print(
        f"{'MDF early-choose':24s} {early.completion_time:9.1f} s   "
        f"acc={model_early.accuracy:.3f}  init={model_early.init}  "
        f"lr={model_early.learning_rate}  m={model_early.momentum}"
    )
    saved = 100 * (1 - early.completion_time / exhaustive.completion_time)
    print(f"\nearly-choose saves {saved:.0f}% of the exhaustive MDF's time")
    print(
        f"accuracy gap vs exhaustive: "
        f"{model_ex.accuracy - model_early.accuracy:+.3f}"
    )


if __name__ == "__main__":
    main()
