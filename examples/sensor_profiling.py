"""Sensor-data profiling with kernel density estimation (paper §2.2, Fig. 3).

The paper's running example: model regular oil-well operation by (1)
removing outliers from raw sensor readings and (2) estimating the reading
distribution with a KDE.  Both steps have explorables — the outlier
threshold, the kernel function, the bandwidth.

This example runs two MDF variants:

* the *flat* profiling MDF (Fig. 3b): explore pre-processing × kernel ×
  bandwidth, keep the estimate with the best hold-out log-likelihood;
* the *scoped* MDF (Fig. 3c / Example 3.5): an early choose closes the
  outlier scope as soon as a threshold retains enough data, pruning the
  remaining thresholds before any KDE runs.

Run:  python examples/sensor_profiling.py
"""

from repro import Cluster, GB, MB
from repro.engine import run_mdf
from repro.workloads import kde_mdf, kde_scoped_mdf, normal_values


def main() -> None:
    readings = normal_values(20_000, mu=100.0, sigma=8.0, seed=42)
    cluster = Cluster(num_workers=8, mem_per_worker=2 * GB)

    # ---- flat exploration (Fig. 3b style) ---------------------------------
    mdf = kde_mdf(
        readings,
        preprocess_methods=("normalize", "standardize"),
        kernels=("gaussian", "top-hat", "biweight", "triweight"),
        bandwidths=(0.1, 0.2, 0.3),
        nominal_bytes=1 * GB,
    )
    job = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
    winner = job.output[0]
    print("== flat profiling MDF (2 x 4 x 3 = 24 configurations) ==")
    print(f"completion time : {job.completion_time:.2f} simulated s")
    print(f"winning estimate: kernel={winner.kernel}  bandwidth={winner.bandwidth}")
    print(f"fit sample size : {winner.sample_size}")
    for name, decision in job.decisions.items():
        print(f"  {name}: kept {decision.kept}")

    # ---- scoped exploration (Fig. 3c / Example 3.5) -----------------------
    scoped = kde_scoped_mdf(
        readings,
        outlier_thresholds=(1.5, 2.0, 2.5, 3.0),
        kernels=("gaussian", "top-hat"),
        nominal_bytes=1 * GB,
        min_surviving_ratio=0.8,
    )
    job2 = run_mdf(scoped, cluster, scheduler="bas", memory="amm")
    outlier_decision = job2.decision_for("choose-outlier")
    print("\n== scoped MDF: early choose on the outlier threshold ==")
    print(f"completion time   : {job2.completion_time:.2f} simulated s")
    print(f"thresholds scored : {len(outlier_decision.scores)}")
    print(f"thresholds pruned : {len(outlier_decision.pruned)} (never executed)")
    print(f"kept threshold    : {outlier_decision.kept}")
    final = job2.output[0]
    print(f"final estimate    : kernel={final.kernel}  bandwidth={final.bandwidth}")


if __name__ == "__main__":
    main()
