"""Sensor fusion: joining two sensor streams inside an exploratory MDF.

Oil-well monitoring rarely relies on a single sensor.  This example fuses
a pressure trace with a flow-rate trace: each explored masking
configuration cleans the pressure stream, joins the surviving points
against the flow-rate readings at the same positions, and detects events
on the fused signal.  The choose keeps the configuration that retains the
most fused points while still passing the quality threshold.

Demonstrates the two-input ``join`` operator inside explore branches.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    TopK,
    run_mdf,
)
from repro.core.builder import Pipe
from repro.workloads import mask_series, oil_well_trace


def fuse(masked_rows, flow_values):
    """Join masked pressure rows (index, value) with flow readings."""
    rows = np.asarray(masked_rows, dtype=np.float64)
    flow = np.asarray(flow_values, dtype=np.float64)
    if rows.size == 0:
        return np.empty((0, 3))
    idx = rows[:, 0].astype(np.int64)
    idx = idx[idx < flow.size]
    return np.column_stack([idx, rows[: idx.size, 1], flow[idx]])


def main() -> None:
    pressure = oil_well_trace(30_000, seed=5)
    flow = oil_well_trace(30_000, seed=6) * 0.4 + 20.0
    cluster = Cluster(num_workers=8, mem_per_worker=2 * GB)

    builder = MDFBuilder("sensor-fusion")
    pressure_src = builder.read_data(
        pressure, name="pressure", nominal_bytes=256 * MB
    )
    flow_src = builder.read_data(flow, name="flow", nominal_bytes=256 * MB)

    def branch(pipe: Pipe, p) -> Pipe:
        masked = pipe.transform(
            mask_series(p["w"], p["t"]),
            name=f"mask-w{p['w']}-t{p['t']}",
            selectivity=0.7,
            cost_factor=0.3,
        )
        return masked.join(
            Pipe(builder, flow_src.op),
            fuse,
            name=f"fuse-w{p['w']}-t{p['t']}",
            selectivity=1.2,
        )

    fused = pressure_src.explore(
        {"w": [3, 5, 7], "t": [1.01, 1.05, 1.2]}, branch, name="explore-mask"
    ).choose(
        CallableEvaluator(lambda rows: float(len(rows)), name="fused-points"),
        TopK(1),
        name="choose-fusion",
    )
    fused.write(name="out")
    mdf = builder.build()

    job = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
    decision = job.decision_for("choose-fusion")
    fused_rows = np.asarray(job.output)
    print(f"explored {len(decision.scores)} masking configurations")
    print(f"winner: {decision.kept[0]} with {int(max(decision.scores.values()))} fused points")
    print(f"fused table shape: {fused_rows.shape} (index, pressure, flow)")
    print(f"completion: {job.completion_time:.2f} simulated s")
    print()
    print(job.summary())


if __name__ == "__main__":
    main()
