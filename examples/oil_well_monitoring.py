"""Time-series event detection over oil-well sensor data (paper §6.1 job 2).

Pipeline: mask volatile regions → mark discrete events → detect event
sequences.  The masking window and threshold are explorables.  The example
contrasts four ways of running the 64-configuration exploration:

* sequential jobs (one per configuration, cold caches),
* 8 co-scheduled jobs (shared cluster, split memory),
* the MDF with the default threshold choose, and
* the MDF with a non-exhaustive first-4 choose plus sorted scheduling
  hints, which stops exploring as soon as four acceptable maskings exist.

Run:  python examples/oil_well_monitoring.py
"""

import numpy as np

from repro import Cluster, GB, KThreshold, MB, RatioEvaluator
from repro.baselines import run_parallel, run_sequential, seep_mdf
from repro.engine import EngineConfig, SortedHint, run_mdf
from repro.workloads import (
    granularity_grid,
    oil_well_trace,
    time_series_combinations,
    time_series_job,
    time_series_mdf,
)

NOMINAL = 256 * MB


def main() -> None:
    trace = oil_well_trace(50_000, seed=7)
    grid = granularity_grid(64)  # 8 windows x 8 thresholds
    cluster = Cluster(num_workers=8, mem_per_worker=2 * GB)

    print(f"trace: {trace.size} measurements, exploring {grid.num_branches} "
          f"masking configurations\n")

    # baselines: one concrete job per configuration -------------------------
    jobs = [
        time_series_job(trace, p, grid, nominal_bytes=NOMINAL)
        for p in time_series_combinations(grid)
    ]
    seq = run_sequential(jobs, cluster)
    par = run_parallel(jobs, cluster, k=8)

    # the MDF: one submission ------------------------------------------------
    mdf = time_series_mdf(trace, grid, nominal_bytes=NOMINAL)
    full = seep_mdf(mdf, cluster)

    # the MDF with a first-4 choose and sorted hints -------------------------
    quick_mdf = time_series_mdf(
        trace,
        grid,
        selection=KThreshold(4, 0.8, above=True),
        evaluator=RatioEvaluator(trace.size, monotone=True, name="surviving"),
        nominal_bytes=NOMINAL,
    )
    quick = run_mdf(
        quick_mdf,
        cluster,
        scheduler="bas",
        memory="amm",
        config=EngineConfig(hint=SortedHint()),
    )

    print(f"{'sequential (64 jobs)':28s} {seq.completion_time:8.2f} s")
    print(f"{'8-parallel':28s} {par.completion_time:8.2f} s")
    print(f"{'MDF (threshold choose)':28s} {full.completion_time:8.2f} s")
    print(f"{'MDF (first-4, sorted hints)':28s} {quick.completion_time:8.2f} s")

    decision = quick.decision_for("choose-mask")
    print(f"\nfirst-4 run: scored {len(decision.scores)} branches, "
          f"pruned {len(decision.pruned)} without executing them")
    detected = np.asarray(quick.output)
    print(f"detected {detected.shape[0]} event sequences")
    if detected.shape[0]:
        start, end, count = detected[0]
        print(f"first sequence: positions {start:.0f}-{end:.0f} ({count:.0f} events)")


if __name__ == "__main__":
    main()
