"""Static cost planning: size the cluster before submitting an MDF.

§4.1 observes that a schedule's true cost is only known in retrospect —
but the MDF's structure plus the nominal size model admit useful *bounds*
computed before anything runs: an all-memory optimistic bound, an
all-disk pessimistic bound, and the peak working set.  This example sizes
worker memory for the synthetic nested job and then checks the real run
lands inside the predicted bracket.

Run:  python examples/cost_planning.py
"""

from repro import Cluster, GB, run_mdf
from repro.engine import EngineConfig, estimate_mdf
from repro.workloads import string_int_pairs, synthetic_mdf


def main() -> None:
    pairs = string_int_pairs(2_000)
    nominal = 8 * GB
    workers = 8
    mdf = synthetic_mdf(pairs, b1=4, b2=4, nominal_bytes=nominal)

    estimate = estimate_mdf(mdf, workers=workers)
    print("== static estimate (before running anything) ==")
    print(f"stages           : {estimate.num_stages}")
    print(f"branches         : {estimate.num_branches}")
    print(f"total compute    : {estimate.total_compute_units / GB:.1f} GB-units")
    print(f"peak working set : {estimate.peak_live_bytes / GB:.1f} GB")
    print(f"optimistic bound : {estimate.optimistic_seconds:8.1f} s  (all memory)")
    print(f"pessimistic bound: {estimate.pessimistic_seconds:8.1f} s  (all disk)")

    for mem_gb in (2, 4, 8):
        fits = estimate.fits_in_memory(workers, mem_gb * GB)
        print(f"  {workers} x {mem_gb:2d} GB workers: "
              f"{'working set fits' if fits else 'expect spills'}")

    print("\n== actual runs (no pruning, to match the estimate's assumption) ==")
    config = EngineConfig(incremental_choose=False, pruning=False)
    for mem_gb in (2, 8):
        cluster = Cluster(workers, mem_gb * GB)
        job = run_mdf(mdf, cluster, config=config)
        inside = (
            estimate.optimistic_seconds * 0.95
            <= job.completion_time
            <= estimate.pessimistic_seconds * 1.5
        )
        print(
            f"  {mem_gb:2d} GB/worker: {job.completion_time:8.1f} s  "
            f"hit ratio {job.memory_hit_ratio:.2f}  "
            f"({'within bracket' if inside else 'OUTSIDE bracket'})"
        )


if __name__ == "__main__":
    main()
