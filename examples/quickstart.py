"""Quickstart: express an exploratory workflow as one meta-dataflow.

A user is unsure which filter threshold to use.  Instead of submitting one
job per choice and comparing results by hand, the explore/choose pair
turns the whole family into a single job: the engine runs the branches,
scores each with the evaluator, keeps the winner, and discards the rest —
all inside one submission.

Run:  python examples/quickstart.py
"""

from repro import (
    CallableEvaluator,
    Cluster,
    GB,
    MB,
    MDFBuilder,
    Min,
    run_mdf,
)


def build_quickstart_mdf():
    """The quickstart MDF: one explore over three filter thresholds."""
    builder = MDFBuilder("quickstart")
    source = builder.read_data(
        list(range(1000)), name="numbers", nominal_bytes=256 * MB
    )

    result = source.explore(
        # the explorable: three candidate thresholds
        {"threshold": [10, 100, 500]},
        # the branch body: one pipeline per choice
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
        name="explore-threshold",
    ).choose(
        # evaluator: score each branch by its result cardinality;
        # selection: keep the smallest surviving dataset
        CallableEvaluator(len, name="count"),
        Min(),
        name="keep-smallest",
    )
    result.write(name="result")
    return builder.build()


def main() -> None:
    # 1. build the meta-dataflow -------------------------------------------
    mdf = build_quickstart_mdf()

    # 2. execute on a simulated cluster, telemetry + live monitoring on ----
    cluster = Cluster(num_workers=4, mem_per_worker=1 * GB)
    job = run_mdf(
        mdf, cluster, scheduler="bas", memory="amm", telemetry=True, live=True
    )

    # the live monitor watched the run stream by: final progress line
    # (repro.live; mid-run the same line shows partial progress and ETA)
    print(f"live            : {job.live.progress_line()}")

    # 3. inspect the outcome -------------------------------------------------
    decision = job.decision_for("keep-smallest")
    print(f"completion time : {job.completion_time:.3f} simulated seconds")
    print(f"branch scores   : { {b: int(s) for b, s in decision.scores.items()} }")
    print(f"kept branch     : {decision.kept}")
    print(f"result (head)   : {job.output[:10]}")
    print(f"memory hit ratio: {job.memory_hit_ratio:.2f}")
    assert job.output == list(range(10))

    # 4. where did the work go?  per-branch telemetry attribution ------------
    print()
    print(job.telemetry.branch_breakdown())

    # 5. what made the job as long as it was?  critical-path profile ---------
    from repro.prof import critical_path, exploration_cost, profile_from_result, top_segments

    profile = profile_from_result(job)
    print()
    print("top critical-path segments:")
    for segment in top_segments(critical_path(profile), n=3):
        share = 100.0 * segment.seconds / profile.makespan
        print(f"  {segment.seconds:8.4f} s  ({share:4.1f}%)  {segment.description}")
    explo = exploration_cost(profile)
    print(
        f"cost of exploration: {explo.sunk_seconds:.4f} s sunk into discarded "
        f"branches ({100.0 * explo.sunk_share:.1f}% of the makespan), "
        f"{explo.pruned_branches} branch(es) pruned for free"
    )


if __name__ == "__main__":
    main()
