"""Cross validation and iterative computation as MDF patterns (paper §3.2).

Two patterns the paper sketches, implemented on the public API:

* k-fold cross validation — the explore splits the data, each branch
  trains on k−1 folds and validates on the held-out one, and the choose
  keeps the best-scoring fold's model;
* iterative refinement — each branch runs a fixpoint iteration with a
  different configuration; convergence short-circuits the remaining
  (unrolled) steps, and a first-k choose prunes configurations that were
  never needed.

Run:  python examples/cross_validation.py
"""

import numpy as np

from repro import Cluster, GB, KThreshold, MB, run_mdf
from repro.patterns import cross_validation_mdf, iterative_explore_mdf


def cross_validation_demo() -> None:
    print("== k-fold cross validation as an MDF ==")
    rng = np.random.default_rng(3)
    xs = rng.uniform(-1, 1, size=200)
    items = [(float(x), float(3.0 * x + rng.normal(0, 0.2))) for x in xs]

    def train(train_items, val_items):
        tx = np.array([x for x, _ in train_items])
        ty = np.array([y for _, y in train_items])
        slope = float((tx * ty).sum() / (tx * tx).sum())
        vx = np.array([x for x, _ in val_items])
        vy = np.array([y for _, y in val_items])
        return {"slope": slope, "val_error": float(np.mean((slope * vx - vy) ** 2))}

    mdf = cross_validation_mdf(
        items,
        train_fn=train,
        score_fn=lambda m: -m["val_error"],
        k=5,
        nominal_bytes=128 * MB,
    )
    job = run_mdf(mdf, Cluster(4, 1 * GB))
    model = job.output[0]
    decision = job.decision_for("choose-fold")
    print(f"fold scores (−val error): "
          f"{ {b: round(s, 4) for b, s in decision.scores.items()} }")
    print(f"selected fold : {decision.kept[0]}")
    print(f"learned slope : {model['slope']:.3f} (true slope 3.0)")
    print(f"completion    : {job.completion_time:.3f} simulated s\n")


def iterative_demo() -> None:
    print("== iterative refinement with in-loop termination ==")
    # gradient-descent-style contraction x <- x * r; find the step size
    # that converges fastest; a first-1 choose stops exploring as soon as
    # one configuration has converged
    mdf = iterative_explore_mdf(
        initial=100.0,
        configs=[0.95, 0.7, 0.4, 0.2, 0.05],
        step_fn=lambda x, r: x * r,
        converged_fn=lambda x, r: abs(x) < 1e-3,
        diverged_fn=lambda x, r: abs(x) > 1e6,
        max_rounds=200,
        selection=KThreshold(1, 0.0, above=True),
        nominal_bytes=64 * MB,
    )
    job = run_mdf(mdf, Cluster(4, 1 * GB))
    state = job.output[0]
    decision = job.decision_for("choose-config")
    print(f"configs scored : {len(decision.scores)}")
    print(f"configs pruned : {len(decision.pruned)} (never executed)")
    print(f"winning config : {decision.kept[0]} converged in {state.rounds} rounds")
    print(f"completion     : {job.completion_time:.3f} simulated s")


if __name__ == "__main__":
    cross_validation_demo()
    iterative_demo()
