"""repro — a reproduction of *Meta-Dataflows: Efficient Exploratory
Dataflow Jobs* (SIGMOD 2018).

Meta-dataflows (MDFs) express a whole *family* of related dataflow jobs as
one job: an ``explore`` operator fans the dataflow into branches (one per
algorithm/parameter choice) and a ``choose`` operator scores branches and
keeps only the best.  The engine executes MDFs with branch-aware
scheduling (Algorithm 1) and anticipatory memory management (Algorithm 2)
on a simulated cluster, against sequential / k-parallel / Spark-like
baselines.

Quickstart::

    from repro import MDFBuilder, Cluster, run_mdf, GB
    from repro import CallableEvaluator, Min

    b = MDFBuilder("quickstart")
    src = b.read_data(list(range(1000)), nominal_bytes=64 * 1024 * 1024)
    result = src.explore(
        {"threshold": [10, 100, 500]},
        lambda pipe, p: pipe.transform(
            lambda xs, t=p["threshold"]: [x for x in xs if x < t],
            name=f"filter-{p['threshold']}",
        ),
    ).choose(CallableEvaluator(len), Min())
    result.write()
    mdf = b.build()

    cluster = Cluster(num_workers=4, mem_per_worker=GB)
    job = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
    print(job.completion_time, job.output)
"""

from .cluster import (
    AMMPolicy,
    CheckpointConfig,
    ChooseScoreStore,
    Cluster,
    CostModel,
    FailureEvent,
    FailureInjector,
    FailureReport,
    GB,
    LRUPolicy,
    MB,
    Metrics,
    SpeculationConfig,
    StragglerProfile,
    TaskFailureEvent,
    make_policy,
)
from .core import (
    Aggregate,
    CallableEvaluator,
    ChooseOperator,
    CollapsedMDF,
    DataflowGraph,
    Dataset,
    Evaluator,
    ExploreOperator,
    Filter,
    FlatMap,
    GroupBy,
    Identity,
    Interval,
    Join,
    KInterval,
    KThreshold,
    MDF,
    MDFBuilder,
    MDFError,
    Map,
    Max,
    MetadataEvaluator,
    Min,
    Mode,
    Operator,
    ParameterGrid,
    Partition,
    Pipe,
    RatioEvaluator,
    SelectionFunction,
    Sink,
    SizeEvaluator,
    Source,
    StageGraph,
    Threshold,
    TopK,
    Transform,
    plan_optimizations,
)
from .obs import (
    MetricsRegistry,
    Telemetry,
    TelemetryConfig,
    TimelineSampler,
    prometheus_text,
    registry_from_trace,
)
from .patterns import (
    cross_validation_mdf,
    fold_splits,
    iterative_explore_mdf,
)
from .engine import (
    BFSScheduler,
    BranchAwareScheduler,
    CostEstimate,
    EngineConfig,
    JobResult,
    Master,
    ModelBasedHint,
    PriorityHint,
    RandomHint,
    RecoveryManager,
    SortedHint,
    estimate_mdf,
    run_mdf,
)
from .trace import (
    InvariantViolation,
    Trace,
    TraceEvent,
    Violation,
    assert_valid,
    check_amm_ranking,
    check_cache_sound,
    check_depth_first,
    check_no_use_after_discard,
    check_pruning_sound,
    check_recovery_sound,
    set_auto_validate,
    validate_trace,
)
from .cache import (
    CacheStats,
    DiskCacheStore,
    FingerprintError,
    ResultCache,
    operator_fingerprint,
    stage_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "AMMPolicy",
    "Aggregate",
    "BFSScheduler",
    "BranchAwareScheduler",
    "CallableEvaluator",
    "CheckpointConfig",
    "CostEstimate",
    "CacheStats",
    "ChooseOperator",
    "ChooseScoreStore",
    "Cluster",
    "CollapsedMDF",
    "CostModel",
    "DataflowGraph",
    "Dataset",
    "DiskCacheStore",
    "FingerprintError",
    "EngineConfig",
    "Evaluator",
    "ExploreOperator",
    "FailureEvent",
    "FailureInjector",
    "FailureReport",
    "Filter",
    "FlatMap",
    "GB",
    "GroupBy",
    "Identity",
    "Interval",
    "InvariantViolation",
    "JobResult",
    "Join",
    "KInterval",
    "KThreshold",
    "LRUPolicy",
    "MB",
    "MDF",
    "MDFBuilder",
    "MDFError",
    "Map",
    "Master",
    "Max",
    "MetadataEvaluator",
    "Metrics",
    "MetricsRegistry",
    "Min",
    "Mode",
    "ModelBasedHint",
    "Operator",
    "ParameterGrid",
    "Partition",
    "Pipe",
    "PriorityHint",
    "RandomHint",
    "RatioEvaluator",
    "RecoveryManager",
    "ResultCache",
    "SelectionFunction",
    "Sink",
    "SizeEvaluator",
    "SortedHint",
    "Source",
    "SpeculationConfig",
    "StageGraph",
    "StragglerProfile",
    "TaskFailureEvent",
    "Telemetry",
    "TelemetryConfig",
    "Threshold",
    "TimelineSampler",
    "TopK",
    "Trace",
    "TraceEvent",
    "Transform",
    "Violation",
    "assert_valid",
    "check_amm_ranking",
    "check_cache_sound",
    "check_depth_first",
    "check_no_use_after_discard",
    "check_pruning_sound",
    "check_recovery_sound",
    "cross_validation_mdf",
    "estimate_mdf",
    "fold_splits",
    "iterative_explore_mdf",
    "make_policy",
    "operator_fingerprint",
    "plan_optimizations",
    "prometheus_text",
    "registry_from_trace",
    "run_mdf",
    "set_auto_validate",
    "stage_fingerprint",
    "validate_trace",
]
