"""Core meta-dataflow model: graphs, operators, explore/choose, stages.

This package implements §3 and Appendices A/B of the paper: the dataflow
and data models, the MDF extension with explore and choose operators, the
Table 1 optimisation matrix, stage derivation, execution states, and the
collapsed-MDF analysis behind Theorem 4.3.
"""

from .builder import MDFBuilder, Pipe
from .choose import ChooseOperator
from .collapse import CollapsedMDF, compare_strategies
from .dataflow import DataflowGraph
from .datasets import Dataset, Partition
from .errors import (
    ExecutionError,
    GraphError,
    MDFError,
    SchedulingError,
    ValidationError,
)
from .evaluators import (
    CallableEvaluator,
    Evaluator,
    MetadataEvaluator,
    RatioEvaluator,
    SizeEvaluator,
)
from .explore import Branch, ExploreOperator, ParameterGrid
from .mdf import MDF, Scope
from .operators import (
    Aggregate,
    Filter,
    FlatMap,
    GroupBy,
    Identity,
    Join,
    Map,
    Operator,
    Sink,
    Source,
    Transform,
)
from .optimizations import OptimizationPlan, make_pruner, plan_optimizations
from .selection import (
    Interval,
    KInterval,
    KThreshold,
    Max,
    Min,
    Mode,
    SelectionFunction,
    Threshold,
    TopK,
)
from .stages import Stage, StageGraph
from .state import ExecutionState, still_needed_datasets

__all__ = [
    "Aggregate",
    "Branch",
    "CallableEvaluator",
    "ChooseOperator",
    "CollapsedMDF",
    "DataflowGraph",
    "Dataset",
    "Evaluator",
    "ExecutionError",
    "ExecutionState",
    "ExploreOperator",
    "Filter",
    "FlatMap",
    "GraphError",
    "GroupBy",
    "Identity",
    "Interval",
    "Join",
    "KInterval",
    "KThreshold",
    "MDF",
    "MDFBuilder",
    "MDFError",
    "Map",
    "Max",
    "MetadataEvaluator",
    "Min",
    "Mode",
    "Operator",
    "OptimizationPlan",
    "ParameterGrid",
    "Partition",
    "Pipe",
    "RatioEvaluator",
    "SchedulingError",
    "Scope",
    "SelectionFunction",
    "Sink",
    "SizeEvaluator",
    "Source",
    "Stage",
    "StageGraph",
    "Threshold",
    "TopK",
    "Transform",
    "ValidationError",
    "compare_strategies",
    "make_pruner",
    "plan_optimizations",
    "still_needed_datasets",
]
