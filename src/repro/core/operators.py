"""Dataflow operators (Appendix A of the paper).

Every vertex of a dataflow graph is an :class:`Operator` with an operator
function ``f_v : D^i -> D^o``.  Operators declare

* whether their downstream dependency is *narrow* (partition-wise, e.g. map
  and filter) or *wide* (requires all partitions, e.g. group-by) — this
  drives stage derivation,
* a *cost model* (``cost_factor`` compute units per input byte plus a
  ``fixed_cost``) used by the simulated cluster to charge compute time, and
* a *size model* (``selectivity``: output nominal bytes per input nominal
  byte) used to propagate paper-scale dataset sizes through the graph.

Concrete operators used by the workloads live in ``repro.workloads``; this
module provides the generic building blocks.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional

from .datasets import (
    Dataset,
    Partition,
    PayloadSplitter,
    concat_payloads,
    split_payload,
)
from .errors import ExecutionError

_op_counter = itertools.count()


def _auto_name(prefix: str) -> str:
    return f"{prefix}-{next(_op_counter)}"


class Operator:
    """Base class for all dataflow operators.

    Parameters
    ----------
    name:
        Unique operator name within a graph (auto-generated if omitted).
    cost_factor:
        Compute cost units charged per input nominal byte.
    fixed_cost:
        Compute cost units charged per task regardless of input size.
    selectivity:
        Ratio of output nominal bytes to input nominal bytes.
    """

    #: narrow operators run partition-wise; wide operators see all partitions
    narrow: bool = True

    def __init__(
        self,
        name: Optional[str] = None,
        cost_factor: float = 1.0,
        fixed_cost: float = 0.0,
        selectivity: float = 1.0,
    ):
        self.name = name if name is not None else _auto_name(type(self).__name__.lower())
        self.cost_factor = float(cost_factor)
        self.fixed_cost = float(fixed_cost)
        self.selectivity = float(selectivity)

    # ------------------------------------------------------------------ cost
    def compute_cost(self, input_bytes: int) -> float:
        """Compute cost units for processing ``input_bytes`` of input."""
        return self.fixed_cost + self.cost_factor * input_bytes

    def output_bytes(self, input_bytes: int) -> int:
        """Nominal output size for ``input_bytes`` of input."""
        return max(1, int(self.selectivity * input_bytes))

    # ------------------------------------------------------------- execution
    def apply_partition(self, data: Any) -> Any:
        """Transform one partition payload (narrow operators only)."""
        raise NotImplementedError(f"{type(self).__name__} is not a narrow operator")

    def apply_global(self, payloads: List[Any]) -> List[Any]:
        """Transform all partition payloads at once (wide operators only)."""
        raise NotImplementedError(f"{type(self).__name__} is not a wide operator")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Source(Operator):
    """Reads or generates the input dataset of a dataflow.

    ``fn`` is called once per partition as ``fn(partition_index,
    num_partitions)`` and must return that partition's payload.  Pass a
    plain payload via :meth:`from_data` to split it automatically.
    ``nominal_bytes`` fixes the total nominal size of the produced dataset
    (paper-scale sizes); when omitted the real payload size is used.
    """

    def __init__(
        self,
        fn: Callable[[int, int], Any],
        name: Optional[str] = None,
        nominal_bytes: Optional[int] = None,
        cost_factor: float = 0.0,
        fixed_cost: float = 0.0,
    ):
        super().__init__(name=name, cost_factor=cost_factor, fixed_cost=fixed_cost)
        self.fn = fn
        self.nominal_bytes = nominal_bytes
        #: partitions memoized per (num_partitions, per-part bytes): repeated
        #: ``generate`` calls (sibling branches, warm re-runs) reuse the same
        #: Partition objects instead of re-invoking ``fn`` per partition
        self._generated: dict = {}

    @classmethod
    def from_data(
        cls,
        data: Any,
        name: Optional[str] = None,
        nominal_bytes: Optional[int] = None,
    ) -> "Source":
        """Build a source that splits an in-memory payload into partitions."""
        return cls(PayloadSplitter(data), name=name, nominal_bytes=nominal_bytes)

    def generate(self, num_partitions: int, producer: Optional[str] = None) -> Dataset:
        """Materialise the source dataset with ``num_partitions`` partitions."""
        per_part = (
            None
            if self.nominal_bytes is None
            else max(1, self.nominal_bytes // num_partitions)
        )
        ds_id = f"ds-src-{self.name}"
        parts = self._generated.get((num_partitions, per_part))
        if parts is None:
            parts = [
                Partition(ds_id, i, self.fn(i, num_partitions), per_part)
                for i in range(num_partitions)
            ]
            self._generated[(num_partitions, per_part)] = parts
        return Dataset(parts, dataset_id=ds_id, producer=producer or self.name)


class Map(Operator):
    """Element-wise transformation: ``fn`` is applied to every element."""

    def __init__(self, fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs):
        super().__init__(name=name, **kwargs)
        self.fn = fn

    def apply_partition(self, data: Any) -> Any:
        try:
            return [self.fn(x) for x in data]
        except Exception as exc:  # noqa: BLE001 - wrap operator failures
            raise ExecutionError(self.name, str(exc)) from exc


class Filter(Operator):
    """Keeps elements for which the predicate holds."""

    def __init__(
        self,
        predicate: Callable[[Any], bool],
        name: Optional[str] = None,
        selectivity: float = 0.8,
        **kwargs,
    ):
        super().__init__(name=name, selectivity=selectivity, **kwargs)
        self.predicate = predicate

    def apply_partition(self, data: Any) -> Any:
        try:
            import numpy as np

            if isinstance(data, np.ndarray):
                mask = np.fromiter(
                    (bool(self.predicate(x)) for x in data), dtype=bool, count=len(data)
                )
                return data[mask]
            return [x for x in data if self.predicate(x)]
        except ExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class Transform(Operator):
    """Whole-partition transformation: ``fn(payload) -> payload``.

    The workhorse narrow operator for workloads whose natural unit is a
    partition (e.g. vectorised numpy computation, masking a window of a
    time series partition).
    """

    def __init__(self, fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs):
        super().__init__(name=name, **kwargs)
        self.fn = fn

    def apply_partition(self, data: Any) -> Any:
        try:
            return self.fn(data)
        except ExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class FlatMap(Operator):
    """Maps each element to zero or more output elements."""

    def __init__(self, fn: Callable[[Any], List[Any]], name: Optional[str] = None, **kwargs):
        super().__init__(name=name, **kwargs)
        self.fn = fn

    def apply_partition(self, data: Any) -> Any:
        try:
            out: List[Any] = []
            for x in data:
                out.extend(self.fn(x))
            return out
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class Aggregate(Operator):
    """Wide operator: ``fn`` receives the full concatenated payload.

    The result is re-partitioned across the cluster.  Used for model fitting
    and global statistics where a partition-wise computation would be wrong.
    """

    narrow = False

    def __init__(
        self,
        fn: Callable[[Any], Any],
        name: Optional[str] = None,
        selectivity: float = 0.1,
        **kwargs,
    ):
        super().__init__(name=name, selectivity=selectivity, **kwargs)
        self.fn = fn

    def apply_global(self, payloads: List[Any]) -> List[Any]:
        try:
            merged = concat_payloads(payloads)
            result = self.fn(merged)
            return split_payload(result, len(payloads))
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class GroupBy(Operator):
    """Wide operator: groups elements by a key function.

    Produces one ``(key, [elements])`` pair per group, hash-partitioned over
    the same number of partitions as the input.
    """

    narrow = False

    def __init__(
        self,
        key_fn: Callable[[Any], Any],
        name: Optional[str] = None,
        selectivity: float = 1.0,
        **kwargs,
    ):
        super().__init__(name=name, selectivity=selectivity, **kwargs)
        self.key_fn = key_fn

    def apply_global(self, payloads: List[Any]) -> List[Any]:
        try:
            groups: dict = {}
            for payload in payloads:
                for x in payload:
                    groups.setdefault(self.key_fn(x), []).append(x)
            n = max(1, len(payloads))
            out: List[List[Any]] = [[] for _ in range(n)]
            for key, members in groups.items():
                out[hash(key) % n].append((key, members))
            return out
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class Join(Operator):
    """Wide two-input operator: ``fn(left_payload, right_payload)``.

    Appendix A's operator functions are ``f_v : D^i -> D^o``; joins are the
    common ``i = 2`` case (sensor fusion, enrichment, feature joins).  Both
    inputs are gathered (a shuffle), ``fn`` receives their fully
    concatenated payloads in declaration order, and the result is
    re-partitioned.  ``input_names`` fixes the left/right order — graph
    edges are unordered, so the builder records which operand is which.
    """

    narrow = False

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        name: Optional[str] = None,
        selectivity: float = 1.0,
        **kwargs,
    ):
        super().__init__(name=name, selectivity=selectivity, **kwargs)
        self.fn = fn
        #: operator names of the (left, right) operands, set by the builder
        self.input_names: List[str] = []

    def apply_join(self, left: Any, right: Any) -> Any:
        try:
            return self.fn(left, right)
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class Sink(Operator):
    """Terminal operator collecting the final result of a dataflow.

    ``fn`` receives the fully concatenated payload; its return value becomes
    the job output.  The default sink returns the payload unchanged.
    """

    def __init__(
        self,
        fn: Optional[Callable[[Any], Any]] = None,
        name: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(name=name, cost_factor=kwargs.pop("cost_factor", 0.0), **kwargs)
        self.fn = fn if fn is not None else (lambda payload: payload)

    def apply_partition(self, data: Any) -> Any:
        return data

    def finalize(self, dataset: Dataset) -> Any:
        """Run the sink function on the collected dataset payload."""
        try:
            return self.fn(dataset.collect())
        except Exception as exc:  # noqa: BLE001
            raise ExecutionError(self.name, str(exc)) from exc


class Identity(Operator):
    """Pass-through operator (used when collapsing graphs and in tests)."""

    def __init__(self, name: Optional[str] = None, **kwargs):
        super().__init__(name=name, cost_factor=kwargs.pop("cost_factor", 0.0), **kwargs)

    def apply_partition(self, data: Any) -> Any:
        return data
