"""Stage derivation (Appendix A execution model).

Stages group operators with only *narrow* dependencies so their execution
can be pipelined on a worker.  Explore and choose operators always form
singleton stages: the paper's scheduler treats them specially (explore
starts branch-aware traversal, choose splits into a worker-side evaluator
and a master-side selection).

The derived :class:`StageGraph` exposes pre/post-sets over stages (``•T``
and ``T•``), which is exactly the structure Algorithm 1 operates on.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from .choose import ChooseOperator
from .dataflow import DataflowGraph
from .explore import ExploreOperator
from .mdf import MDF
from .operators import Operator

_stage_counter = itertools.count()


class Stage:
    """A maximal chain of narrow-dependency operators.

    Attributes
    ----------
    ops:
        The operator chain in execution order.
    branch_id:
        Innermost branch the stage belongs to (None outside explore scopes).
    """

    def __init__(self, ops: List[Operator], branch_id: Optional[str] = None):
        self.index = next(_stage_counter)
        self.id = f"stage-{self.index}"
        self.ops = ops
        self.branch_id = branch_id

    @property
    def head(self) -> Operator:
        return self.ops[0]

    @property
    def tail(self) -> Operator:
        return self.ops[-1]

    @property
    def is_choose(self) -> bool:
        return len(self.ops) == 1 and isinstance(self.ops[0], ChooseOperator)

    @property
    def is_explore(self) -> bool:
        return len(self.ops) == 1 and isinstance(self.ops[0], ExploreOperator)

    def __repr__(self) -> str:  # pragma: no cover
        names = "+".join(op.name for op in self.ops)
        return f"Stage({self.id}: {names})"


class StageGraph:
    """Stages of a dataflow graph with stage-level pre/post-sets."""

    def __init__(self, graph: DataflowGraph):
        self.graph = graph
        self.stages: List[Stage] = []
        self._stage_of: Dict[str, Stage] = {}
        self._build()

    # ------------------------------------------------------------- building
    def _starts_new_stage(self, op: Operator) -> bool:
        """True when ``op`` cannot be appended to its predecessor's stage."""
        if isinstance(op, (ExploreOperator, ChooseOperator)):
            return True
        if not op.narrow:
            return True  # wide dependency: shuffle boundary
        if self.graph.in_degree(op) != 1:
            return True
        (pred,) = self.graph.pre(op)
        if isinstance(pred, (ExploreOperator, ChooseOperator)):
            return True
        if self.graph.out_degree(pred) != 1:
            return True  # fan-out point: each successor starts its own stage
        return False

    def _build(self) -> None:
        for op in self.graph.topological_order():
            if self._starts_new_stage(op):
                branch_id = None
                if isinstance(self.graph, MDF):
                    branch_id = self.graph.branch_of(op)
                stage = Stage([op], branch_id)
                # renumber per graph: stage ids must be deterministic across
                # re-derivations of the same dataflow (golden decision traces
                # compare byte-for-byte), not process-lifetime unique
                stage.index = len(self.stages)
                stage.id = f"stage-{stage.index}"
                self.stages.append(stage)
                self._stage_of[op.name] = stage
            else:
                (pred,) = self.graph.pre(op)
                stage = self._stage_of[pred.name]
                stage.ops.append(op)
                self._stage_of[op.name] = stage

    # -------------------------------------------------------------- queries
    def stage_of(self, op: Operator) -> Stage:
        return self._stage_of[op.name]

    def pre(self, stage: Stage) -> Set[Stage]:
        """``•T``: stages that must execute before ``stage``."""
        preds: Set[Stage] = set()
        for op in self.graph.pre(stage.head):
            pred_stage = self._stage_of[op.name]
            if pred_stage is not stage:
                preds.add(pred_stage)
        return preds

    def post(self, stage: Stage) -> Set[Stage]:
        """``T•``: stages that read this stage's output."""
        succs: Set[Stage] = set()
        for op in self.graph.post(stage.tail):
            succ_stage = self._stage_of[op.name]
            if succ_stage is not stage:
                succs.add(succ_stage)
        return succs

    def initial_stages(self) -> List[Stage]:
        return [s for s in self.stages if not self.pre(s)]

    def final_stages(self) -> List[Stage]:
        return [s for s in self.stages if not self.post(s)]

    def topological_stages(self) -> List[Stage]:
        """Stages in a topological order (BFS baseline execution order)."""
        order: List[Stage] = []
        done: Set[str] = set()
        pending = list(self.stages)
        while pending:
            progressed = False
            for stage in list(pending):
                if all(p.id in done for p in self.pre(stage)):
                    order.append(stage)
                    done.add(stage.id)
                    pending.remove(stage)
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by DAG validation
                raise RuntimeError("stage graph contains a cycle")
        return order

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover
        return f"StageGraph(|T|={len(self.stages)})"
