"""Dataflow graphs (Appendix A of the paper).

A dataflow graph is a connected directed acyclic graph ``G = (V, E)`` whose
vertices are :class:`~repro.core.operators.Operator` instances and whose
edges are data dependencies.  This module provides construction, pre/post
sets (``•v`` and ``v•``), path queries, validation, and topological ordering
— everything the MDF model, stage derivation, and the schedulers build on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set

from .errors import GraphError
from .operators import Operator


class DataflowGraph:
    """A directed acyclic graph of operators with data-dependency edges."""

    def __init__(self):
        self._operators: Dict[str, Operator] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------ structure
    def add_operator(self, op: Operator) -> Operator:
        """Register an operator as a vertex; returns it for chaining."""
        if op.name in self._operators:
            if self._operators[op.name] is op:
                return op
            raise GraphError(f"duplicate operator name {op.name!r}")
        self._operators[op.name] = op
        self._succ[op.name] = set()
        self._pred[op.name] = set()
        return op

    def add_edge(self, src: Operator, dst: Operator) -> None:
        """Add a data dependency ``src -> dst`` (vertices added on demand)."""
        self.add_operator(src)
        self.add_operator(dst)
        if src.name == dst.name:
            raise GraphError(f"self-loop on operator {src.name!r}")
        self._succ[src.name].add(dst.name)
        self._pred[dst.name].add(src.name)

    def chain(self, *ops: Operator) -> Operator:
        """Add edges along a linear chain of operators; returns the last one."""
        for a, b in zip(ops, ops[1:]):
            self.add_edge(a, b)
        return ops[-1]

    # -------------------------------------------------------------- queries
    @property
    def operators(self) -> List[Operator]:
        return list(self._operators.values())

    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise GraphError(f"unknown operator {name!r}") from None

    def __contains__(self, op: Operator) -> bool:
        return getattr(op, "name", None) in self._operators

    def __len__(self) -> int:
        return len(self._operators)

    def pre(self, op: Operator) -> Set[Operator]:
        """Pre-set ``•v``: operators with an edge into ``op``."""
        return {self._operators[n] for n in self._pred[op.name]}

    def post(self, op: Operator) -> Set[Operator]:
        """Post-set ``v•``: operators ``op`` has an edge to."""
        return {self._operators[n] for n in self._succ[op.name]}

    def in_degree(self, op: Operator) -> int:
        return len(self._pred[op.name])

    def out_degree(self, op: Operator) -> int:
        return len(self._succ[op.name])

    def sources(self) -> List[Operator]:
        """Operators with an empty pre-set."""
        return [op for op in self.operators if not self._pred[op.name]]

    def sinks(self) -> List[Operator]:
        """Operators with an empty post-set."""
        return [op for op in self.operators if not self._succ[op.name]]

    def has_path(self, src: Operator, dst: Operator) -> bool:
        """True if a directed path ``π(src, dst)`` exists."""
        if src.name == dst.name:
            return False
        seen = {src.name}
        queue = deque([src.name])
        while queue:
            cur = queue.popleft()
            for nxt in self._succ[cur]:
                if nxt == dst.name:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def descendants(self, op: Operator) -> Set[Operator]:
        """All operators reachable from ``op`` (excluding ``op`` itself)."""
        seen: Set[str] = set()
        queue = deque(self._succ[op.name])
        while queue:
            cur = queue.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            queue.extend(self._succ[cur])
        return {self._operators[n] for n in seen}

    def ancestors(self, op: Operator) -> Set[Operator]:
        """All operators from which ``op`` is reachable."""
        seen: Set[str] = set()
        queue = deque(self._pred[op.name])
        while queue:
            cur = queue.popleft()
            if cur in seen:
                continue
            seen.add(cur)
            queue.extend(self._pred[cur])
        return {self._operators[n] for n in seen}

    def paths(self, src: Operator, dst: Operator) -> List[List[Operator]]:
        """All simple directed paths from ``src`` to ``dst`` (inclusive)."""
        results: List[List[Operator]] = []
        stack: List[List[str]] = [[src.name]]
        while stack:
            path = stack.pop()
            last = path[-1]
            if last == dst.name:
                results.append([self._operators[n] for n in path])
                continue
            for nxt in sorted(self._succ[last]):
                if nxt not in path:
                    stack.append(path + [nxt])
        return results

    # ----------------------------------------------------------- validation
    def topological_order(self) -> List[Operator]:
        """Kahn topological sort; raises :class:`GraphError` on cycles."""
        indeg = {name: len(preds) for name, preds in self._pred.items()}
        queue = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: List[str] = []
        while queue:
            cur = queue.popleft()
            order.append(cur)
            for nxt in sorted(self._succ[cur]):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self._operators):
            raise GraphError("dataflow graph contains a cycle")
        return [self._operators[n] for n in order]

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        if not self._operators:
            return True
        start = next(iter(self._operators))
        seen = {start}
        queue = deque([start])
        while queue:
            cur = queue.popleft()
            for nxt in self._succ[cur] | self._pred[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == len(self._operators)

    def validate(self) -> None:
        """Check the Appendix A structural invariants: connected DAG."""
        if not self._operators:
            raise GraphError("empty dataflow graph")
        self.topological_order()
        if not self.is_connected():
            raise GraphError("dataflow graph is not connected")
        if not self.sources():
            raise GraphError("dataflow graph has no source operator")
        if not self.sinks():
            raise GraphError("dataflow graph has no sink operator")

    # -------------------------------------------------------------- utility
    def subgraph(self, ops: Iterable[Operator]) -> "DataflowGraph":
        """Induced subgraph over ``ops`` (edges restricted to the subset)."""
        names = {op.name for op in ops}
        sub = DataflowGraph()
        for name in names:
            sub.add_operator(self._operators[name])
        for name in names:
            for nxt in self._succ[name]:
                if nxt in names:
                    sub.add_edge(self._operators[name], self._operators[nxt])
        return sub

    def copy(self) -> "DataflowGraph":
        """Shallow copy sharing operator instances but not edge sets."""
        dup = DataflowGraph()
        for op in self.operators:
            dup.add_operator(op)
        for name, succs in self._succ.items():
            for nxt in succs:
                dup.add_edge(self._operators[name], self._operators[nxt])
        return dup

    def remove_operators(self, ops: Sequence[Operator]) -> None:
        """Remove operators and their incident edges (dynamic rewriting)."""
        for op in ops:
            name = op.name
            if name not in self._operators:
                continue
            for nxt in self._succ.pop(name, set()):
                self._pred[nxt].discard(name)
            for prv in self._pred.pop(name, set()):
                self._succ[prv].discard(name)
            del self._operators[name]

    def to_dot(self, name: str = "dataflow") -> str:
        """Render the graph in Graphviz DOT format.

        Explore operators are drawn as triangles, chooses as inverted
        triangles, wide operators as boxes, everything else as ellipses —
        handy for inspecting generated MDFs (``dot -Tpng``).
        """
        lines = [f'digraph "{name}" {{', "  rankdir=LR;"]
        for op in self.operators:
            kind = type(op).__name__
            if kind == "ExploreOperator":
                shape = "triangle"
            elif kind == "ChooseOperator":
                shape = "invtriangle"
            elif not op.narrow:
                shape = "box"
            else:
                shape = "ellipse"
            lines.append(f'  "{op.name}" [shape={shape}];')
        for src_name, succs in sorted(self._succ.items()):
            for dst in sorted(succs):
                lines.append(f'  "{src_name}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(len(s) for s in self._succ.values())
        return f"DataflowGraph(|V|={len(self._operators)}, |E|={edges})"
