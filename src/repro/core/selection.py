"""Selection functions for choose operators (Definition 3.3, Table 1).

A selection function ``ρ_v : (D × R)^i -> D`` picks the datasets of a subset
of branches based on their evaluator scores.  The paper lists the common
functions and two properties that unlock optimisations (Table 1):

* ``associative`` — the selection can be evaluated incrementally, branch by
  branch, so losing datasets are discarded the moment they lose
  (*incremental discard*);
* ``non_exhaustive`` — a valid subset can be selected without seeing all
  scores, so once the subset is complete the not-yet-executed branches are
  skipped entirely (*superfluous-branch pruning*).

Each selection function exposes a batch API (:meth:`select`) and an
incremental API (:meth:`incremental` returning an
:class:`IncrementalSelector`), the latter being what branch-aware scheduling
drives.  The incremental selector reports, after each offered score, which
branches are definitively discarded and whether the selection is already
complete.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

Score = float
BranchId = str


class IncrementalDecision:
    """Outcome of offering one branch score to an incremental selector.

    Attributes
    ----------
    discarded:
        Branch ids whose datasets are now known to lose and can be freed —
        possibly including previously kept branches that were knocked out.
    done:
        True when the selection is complete and all not-yet-offered branches
        are superfluous (non-exhaustive selections only).
    """

    __slots__ = ("discarded", "done")

    def __init__(self, discarded: Optional[Set[BranchId]] = None, done: bool = False):
        self.discarded = discarded or set()
        self.done = done

    def __repr__(self) -> str:  # pragma: no cover
        return f"IncrementalDecision(discarded={sorted(self.discarded)}, done={self.done})"


class IncrementalSelector:
    """Stateful incremental evaluation of a selection function.

    Subclasses implement :meth:`offer`; :meth:`finalize` returns the kept
    branch ids once every (non-pruned) branch was offered.
    """

    def offer(self, branch_id: BranchId, score: Score) -> IncrementalDecision:
        raise NotImplementedError

    def finalize(self) -> List[BranchId]:
        raise NotImplementedError


class SelectionFunction:
    """Base class for all selection functions.

    ``associative`` and ``non_exhaustive`` are the Table 1 property flags.
    ``ranked`` marks selections whose kept *order* is meaningful (top-k's
    best-first ranking); unranked selections keep a plain set, and the
    engine presents it in branch-domain order so the choose output is
    independent of the evaluation order the scheduler happened to pick.
    """

    associative: bool = True
    non_exhaustive: bool = False
    ranked: bool = False

    def select(self, scored: Sequence[Tuple[BranchId, Score]]) -> List[BranchId]:
        """Batch selection: returns the kept branch ids, in offer order."""
        selector = self.incremental()
        alive: Dict[BranchId, None] = {}
        for branch_id, score in scored:
            decision = selector.offer(branch_id, score)
            alive[branch_id] = None
            for discarded in decision.discarded:
                alive.pop(discarded, None)
            if decision.done:
                break
        kept = set(selector.finalize())
        return [b for b in alive if b in kept]

    def incremental(self) -> IncrementalSelector:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return type(self).__name__


# --------------------------------------------------------------------- top-k


class _TopKSelector(IncrementalSelector):
    def __init__(self, k: int, largest: bool):
        self.k = k
        self.largest = largest
        self.kept: List[Tuple[Score, BranchId]] = []  # sorted best-first

    def _better(self, a: Score, b: Score) -> bool:
        return a > b if self.largest else a < b

    def offer(self, branch_id: BranchId, score: Score) -> IncrementalDecision:
        self.kept.append((score, branch_id))
        self.kept.sort(key=lambda t: t[0], reverse=self.largest)
        if len(self.kept) <= self.k:
            return IncrementalDecision()
        dropped_score, dropped_id = self.kept.pop()
        return IncrementalDecision(discarded={dropped_id})

    def finalize(self) -> List[BranchId]:
        return [b for _, b in self.kept]


class TopK(SelectionFunction):
    """Keeps the ``k`` branches with the best scores.

    Associative (a running top-k is maintained and losers are discarded
    immediately) but exhaustive: every branch must be scored before the
    final top-k is known.  ``largest=True`` keeps the highest scores.
    """

    ranked = True
    associative = True
    non_exhaustive = False

    def __init__(self, k: int, largest: bool = True):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.largest = largest

    def incremental(self) -> IncrementalSelector:
        return _TopKSelector(self.k, self.largest)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TopK(k={self.k}, largest={self.largest})"


class Max(TopK):
    """Keeps the single branch with the highest score."""

    def __init__(self):
        super().__init__(k=1, largest=True)


class Min(TopK):
    """Keeps the single branch with the lowest score."""

    def __init__(self):
        super().__init__(k=1, largest=False)


# ----------------------------------------------------------------- threshold


class _PredicateSelector(IncrementalSelector):
    def __init__(self, accept, limit: Optional[int] = None):
        self.accept = accept
        self.limit = limit
        self.kept: List[BranchId] = []

    def offer(self, branch_id: BranchId, score: Score) -> IncrementalDecision:
        if self.limit is not None and len(self.kept) >= self.limit:
            return IncrementalDecision(discarded={branch_id}, done=True)
        if self.accept(score):
            self.kept.append(branch_id)
            done = self.limit is not None and len(self.kept) >= self.limit
            return IncrementalDecision(done=done)
        return IncrementalDecision(discarded={branch_id})

    def finalize(self) -> List[BranchId]:
        return list(self.kept)


class Threshold(SelectionFunction):
    """Keeps every branch whose score is above (or below) a threshold.

    Each branch decision is independent, so the function is associative:
    losers are discarded as soon as they are scored.  It is exhaustive —
    all branches must still be scored, because every passing branch is kept.
    """

    associative = True
    non_exhaustive = False

    def __init__(self, threshold: float, above: bool = True):
        self.threshold = threshold
        self.above = above

    def _accept(self, score: Score) -> bool:
        return score >= self.threshold if self.above else score <= self.threshold

    def incremental(self) -> IncrementalSelector:
        return _PredicateSelector(self._accept)

    def __repr__(self) -> str:  # pragma: no cover
        op = ">=" if self.above else "<="
        return f"Threshold(score {op} {self.threshold})"


class Interval(SelectionFunction):
    """Keeps every branch whose score falls inside ``[low, high]``."""

    associative = True
    non_exhaustive = False

    def __init__(self, low: float, high: float):
        if low > high:
            raise ValueError("interval low must be <= high")
        self.low = low
        self.high = high

    def _accept(self, score: Score) -> bool:
        return self.low <= score <= self.high

    def incremental(self) -> IncrementalSelector:
        return _PredicateSelector(self._accept)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Interval([{self.low}, {self.high}])"


class KThreshold(Threshold):
    """Keeps the *first* ``k`` branches whose score passes the threshold.

    Non-exhaustive: once ``k`` branches pass, the remaining branches —
    executed or not — are superfluous and can be skipped (Table 1).
    """

    associative = True
    non_exhaustive = True

    def __init__(self, k: int, threshold: float, above: bool = True):
        super().__init__(threshold, above)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def incremental(self) -> IncrementalSelector:
        return _PredicateSelector(self._accept, limit=self.k)

    def __repr__(self) -> str:  # pragma: no cover
        op = ">=" if self.above else "<="
        return f"KThreshold(first {self.k} with score {op} {self.threshold})"


class KInterval(Interval):
    """Keeps the first ``k`` branches whose score falls inside the interval."""

    associative = True
    non_exhaustive = True

    def __init__(self, k: int, low: float, high: float):
        super().__init__(low, high)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def incremental(self) -> IncrementalSelector:
        return _PredicateSelector(self._accept, limit=self.k)

    def __repr__(self) -> str:  # pragma: no cover
        return f"KInterval(first {self.k} in [{self.low}, {self.high}])"


# ---------------------------------------------------------------------- mode


class _ModeSelector(IncrementalSelector):
    def __init__(self, precision: int):
        self.precision = precision
        self.scores: List[Tuple[BranchId, Score]] = []

    def offer(self, branch_id: BranchId, score: Score) -> IncrementalDecision:
        self.scores.append((branch_id, round(score, self.precision)))
        return IncrementalDecision()  # mode can never discard early

    def finalize(self) -> List[BranchId]:
        if not self.scores:
            return []
        counts = Counter(score for _, score in self.scores)
        mode_score, _ = counts.most_common(1)[0]
        return [b for b, s in self.scores if s == mode_score]


class Mode(SelectionFunction):
    """Keeps the branches whose score equals the most frequent score.

    The mode is *not* associative (Table 1): no branch can be discarded
    before all scores are known, so neither incremental discard nor
    superfluous-branch pruning applies.
    """

    associative = False
    non_exhaustive = False

    def __init__(self, precision: int = 9):
        self.precision = precision

    def incremental(self) -> IncrementalSelector:
        return _ModeSelector(self.precision)
