"""Collapsed MDFs and the Appendix B dataset-count analysis.

Appendix B proves that depth-first traversal (the order branch-aware
scheduling uses) never maintains more datasets than breadth-first traversal
(Theorem 4.3).  This module provides both sides of that argument:

* the paper's closed-form counts — Eq. 1 (depth-first), Eq. 2
  (breadth-first) and Eq. 5 (breadth-first after a choose) — for a
  *collapsed* MDF with uniform branching factor ``B`` and nesting depth
  ``d``, and
* an exact discrete simulation of a uniform collapsed MDF
  (:class:`CollapsedMDF`) that replays a depth-first or breadth-first
  schedule and counts the datasets alive after every step, which the tests
  and the Appendix B benchmark use to validate the theorem empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Tuple

Strategy = Literal["dfs", "bfs"]


# ------------------------------------------------------------ closed forms


def eq1_depth_first(b: int, d: int, B: int) -> int:
    """Eq. 1: datasets maintained after stage ``(b, d)`` under depth-first.

    ``b`` is the 1-based execution order of the stage within its depth
    (``1 <= b <= B**d``), ``d`` the nesting depth, ``B >= 2`` the uniform
    branching factor.  Assumes the worst case of no early/incremental choose.
    """
    _check_stage(b, d, B)
    total = 1
    for x in range(1, d + 1):
        block = (b - 1) - ((b - 1) // B**x) * B**x
        completed_siblings = block // B ** (x - 1)
        last_child = ((b - 1) - ((b - 1) // B**x) * B**x) // int((1 - 1 / B) * B**x)
        total += completed_siblings + 1 - last_child
    return total


def eq2_breadth_first(b: int, d: int, B: int) -> int:
    """Eq. 2: datasets maintained after stage ``(b, d)`` under breadth-first.

    ``B**(d-1) - floor(b / B) + b``: the unexplored parents from the previous
    depth plus the already-explored stages of the current depth.
    """
    _check_stage(b, d, B)
    return B ** (d - 1) - b // B + b


def eq5_choose_breadth_first(b: int, d: int, B: int) -> int:
    """Eq. 5: datasets maintained after a breadth-first choose stage.

    The choose closes the scope whose explore stage is denoted ``(b, d)``;
    ``b`` must be a multiple of ``B`` (a choose reads ``B`` inputs at once).
    """
    _check_stage(b, d, B)
    return B ** (d + 1) - B * b + b


def _check_stage(b: int, d: int, B: int) -> None:
    if B < 2:
        raise ValueError("branching factor B must be >= 2")
    if d < 1:
        raise ValueError("depth d must be >= 1 for the closed forms")
    if not 1 <= b <= B**d:
        raise ValueError(f"stage index b={b} out of range for depth {d} (max {B ** d})")


# ----------------------------------------------------------- exact simulator


@dataclass
class TraceEntry:
    """One step of a collapsed-MDF schedule replay."""

    step: int
    kind: str  # "work" or "choose"
    depth: int
    index: int
    alive_datasets: int


class CollapsedMDF:
    """A uniform collapsed MDF: perfect ``B``-ary explore tree of depth ``D``.

    The root (depth 0) is the source stage.  Every node above the leaf depth
    has ``B`` children (the branch stages of one explore); each internal node
    owns a choose that consumes its children's results.  Dataset lifecycle
    follows Appendix B:

    * executing a work stage creates one dataset;
    * an internal node's dataset is read by all ``B`` children and is
      discarded once the last child has executed;
    * a choose consumes (and discards) its ``B`` input results and produces
      one result dataset.

    The worst case of no incremental choose is modelled: all ``B`` inputs of
    a choose must be alive simultaneously.
    """

    def __init__(self, branching: int, depth: int):
        if branching < 2:
            raise ValueError("branching factor must be >= 2")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.B = branching
        self.depth = depth

    # node identifiers: (depth, index) with index in [0, B**depth)
    def children(self, node: Tuple[int, int]) -> List[Tuple[int, int]]:
        d, i = node
        if d >= self.depth:
            return []
        return [(d + 1, i * self.B + j) for j in range(self.B)]

    def simulate(self, strategy: Strategy) -> List[TraceEntry]:
        """Replay a schedule and record alive-dataset counts per step."""
        if strategy == "dfs":
            schedule = self._dfs_schedule()
        elif strategy == "bfs":
            schedule = self._bfs_schedule()
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return self._replay(schedule)

    def _dfs_schedule(self) -> List[Tuple[str, Tuple[int, int]]]:
        """Depth-first: finish a whole subtree (incl. its choose) first."""
        schedule: List[Tuple[str, Tuple[int, int]]] = []

        def visit(node: Tuple[int, int]) -> None:
            schedule.append(("work", node))
            kids = self.children(node)
            if kids:
                for kid in kids:
                    visit(kid)
                schedule.append(("choose", node))

        visit((0, 0))
        return schedule

    def _bfs_schedule(self) -> List[Tuple[str, Tuple[int, int]]]:
        """Breadth-first: all work stages level by level, chooses bottom-up."""
        schedule: List[Tuple[str, Tuple[int, int]]] = []
        for d in range(self.depth + 1):
            for i in range(self.B**d):
                schedule.append(("work", (d, i)))
        for d in range(self.depth - 1, -1, -1):
            for i in range(self.B**d):
                schedule.append(("choose", (d, i)))
        return schedule

    def _replay(self, schedule: List[Tuple[str, Tuple[int, int]]]) -> List[TraceEntry]:
        # alive datasets: work outputs and choose results, keyed by node
        alive_work: Dict[Tuple[int, int], int] = {}  # node -> unread child count
        alive_result: Dict[Tuple[int, int], bool] = {}
        trace: List[TraceEntry] = []
        for step, (kind, node) in enumerate(schedule):
            d, i = node
            if kind == "work":
                kids = self.children(node)
                if kids:
                    alive_work[node] = len(kids)
                else:
                    alive_work[node] = 0  # leaf: consumed by its choose
                if d > 0:
                    parent = (d - 1, i // self.B)
                    alive_work[parent] -= 1
                    if alive_work[parent] == 0 and self.children(parent):
                        del alive_work[parent]
            else:  # choose of `node`'s scope
                for kid in self.children(node):
                    if self.children(kid):
                        alive_result.pop(kid, None)
                    else:
                        alive_work.pop(kid, None)
                alive_result[node] = True
            count = len(alive_work) + len(alive_result)
            trace.append(TraceEntry(step, kind, d, i, count))
        return trace

    def peak_datasets(self, strategy: Strategy) -> int:
        """Maximum number of simultaneously maintained datasets."""
        return max(entry.alive_datasets for entry in self.simulate(strategy))

    def total_dataset_steps(self, strategy: Strategy) -> int:
        """Sum of alive-dataset counts over all steps (memory-time product)."""
        return sum(entry.alive_datasets for entry in self.simulate(strategy))


def compare_strategies(branching: int, depth: int) -> Dict[str, int]:
    """Peak maintained datasets for DFS vs BFS on a uniform collapsed MDF."""
    mdf = CollapsedMDF(branching, depth)
    return {
        "dfs_peak": mdf.peak_datasets("dfs"),
        "bfs_peak": mdf.peak_datasets("bfs"),
        "dfs_total": mdf.total_dataset_steps("dfs"),
        "bfs_total": mdf.total_dataset_steps("bfs"),
    }
