"""Choose operators (Definition 3.3) closing an exploration scope.

A choose operator has ``i > 1`` inputs (one per branch) and one output.  Its
operator function is the composition of a worker-side *evaluator* ``φ_v``
(scores one branch's dataset) and a master-side *selection* ``ρ_v`` (picks a
subset of branches by score and concatenates their datasets).  The split
between worker and master is the paper's §4.2/§5 design and what enables
incremental evaluation under branch-aware scheduling.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from .datasets import Dataset
from .evaluators import Evaluator
from .operators import Operator
from .optimizations import OptimizationPlan, plan_optimizations
from .selection import SelectionFunction


class ChooseOperator(Operator):
    """Closes an exploration scope (``|•v| > 1``, ``|v•| = 1``)."""

    def __init__(
        self,
        evaluator: Evaluator,
        selection: SelectionFunction,
        name: Optional[str] = None,
    ):
        super().__init__(name=name, cost_factor=0.0)
        self.evaluator = evaluator
        self.selection = selection

    @property
    def optimization_plan(self) -> OptimizationPlan:
        """The Table 1 optimisations this choose enables."""
        return plan_optimizations(self.evaluator, self.selection)

    # The full operator function f_v(d_1, ..., d_i) of Definition 3.3,
    # used when choose runs as an ordinary (non-incremental) barrier.
    def apply(self, branch_datasets: Sequence[Tuple[str, Dataset]]) -> Dataset:
        """Score every branch, select, and concatenate the kept datasets."""
        scored = [(branch_id, self.evaluator.score(ds)) for branch_id, ds in branch_datasets]
        kept_ids = set(self.selection.select(scored))
        kept = [ds for branch_id, ds in branch_datasets if branch_id in kept_ids]
        if not kept:
            # An empty selection still produces a (degenerate) dataset so the
            # downstream pipeline can observe "nothing survived".
            return Dataset.from_data([], producer=self.name)
        result = kept[0]
        for ds in kept[1:]:
            result = result.concat(ds)
        result.producer = self.name
        return result

    def apply_partition(self, data: Any) -> Any:  # pragma: no cover - engine bypasses
        return data

    def __repr__(self) -> str:  # pragma: no cover
        return f"Choose({self.name}, {self.evaluator!r}, {self.selection!r})"
