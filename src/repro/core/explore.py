"""Explore operators and explorable parameter grids (Definition 3.2).

An explore operator marks the opening of an exploration scope: it has one
input and ``o > 1`` outputs, and simply forwards its input dataset to every
branch.  Each branch corresponds to one point of the explorable's parameter
grid (the cartesian product of the per-parameter choices, mirroring the
paper's ``EXPLORE(t=seq(...), k=seq(...))`` syntax).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from .operators import Operator


class ParameterGrid:
    """The cartesian product of per-parameter choice sequences.

    ``ParameterGrid(t=[1.5, 2.0], k=["gaussian", "top-hat"])`` yields four
    combinations in a deterministic order (row-major over the declaration
    order of the parameters).  Combination order matters: monotone/convex
    pruning and sorted scheduling hints rely on branches being ordered by
    the explorable's domain.
    """

    def __init__(self, **params: Sequence[Any]):
        if not params:
            raise ValueError("a parameter grid needs at least one parameter")
        for key, values in params.items():
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValueError(f"parameter {key!r} must be a non-empty sequence")
        self.params: Dict[str, List[Any]] = {k: list(v) for k, v in params.items()}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Sequence[Any]]) -> "ParameterGrid":
        return cls(**dict(mapping))

    @property
    def names(self) -> List[str]:
        return list(self.params.keys())

    def __len__(self) -> int:
        n = 1
        for values in self.params.values():
            n *= len(values)
        return n

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        keys = list(self.params.keys())
        for combo in itertools.product(*(self.params[k] for k in keys)):
            yield dict(zip(keys, combo))

    def combinations(self) -> List[Dict[str, Any]]:
        """All parameter combinations as a list of dicts."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"ParameterGrid({inner})"


def format_params(params: Mapping[str, Any]) -> str:
    """Compact, deterministic rendering of a parameter combination."""
    return ",".join(f"{k}={params[k]}" for k in params)


class ExploreOperator(Operator):
    """Opens an exploration scope (``|•v| = 1``, ``|v•| > 1``).

    Its operator function forwards the input dataset to all branches
    (Definition 3.2), which the engine implements zero-copy: all branches
    read the *same* stored dataset, which is exactly why explore fan-out
    creates the reuse and memory-pressure patterns §4 optimises for.
    """

    def __init__(self, grid: ParameterGrid, name: Optional[str] = None):
        super().__init__(name=name, cost_factor=0.0)
        self.grid = grid
        #: combination index -> parameter dict, fixed at construction
        self.branch_params: List[Dict[str, Any]] = grid.combinations()

    @property
    def fanout(self) -> int:
        return len(self.branch_params)

    def apply_partition(self, data: Any) -> Any:
        return data

    def params_for_branch(self, index: int) -> Dict[str, Any]:
        return self.branch_params[index]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Explore({self.name}, fanout={self.fanout})"


class Branch:
    """One explore→choose path: a parameter combination plus its operators.

    ``ops`` is the chain strictly between the explore and the choose (it may
    contain nested explore/choose structures).  ``order_key`` is the position
    in the grid's deterministic order, which sorted scheduling hints and the
    monotone/convex pruners rely on.
    """

    def __init__(self, explore_name: str, index: int, params: Dict[str, Any], ops: List[Operator]):
        self.explore_name = explore_name
        self.index = index
        self.params = params
        self.ops = ops

    @property
    def id(self) -> str:
        return f"{self.explore_name}#{self.index}"

    @property
    def order_key(self) -> int:
        return self.index

    def __repr__(self) -> str:  # pragma: no cover
        return f"Branch({self.id}, {format_params(self.params)})"
