"""Execution states ``(D, δ, μ)`` (Appendix A).

A state captures the situation after a stage executes: the set of available
datasets ``D``, the partition sizes at each node ``δ : N × D -> N₀``, and
the partitions kept in memory at each node ``μ : N -> 2^D``.  The live
version of this information is owned by the simulated cluster; this module
provides an immutable snapshot type used by tests, the Appendix B analysis,
and the metrics layer, together with the validity check (memory capacity is
never exceeded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Set, Tuple

NodeId = str
DatasetId = str


@dataclass(frozen=True)
class ExecutionState:
    """Immutable snapshot of cluster dataset placement after a stage.

    Attributes
    ----------
    datasets:
        The available dataset ids (``D``).
    sizes:
        ``δ``: ``(node, dataset) -> partition bytes at that node``.
    in_memory:
        ``μ``: ``node -> frozenset of dataset ids kept in memory there``.
    memory_limits:
        ``mem(n)`` for every node.
    """

    datasets: FrozenSet[DatasetId]
    sizes: Mapping[Tuple[NodeId, DatasetId], int]
    in_memory: Mapping[NodeId, FrozenSet[DatasetId]]
    memory_limits: Mapping[NodeId, int]

    def memory_used(self, node: NodeId) -> int:
        """Total bytes of partitions held in memory at ``node``."""
        return sum(
            self.sizes.get((node, ds), 0) for ds in self.in_memory.get(node, frozenset())
        )

    def is_valid(self) -> bool:
        """Appendix A validity: no node exceeds its memory limit."""
        return all(
            self.memory_used(node) <= limit for node, limit in self.memory_limits.items()
        )

    def datasets_on_node(self, node: NodeId) -> Set[DatasetId]:
        """All dataset ids with a partition (memory or disk) at ``node``."""
        return {ds for (n, ds) in self.sizes if n == node}


def still_needed_datasets(
    state: ExecutionState,
    consumers: Mapping[DatasetId, Set[str]],
    executed_operators: Set[str],
) -> Set[DatasetId]:
    """``D_s^c`` of Theorem 4.3: datasets still needed to finish execution.

    A dataset is still needed if at least one of its consuming operators has
    not executed yet: ``D_s^c = {d ∈ D | con(d) \\ V_T ≠ ∅}``.
    """
    return {
        ds
        for ds in state.datasets
        if consumers.get(ds, set()) - executed_operators
    }
