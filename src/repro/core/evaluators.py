"""Evaluator functions for choose operators (Definition 3.3).

An evaluator ``φ_v : D -> R`` scores the result dataset of one branch.  The
paper exploits two properties of evaluators *over the ordered choices of an
explorable* (Table 1):

* ``monotone`` — scores only improve (or only worsen) as the explorable's
  choice moves through its ordered domain, so once scores start losing the
  remaining branches can be skipped;
* ``convex`` — scores have a single optimum over the ordered domain, so a
  directional/binary search finds it without visiting every branch.

These are declared properties: the library trusts the user-supplied flags,
exactly as the paper requires users to provide them for domain-specific
functions.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .datasets import Dataset


class Evaluator:
    """Base class scoring one branch's result dataset.

    Subclasses implement :meth:`score_payload`, which receives the fully
    concatenated payload of the branch dataset.  The engine executes
    evaluators on worker nodes (the paper splits choose into a worker-side
    evaluator and a master-side selection), charging ``cost_factor`` compute
    units per input byte.
    """

    def __init__(
        self,
        monotone: bool = False,
        convex: bool = False,
        cost_factor: float = 0.01,
        name: Optional[str] = None,
    ):
        self.monotone = monotone
        self.convex = convex
        self.cost_factor = cost_factor
        self.name = name or type(self).__name__

    def score(self, dataset: Dataset) -> float:
        """Score a branch dataset; higher is not implied — selection decides."""
        return float(self.score_payload(dataset.collect()))

    def score_payload(self, payload: Any) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        flags = []
        if self.monotone:
            flags.append("monotone")
        if self.convex:
            flags.append("convex")
        return f"{self.name}({', '.join(flags) or 'none'})"


class SizeEvaluator(Evaluator):
    """Scores a dataset by its cardinality (``φ_v(d) = |d|``).

    The paper's example evaluator, e.g. to detect overly aggressive
    filtering.  Cardinality is monotone over a widening filter threshold,
    so ``monotone=True`` by default.
    """

    def __init__(self, monotone: bool = True, **kwargs):
        super().__init__(monotone=monotone, cost_factor=kwargs.pop("cost_factor", 0.0), **kwargs)

    def score(self, dataset: Dataset) -> float:
        return float(sum(_payload_len(p.data) for p in dataset.partitions))

    def score_payload(self, payload: Any) -> float:
        return float(_payload_len(payload))


class RatioEvaluator(Evaluator):
    """Scores a dataset by its cardinality relative to a reference count.

    Used by the time-series job: the ratio of surviving (non-masked) points
    must not fall below a threshold.
    """

    def __init__(self, reference_count: int, **kwargs):
        super().__init__(cost_factor=kwargs.pop("cost_factor", 0.0), **kwargs)
        self.reference_count = max(1, int(reference_count))

    def score(self, dataset: Dataset) -> float:
        total = sum(_payload_len(p.data) for p in dataset.partitions)
        return total / self.reference_count

    def score_payload(self, payload: Any) -> float:
        return _payload_len(payload) / self.reference_count


class CallableEvaluator(Evaluator):
    """Wraps an arbitrary ``fn(payload) -> float`` as an evaluator.

    Property flags must be supplied by the user for domain-specific
    functions, mirroring the paper's requirement.
    """

    def __init__(self, fn: Callable[[Any], float], name: Optional[str] = None, **kwargs):
        super().__init__(name=name or getattr(fn, "__name__", "callable"), **kwargs)
        self.fn = fn

    def score_payload(self, payload: Any) -> float:
        return float(self.fn(payload))


class MetadataEvaluator(Evaluator):
    """Scores a dataset from metadata only (nominal size in bytes).

    Runs at zero compute cost: it never touches the payload, modelling
    evaluators that operate on dataset metadata.
    """

    def __init__(self, **kwargs):
        super().__init__(cost_factor=0.0, **kwargs)

    def score(self, dataset: Dataset) -> float:
        return float(dataset.nominal_bytes)

    def score_payload(self, payload: Any) -> float:  # pragma: no cover - unused
        return 0.0


def _payload_len(payload: Any) -> int:
    try:
        return len(payload)
    except TypeError:
        return 1
