"""Exception hierarchy for the meta-dataflow library.

All library errors derive from :class:`MDFError` so that callers can catch a
single base class.  Specific subclasses signal structural problems with a
dataflow graph, invalid explore/choose usage, and execution-time failures.
"""

from __future__ import annotations


class MDFError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(MDFError):
    """A dataflow graph is structurally invalid (cycle, disconnected, ...)."""


class ValidationError(MDFError):
    """An MDF violates the structural constraints of Definition 3.1."""


class SchedulingError(MDFError):
    """The scheduler reached an inconsistent state (e.g. no runnable stage)."""


class ExecutionError(MDFError):
    """An operator function failed while executing a task."""

    def __init__(self, operator_name: str, message: str):
        super().__init__(f"operator {operator_name!r}: {message}")
        self.operator_name = operator_name
        self.message = message

    def __reduce__(self):
        # default exception pickling replays args=(formatted string,) into
        # __init__(operator_name, message); rebuild from the real parts so
        # the error survives a process boundary intact
        return (ExecutionError, (self.operator_name, self.message))


class MemoryError_(MDFError):
    """A partition cannot fit in node memory even after evicting everything."""


class FaultError(MDFError):
    """An injected node failure could not be recovered from."""
