"""Datasets and partitions: the data model of Appendix A.

The paper models processed data as finite datasets from a domain ``D`` that
support concatenation (``d ⊕ d'``) and are split into *partitions* that live
on different cluster nodes.  A partition carries two notions of size:

* the *real* payload, a Python object (list, numpy array, dict, ...) that
  operator functions actually transform, and
* a *nominal* byte size used by the simulated cluster for memory accounting.

Decoupling the two lets the benchmarks exercise paper-scale memory pressure
(gigabytes per worker) while the in-process payloads stay laptop-sized.  The
nominal size defaults to an estimate of the payload's real footprint scaled
by a per-dataset factor.
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Iterable, List, Optional

import numpy as np

_dataset_counter = itertools.count()


def estimate_payload_bytes(data: Any) -> int:
    """Estimate the in-memory footprint of a partition payload in bytes.

    numpy arrays report their exact buffer size; lists and tuples are
    estimated from a sample of their elements; everything else falls back to
    :func:`sys.getsizeof`.
    """
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (list, tuple)):
        n = len(data)
        if n == 0:
            return sys.getsizeof(data)
        sample = data[: min(n, 16)]
        per_item = sum(estimate_payload_bytes(x) for x in sample) / len(sample)
        return int(sys.getsizeof(data) + per_item * n)
    if isinstance(data, dict):
        n = len(data)
        if n == 0:
            return sys.getsizeof(data)
        items = list(itertools.islice(data.items(), 16))
        per_item = sum(
            estimate_payload_bytes(k) + estimate_payload_bytes(v) for k, v in items
        ) / len(items)
        return int(sys.getsizeof(data) + per_item * n)
    return int(sys.getsizeof(data))


class Partition:
    """One horizontal slice of a dataset, assigned to a single cluster node.

    Attributes
    ----------
    dataset_id:
        Identifier of the owning :class:`Dataset`.
    index:
        Position of this partition within the dataset (``0..n-1``).
    data:
        The real payload transformed by operator functions.
    nominal_bytes:
        Size used for memory accounting in the simulated cluster.
    """

    __slots__ = ("dataset_id", "index", "data", "nominal_bytes")

    def __init__(self, dataset_id: str, index: int, data: Any, nominal_bytes: Optional[int] = None):
        self.dataset_id = dataset_id
        self.index = index
        self.data = data
        if nominal_bytes is None:
            nominal_bytes = estimate_payload_bytes(data)
        self.nominal_bytes = int(nominal_bytes)

    @property
    def key(self) -> tuple:
        """Unique key ``(dataset_id, index)`` used by node partition stores."""
        return (self.dataset_id, self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition({self.dataset_id}[{self.index}], {self.nominal_bytes}B)"


class Dataset:
    """A partitioned dataset (domain ``D`` of Appendix A).

    Datasets are produced by operators during execution.  ``producer`` is the
    name of the operator that created the dataset, which anticipatory memory
    management uses to derive future access counts (``pro(d)`` in Alg. 2).
    """

    def __init__(
        self,
        partitions: List[Partition],
        dataset_id: Optional[str] = None,
        producer: Optional[str] = None,
    ):
        if dataset_id is None:
            dataset_id = f"ds-{next(_dataset_counter)}"
        self.id = dataset_id
        self.partitions = partitions
        self.producer = producer
        for p in partitions:
            p.dataset_id = dataset_id

    @classmethod
    def from_data(
        cls,
        data: Any,
        num_partitions: int = 1,
        dataset_id: Optional[str] = None,
        producer: Optional[str] = None,
        nominal_bytes: Optional[int] = None,
    ) -> "Dataset":
        """Build a dataset by splitting ``data`` into ``num_partitions`` slices.

        Lists and numpy arrays are split contiguously; any other payload is
        replicated into a single partition.  ``nominal_bytes``, when given, is
        the *total* nominal size, divided evenly across partitions.
        """
        chunks = split_payload(data, num_partitions)
        per_part = None if nominal_bytes is None else max(1, nominal_bytes // len(chunks))
        ds_id = dataset_id if dataset_id is not None else f"ds-{next(_dataset_counter)}"
        parts = [Partition(ds_id, i, chunk, per_part) for i, chunk in enumerate(chunks)]
        return cls(parts, dataset_id=ds_id, producer=producer)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def nominal_bytes(self) -> int:
        """Total nominal size across all partitions."""
        return sum(p.nominal_bytes for p in self.partitions)

    def collect(self) -> Any:
        """Materialise the full payload by concatenating all partitions.

        numpy partitions concatenate along axis 0; list partitions extend;
        a single partition returns its payload unchanged.
        """
        payloads = [p.data for p in self.partitions]
        return concat_payloads(payloads)

    def concat(self, other: "Dataset") -> "Dataset":
        """Dataset concatenation ``d ⊕ d'`` (Appendix A)."""
        parts = []
        for i, p in enumerate(self.partitions + other.partitions):
            parts.append(Partition("", i, p.data, p.nominal_bytes))
        return Dataset(parts, producer=self.producer)

    def __add__(self, other: "Dataset") -> "Dataset":
        return self.concat(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.id}, parts={self.num_partitions}, {self.nominal_bytes}B)"


def split_payload(data: Any, num_partitions: int) -> List[Any]:
    """Split a payload into roughly equal contiguous chunks.

    numpy arrays use :func:`numpy.array_split`; sequences are sliced; any
    other payload yields a single chunk.  At least one chunk is always
    returned, and empty datasets produce ``num_partitions`` empty chunks so
    partition placement stays aligned with the cluster.
    """
    if num_partitions <= 1:
        return [data]
    if hasattr(data, "split_into"):
        # payload-defined partitioning protocol (e.g. labelled datasets)
        return list(data.split_into(num_partitions))
    if isinstance(data, np.ndarray):
        return [chunk for chunk in np.array_split(data, num_partitions)]
    if isinstance(data, (list, tuple)):
        n = len(data)
        chunks = []
        base, extra = divmod(n, num_partitions)
        start = 0
        for i in range(num_partitions):
            size = base + (1 if i < extra else 0)
            chunks.append(list(data[start : start + size]))
            start += size
        return chunks
    return [data]


class PayloadSplitter:
    """Callable splitting one payload into partitions, memoizing the split.

    ``Source.from_data`` used to close over the payload and call
    :func:`split_payload` once *per partition*, re-splitting the full
    payload ``P`` times per ``generate()`` (O(P²) work) and again on every
    re-run of the same source.  This wrapper performs the split once per
    distinct partition count and serves slices from the memo.

    Instances describe their own cache identity via ``fingerprint_token``
    (the payload content), so sources built this way stay fingerprintable
    by :mod:`repro.cache.fingerprint` despite the mutable memo.
    """

    __slots__ = ("data", "_chunks")

    def __init__(self, data: Any):
        self.data = data
        self._chunks: dict = {}

    def __call__(self, index: int, num_partitions: int) -> Any:
        chunks = self._chunks.get(num_partitions)
        if chunks is None:
            chunks = self._chunks[num_partitions] = split_payload(
                self.data, num_partitions
            )
        return chunks[index]

    def fingerprint_token(self) -> Any:
        return self.data


def concat_payloads(payloads: Iterable[Any]) -> Any:
    """Concatenate partition payloads back into a single payload (``⊕``)."""
    payloads = list(payloads)
    if not payloads:
        return []
    if len(payloads) == 1:
        return payloads[0]
    first = payloads[0]
    if hasattr(first, "concat_with"):
        # payload-defined concatenation protocol (dual of ``split_into``)
        merged = first
        for p in payloads[1:]:
            merged = merged.concat_with(p)
        return merged
    if isinstance(first, np.ndarray):
        return np.concatenate(payloads, axis=0)
    if isinstance(first, list):
        out: List[Any] = []
        for p in payloads:
            out.extend(p)
        return out
    if isinstance(first, dict):
        merged: dict = {}
        for p in payloads:
            merged.update(p)
        return merged
    return payloads
