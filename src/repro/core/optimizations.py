"""Table 1 of the paper: which optimisations apply to a choose operator.

The two optimisations are:

* *incremental discard* — datasets of losing branches are freed the moment
  the selection rules them out, possible iff the selection function is
  associative;
* *superfluous-branch pruning* — branches that have not executed yet are
  skipped entirely, possible iff the selection is associative **and** at
  least one of (a) the evaluator is monotone over the explorable's ordered
  choices, (b) the evaluator is convex over them, or (c) the selection is
  non-exhaustive (e.g. first-k-above-threshold).

This module encodes exactly that matrix plus the directional reasoning a
scheduler applies when a monotone or convex evaluator lets it conclude that
remaining branches are inferior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .evaluators import Evaluator
from .selection import SelectionFunction, TopK


@dataclass(frozen=True)
class OptimizationPlan:
    """The optimisations enabled for one choose operator (one Table 1 row)."""

    discard_incrementally: bool
    prune_superfluous: bool

    def __str__(self) -> str:  # pragma: no cover
        flags = []
        if self.discard_incrementally:
            flags.append("incremental-discard")
        if self.prune_superfluous:
            flags.append("superfluous-prune")
        return "+".join(flags) or "none"


def plan_optimizations(evaluator: Evaluator, selection: SelectionFunction) -> OptimizationPlan:
    """Derive the Table 1 optimisation row for an evaluator/selection pair."""
    incremental = selection.associative
    prune = selection.associative and (
        evaluator.monotone or evaluator.convex or selection.non_exhaustive
    )
    return OptimizationPlan(discard_incrementally=incremental, prune_superfluous=prune)


class MonotonePruner:
    """Early termination for monotone evaluators over ordered branches.

    When branches are executed in the order of the explorable's domain and
    the evaluator is monotone, the scheduler can stop as soon as scores start
    losing: for a best-score selection (top-k / max / min) every later branch
    is provably worse once the trend moves away from the optimum.

    The pruner watches the score sequence.  For a ``largest=True`` top-k,
    once ``k`` scores have been collected and the trend is strictly
    decreasing below the current k-th best, the remaining branches cannot
    enter the top-k and are superfluous.
    """

    def __init__(self, selection: SelectionFunction, patience: int = 1):
        self.patience = max(1, patience)
        self._scores: List[float] = []
        self._worsening = 0
        if isinstance(selection, TopK):
            self._k = selection.k
            self._largest = selection.largest
        else:
            self._k = 1
            self._largest = True

    def observe(self, score: float) -> bool:
        """Record a score; returns True when remaining branches can be skipped."""
        self._scores.append(score)
        if len(self._scores) < 2:
            return False
        prev, cur = self._scores[-2], self._scores[-1]
        moved_away = cur < prev if self._largest else cur > prev
        self._worsening = self._worsening + 1 if moved_away else 0
        if len(self._scores) < self._k:
            return False
        kth_best = sorted(self._scores, reverse=self._largest)[self._k - 1]
        losing = cur < kth_best if self._largest else cur > kth_best
        return self._worsening >= self.patience and losing


class ConvexPruner:
    """Early termination for convex evaluators over ordered branches.

    A convex score curve over the ordered explorable domain has a single
    optimum; once the scores pass it and start worsening, the remaining
    branches on the same side are provably inferior.  This mirrors the
    paper's observation that convexity permits identifying the selected
    branch via directional (binary-search-like) probing.
    """

    def __init__(self, selection: SelectionFunction, patience: int = 2):
        self.patience = max(1, patience)
        self._scores: List[float] = []
        self._worsening = 0
        self._largest = getattr(selection, "largest", True)

    def observe(self, score: float) -> bool:
        self._scores.append(score)
        if len(self._scores) < 2:
            return False
        prev, cur = self._scores[-2], self._scores[-1]
        worsened = cur < prev if self._largest else cur > prev
        self._worsening = self._worsening + 1 if worsened else 0
        return self._worsening >= self.patience


def make_pruner(
    evaluator: Evaluator, selection: SelectionFunction, patience: Optional[int] = None
):
    """Pick the pruning helper matching the evaluator's declared property.

    Returns ``None`` when neither monotonicity nor convexity is declared —
    in that case only non-exhaustive selections can prune, which the
    incremental selector itself handles through ``done``.
    """
    if evaluator.convex:
        return ConvexPruner(selection, patience=patience or 2)
    if evaluator.monotone:
        return MonotonePruner(selection, patience=patience or 1)
    return None


def table1_rows(
    pairs: Sequence[Tuple[str, Evaluator, str, SelectionFunction]]
) -> List[Tuple[str, str, bool, bool]]:
    """Render the Table 1 matrix for a list of evaluator/selection pairs.

    Returns rows ``(evaluator_label, selection_label, incremental, prune)``
    suitable for printing next to the paper's table.
    """
    rows = []
    for ev_label, evaluator, sel_label, selection in pairs:
        plan = plan_optimizations(evaluator, selection)
        rows.append((ev_label, sel_label, plan.discard_incrementally, plan.prune_superfluous))
    return rows
