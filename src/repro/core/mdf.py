"""The meta-dataflow graph (Definition 3.1).

An MDF is a dataflow graph with two distinguished vertex sets: explore
operators (``|•v| = 1``, ``|v•| > 1``) and choose operators (``|•v| > 1``,
``|v•| = 1``).  A path between an explore and its matching choose is a
*branch*, representing one setting of an explorable.  Scopes may nest:
a branch can itself contain further explore/choose pairs.

The MDF tracks its scopes explicitly (explore → matching choose → ordered
branches) because branch order is semantically meaningful: the scheduler's
sorted hints and the monotone/convex pruning reason over the order of the
explorable's domain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from .choose import ChooseOperator
from .dataflow import DataflowGraph
from .errors import ValidationError
from .explore import Branch, ExploreOperator
from .operators import Operator


class Scope:
    """One exploration scope: an explore, its matching choose, its branches."""

    def __init__(self, explore: ExploreOperator, choose: Optional[ChooseOperator] = None):
        self.explore = explore
        self.choose = choose
        self.branches: List[Branch] = []

    @property
    def closed(self) -> bool:
        return self.choose is not None

    def branch_by_id(self, branch_id: str) -> Branch:
        for branch in self.branches:
            if branch.id == branch_id:
                return branch
        raise KeyError(branch_id)

    def __repr__(self) -> str:  # pragma: no cover
        choose = self.choose.name if self.choose else "<open>"
        return f"Scope({self.explore.name} -> {choose}, |branches|={len(self.branches)})"


class MDF(DataflowGraph):
    """A meta-dataflow: dataflow graph + explore/choose scope structure."""

    def __init__(self, name: str = "mdf"):
        super().__init__()
        self.name = name
        self.scopes: Dict[str, Scope] = {}  # keyed by explore name
        self._branch_of: Dict[str, str] = {}  # operator name -> innermost branch id

    # ------------------------------------------------------------ explores
    @property
    def explores(self) -> List[ExploreOperator]:
        return [s.explore for s in self.scopes.values()]

    @property
    def chooses(self) -> List[ChooseOperator]:
        return [s.choose for s in self.scopes.values() if s.choose is not None]

    def is_explore(self, op: Operator) -> bool:
        return isinstance(op, ExploreOperator)

    def is_choose(self, op: Operator) -> bool:
        return isinstance(op, ChooseOperator)

    def open_scope(self, explore: ExploreOperator, upstream: Operator) -> Scope:
        """Register an explore fed by ``upstream`` and open its scope."""
        self.add_operator(explore)
        self.add_edge(upstream, explore)
        scope = Scope(explore)
        self.scopes[explore.name] = scope
        # The explore itself belongs to the enclosing branch, if any.
        if upstream.name in self._branch_of:
            self._branch_of[explore.name] = self._branch_of[upstream.name]
        return scope

    def add_branch(self, explore: ExploreOperator, ops: Sequence[Operator]) -> Branch:
        """Attach one branch (ordered operator chain) to an open scope.

        The branch's parameter combination is taken from the explore's grid
        in declaration order; branches must therefore be added in grid order.
        Operators inside the chain are expected to already be wired to each
        other (nested scopes included); only the edge from the explore to the
        first operator is added here.
        """
        scope = self.scopes[explore.name]
        if scope.closed:
            raise ValidationError(f"scope of {explore.name!r} already closed")
        index = len(scope.branches)
        if index >= explore.fanout:
            raise ValidationError(
                f"explore {explore.name!r} expects {explore.fanout} branches"
            )
        ops = list(ops)
        if not ops:
            raise ValidationError("a branch needs at least one operator")
        params = explore.params_for_branch(index)
        branch = Branch(explore.name, index, params, ops)
        self.add_edge(explore, ops[0])
        enclosing = self._branch_of.get(explore.name)
        for op in ops:
            # Innermost wins: do not overwrite assignments made by nested
            # scopes that were built before this outer branch is registered.
            if op.name not in self._branch_of or self._branch_of[op.name] == enclosing:
                self._branch_of[op.name] = branch.id
        scope.branches.append(branch)
        return branch

    def close_scope(self, explore: ExploreOperator, choose: ChooseOperator) -> Scope:
        """Close a scope: wire every branch tail into the choose operator."""
        scope = self.scopes[explore.name]
        if scope.closed:
            raise ValidationError(f"scope of {explore.name!r} already closed")
        if len(scope.branches) != explore.fanout:
            raise ValidationError(
                f"explore {explore.name!r} has {len(scope.branches)} branches, "
                f"expected {explore.fanout}"
            )
        self.add_operator(choose)
        for branch in scope.branches:
            self.add_edge(branch.ops[-1], choose)
        scope.choose = choose
        if explore.name in self._branch_of:
            self._branch_of[choose.name] = self._branch_of[explore.name]
        return scope

    # -------------------------------------------------------------- lookups
    def scope_of_choose(self, choose: ChooseOperator) -> Scope:
        for scope in self.scopes.values():
            if scope.choose is not None and scope.choose.name == choose.name:
                return scope
        raise KeyError(choose.name)

    def matching_choose(self, explore: ExploreOperator) -> ChooseOperator:
        scope = self.scopes[explore.name]
        if scope.choose is None:
            raise ValidationError(f"scope of {explore.name!r} is not closed")
        return scope.choose

    def branch_of(self, op: Operator) -> Optional[str]:
        """Innermost branch id containing ``op`` (None for scope-free ops)."""
        return self._branch_of.get(op.name)

    def branch_operators(self, branch: Branch) -> List[Operator]:
        """All operators of a branch, including nested scope structures.

        These are exactly the operators strictly between the branch's
        explore and the matching choose along this branch, i.e. the chain
        operators plus any nested explores/chooses and their branch
        operators.
        """
        result: List[Operator] = []
        seen: Set[str] = set()

        def visit(op: Operator) -> None:
            if op.name in seen:
                return
            seen.add(op.name)
            result.append(op)
            if isinstance(op, ExploreOperator):
                scope = self.scopes[op.name]
                for nested in scope.branches:
                    for inner in nested.ops:
                        visit(inner)
                if scope.choose is not None:
                    visit(scope.choose)

        for op in branch.ops:
            visit(op)
        return result

    def nesting_depth(self, op: Operator) -> int:
        """Number of enclosing scopes around ``op`` (0 outside all scopes)."""
        depth = 0
        branch_id = self._branch_of.get(op.name)
        while branch_id is not None:
            depth += 1
            explore_name = branch_id.split("#", 1)[0]
            branch_id = self._branch_of.get(explore_name)
        return depth

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Definition 3.1 checks on top of the base DAG validation."""
        super().validate()
        for scope in self.scopes.values():
            explore = scope.explore
            if self.in_degree(explore) != 1:
                raise ValidationError(
                    f"explore {explore.name!r} must have exactly one input "
                    f"(has {self.in_degree(explore)})"
                )
            if self.out_degree(explore) <= 1:
                raise ValidationError(
                    f"explore {explore.name!r} must have more than one output "
                    f"(has {self.out_degree(explore)})"
                )
            if not scope.closed:
                raise ValidationError(f"explore {explore.name!r} has no matching choose")
            choose = scope.choose
            if self.in_degree(choose) <= 1:
                raise ValidationError(
                    f"choose {choose.name!r} must have more than one input "
                    f"(has {self.in_degree(choose)})"
                )
            if self.out_degree(choose) != 1:
                raise ValidationError(
                    f"choose {choose.name!r} must have exactly one output "
                    f"(has {self.out_degree(choose)})"
                )
            for branch in scope.branches:
                if not self.has_path(explore, choose):
                    raise ValidationError(
                        f"no path from {explore.name!r} to {choose.name!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MDF({self.name!r}, |V|={len(self)}, "
            f"explores={len(self.scopes)})"
        )
