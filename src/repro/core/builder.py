"""Fluent construction API for meta-dataflows.

Mirrors the paper's Scala listings (Figs. 3b, 21–23)::

    val result = EXPLORE(t=seq(1.5, 2), k=seq("gaussian", "top-hat"), {
        val filtered  = Outlier.filter(src, t)
        val estimated = KDE.estimate(filtered, k, 0.2)
    }).CHOOSE(mise(estimated), min)

becomes::

    b = MDFBuilder("kde")
    src = b.read(Source.from_data(values))
    result = src.explore(
        {"t": [1.5, 2.0], "k": ["gaussian", "top-hat"]},
        lambda pipe, p: (pipe
            .transform(outlier_filter(p["t"]), name=f"outlier-{p['t']}")
            .transform(kde_estimate(p["k"], 0.2), name=f"kde-{p['k']}")),
    ).choose(CallableEvaluator(mise), Min())
    result.write()
    mdf = b.build()

Branch bodies are plain callables ``(pipe, params) -> pipe``; they may nest
further ``explore(...).choose(...)`` calls, producing hierarchically nested
scopes exactly as Definition 3.1 allows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .choose import ChooseOperator
from .errors import ValidationError
from .evaluators import Evaluator
from .explore import ExploreOperator, ParameterGrid, format_params
from .mdf import MDF
from .operators import (
    Aggregate,
    Filter,
    FlatMap,
    GroupBy,
    Identity,
    Join,
    Map,
    Operator,
    Sink,
    Source,
    Transform,
)
from .selection import SelectionFunction

BranchBody = Callable[["Pipe", Dict[str, Any]], "Pipe"]


class MDFBuilder:
    """Builds an :class:`~repro.core.mdf.MDF` through a fluent pipe API."""

    def __init__(self, name: str = "mdf"):
        self.mdf = MDF(name)
        self._sources: List[Source] = []
        self._recorders: List[List[Operator]] = []

    # ------------------------------------------------------------- plumbing
    def _record(self, op: Operator) -> None:
        for recorder in self._recorders:
            recorder.append(op)

    def read(self, source: Source) -> "Pipe":
        """Register a source operator and return a pipe rooted at it."""
        self.mdf.add_operator(source)
        self._sources.append(source)
        self._record(source)
        return Pipe(self, source)

    def read_data(
        self, data: Any, name: Optional[str] = None, nominal_bytes: Optional[int] = None
    ) -> "Pipe":
        """Convenience: wrap an in-memory payload as a source."""
        return self.read(Source.from_data(data, name=name, nominal_bytes=nominal_bytes))

    def build(self) -> MDF:
        """Validate and return the constructed MDF.

        A choose operator that ends up as a graph sink gets a pass-through
        sink appended so the Definition 3.1 out-degree constraint holds.
        """
        for op in list(self.mdf.sinks()):
            if isinstance(op, ChooseOperator):
                sink = Sink(name=f"{op.name}-sink")
                self.mdf.add_edge(op, sink)
        self.mdf.validate()
        return self.mdf


class Pipe:
    """A position in the dataflow under construction (the last operator)."""

    def __init__(self, builder: MDFBuilder, op: Operator):
        self.builder = builder
        self.op = op

    # -------------------------------------------------------- chaining ops
    def apply(self, op: Operator) -> "Pipe":
        """Append an arbitrary operator after the current position."""
        self.builder.mdf.add_edge(self.op, op)
        self.builder._record(op)
        return Pipe(self.builder, op)

    def map(self, fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs) -> "Pipe":
        return self.apply(Map(fn, name=name, **kwargs))

    def filter(
        self, predicate: Callable[[Any], bool], name: Optional[str] = None, **kwargs
    ) -> "Pipe":
        return self.apply(Filter(predicate, name=name, **kwargs))

    def flat_map(
        self, fn: Callable[[Any], List[Any]], name: Optional[str] = None, **kwargs
    ) -> "Pipe":
        return self.apply(FlatMap(fn, name=name, **kwargs))

    def transform(
        self, fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs
    ) -> "Pipe":
        """Whole-partition transformation (narrow)."""
        return self.apply(Transform(fn, name=name, **kwargs))

    def aggregate(
        self, fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs
    ) -> "Pipe":
        """Whole-dataset transformation (wide: shuffles all partitions)."""
        return self.apply(Aggregate(fn, name=name, **kwargs))

    def group_by(
        self, key_fn: Callable[[Any], Any], name: Optional[str] = None, **kwargs
    ) -> "Pipe":
        return self.apply(GroupBy(key_fn, name=name, **kwargs))

    def identity(self, name: Optional[str] = None) -> "Pipe":
        return self.apply(Identity(name=name))

    def join(
        self,
        other: "Pipe",
        fn: Callable[[Any, Any], Any],
        name: Optional[str] = None,
        **kwargs,
    ) -> "Pipe":
        """Two-input join: ``fn(self_payload, other_payload)`` (wide)."""
        op = Join(fn, name=name, **kwargs)
        op.input_names = [self.op.name, other.op.name]
        self.builder.mdf.add_edge(self.op, op)
        self.builder.mdf.add_edge(other.op, op)
        self.builder._record(op)
        return Pipe(self.builder, op)

    def write(
        self, fn: Optional[Callable[[Any], Any]] = None, name: Optional[str] = None
    ) -> "Pipe":
        """Terminate the pipeline with a sink operator."""
        return self.apply(Sink(fn, name=name))

    # -------------------------------------------------------------- explore
    def explore(
        self,
        params: Mapping[str, Sequence[Any]],
        body: BranchBody,
        name: Optional[str] = None,
    ) -> "ExploredPipe":
        """Open an exploration scope over the cartesian parameter grid.

        ``body(pipe, combo)`` is invoked once per parameter combination with
        a pipe rooted at the explore operator; it must return the pipe at the
        branch's tail.  The matching :meth:`ExploredPipe.choose` call closes
        the scope.
        """
        grid = ParameterGrid.from_mapping(params)
        explore = ExploreOperator(grid, name=name)
        mdf = self.builder.mdf
        mdf.open_scope(explore, self.op)
        self.builder._record(explore)

        tails: List[Operator] = []
        for combo in explore.branch_params:
            recorder: List[Operator] = []
            self.builder._recorders.append(recorder)
            try:
                tail_pipe = body(Pipe(self.builder, explore), dict(combo))
            finally:
                self.builder._recorders.pop()
            if tail_pipe is None or tail_pipe.op is explore:
                raise ValidationError(
                    f"branch body for {format_params(combo)} must add at least "
                    "one operator and return the resulting pipe"
                )
            ops = [op for op in recorder if op is not tail_pipe.op] + [tail_pipe.op]
            mdf.add_branch(explore, ops)
            tails.append(tail_pipe.op)
        return ExploredPipe(self.builder, explore, tails)


class ExploredPipe:
    """An open exploration scope awaiting its :meth:`choose`."""

    def __init__(self, builder: MDFBuilder, explore: ExploreOperator, tails: List[Operator]):
        self.builder = builder
        self.explore = explore
        self.tails = tails

    def choose(
        self,
        evaluator: Evaluator,
        selection: SelectionFunction,
        name: Optional[str] = None,
    ) -> Pipe:
        """Close the scope with a choose operator and return its pipe."""
        choose = ChooseOperator(evaluator, selection, name=name)
        self.builder.mdf.close_scope(self.explore, choose)
        self.builder._record(choose)
        return Pipe(self.builder, choose)
