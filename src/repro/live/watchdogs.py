"""Live watchdogs: trace subscribers that raise structured alerts.

Each watchdog folds the committed event stream into a small anomaly
detector and raises :class:`Alert` records when a run misbehaves:

* :class:`StragglerWatchdog` — a stage's observed wall exceeded ``k×``
  its cost-model (pessimistic) estimate, or one node's io+compute wall
  dwarfed the other nodes' on the same stage (the §6 straggler shape);
* :class:`MemoryPressureWatchdog` — spill-eviction rate over a sliding
  simulated-time window crossed a threshold (the AMM thrashing shape);
* :class:`RetryStormWatchdog` — a node accumulated too many task
  retries, or exhausted its retry budget outright;
* :class:`StallWatchdog` — the *wall* clock advanced past a threshold
  with no new event while the job was unfinished (a hung producer; only
  meaningful when tailing a live file, so it exposes ``poll()`` for the
  CLI loop rather than reacting to events alone).

Alerts are appended to the watchdog's ``alerts`` list and — when a
metrics registry is wired (``run_mdf(live=...)`` wires the cluster's) —
counted under ``live_alerts`` with the alert kind as the ``policy``
label, so post-run tooling and the trace→metrics bridge diff can see
exactly what fired.  Watchdogs are observers: they never mutate engine
state, and a clean run must raise nothing (asserted in CI's live-smoke
job and ``tests/live/test_watchdogs.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from ..trace.events import TraceEvent
from .plan import LivePlan

#: the alert kinds the live layer and the service plane can raise
ALERT_KINDS = (
    "straggler", "memory_pressure", "retry_storm", "stall",
    "fairness", "slo",
)


@dataclass(frozen=True)
class Alert:
    """One structured anomaly record raised by a watchdog."""

    kind: str  # one of ALERT_KINDS
    t: float  # simulated time when raised (wall time for stalls)
    subject: str  # the stage/node the alert is about
    message: str
    details: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.kind}] t={self.t:.3f} {self.subject}: {self.message}"


class Watchdog:
    """Base: alert storage + obs-registry accounting.

    ``counter_name`` is the registry family alerts are counted under —
    ``live_alerts`` for the per-job watchdogs here, ``service_alerts``
    for the service-plane auditors (:mod:`repro.service.obs`), which
    subclass this for the alert/counting machinery while being fed
    service events rather than trace events.
    """

    kind = "base"
    counter_name = "live_alerts"

    def __init__(self, registry=None):
        self.registry = registry
        self.alerts: List[Alert] = []

    def __call__(self, event: TraceEvent) -> None:
        self.on_event(event)

    def on_event(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def _raise(
        self,
        t: float,
        subject: str,
        message: str,
        details: Optional[Dict[str, float]] = None,
        **labels: str,
    ) -> Alert:
        alert = Alert(self.kind, t, subject, message, details or {})
        self.alerts.append(alert)
        if self.registry is not None:
            self.registry.counter(
                self.counter_name, policy=self.kind, **labels
            ).inc()
        return alert


class StragglerWatchdog(Watchdog):
    """A stage ran far past its cost-model estimate (or one node did).

    Two detectors, both gated by ``min_seconds`` (micro-stages produce
    meaningless ratios):

    * **plan overrun** — observed wall > ``factor`` × the stage's
      *serialized* pessimistic estimate (per-stage pessimistic seconds ×
      worker count).  The per-stage estimate divides work evenly across
      workers, so worst-case data skew — every byte landing on one node
      — can stretch the wall to at most ~workers× the estimate while
      the modelled per-unit rates hold.  The serialized bound absorbs
      that whole skew range; exceeding even it by ``factor``× means the
      rates themselves degraded (an injected straggler, a hot node),
      not placement.  Needs a :class:`LivePlan`.
    * **node imbalance** — one node's ``io+compute`` wall exceeds
      ``node_factor`` × the *second-slowest* node's on the same stage.
      Data skew routinely concentrates work on one node, so this
      detector is off by default (``node_factor=None``); enable it when
      the workload is known to be balanced.
    """

    kind = "straggler"

    def __init__(
        self,
        plan: Optional[LivePlan] = None,
        registry=None,
        factor: float = 1.5,
        node_factor: Optional[float] = None,
        min_seconds: float = 0.005,
    ):
        super().__init__(registry)
        self.plan = plan
        self.factor = factor
        self.node_factor = node_factor
        self.min_seconds = min_seconds

    def on_event(self, event: TraceEvent) -> None:
        if event.kind != "stage_completed":
            return
        data = event.data
        stage_id = data["stage"]
        wall = float(data["finished"]) - float(data["started"])
        if wall < self.min_seconds:
            return
        if self.plan is not None:
            estimate = self.plan.stage_costs.get(stage_id)
            workers = max(1, self.plan.context.num_workers)
            if estimate:
                serialized = estimate * workers
                if wall > self.factor * serialized:
                    self._raise(
                        event.t,
                        stage_id,
                        f"wall {wall:.4f}s is {wall / serialized:.1f}x the "
                        f"skew-proof bound {serialized:.4f}s "
                        f"({workers}x the modelled {estimate:.4f}s; "
                        f"threshold {self.factor}x)",
                        {"wall": wall, "estimate": estimate,
                         "serialized": serialized},
                        stage=stage_id,
                    )
        if self.node_factor is not None:
            walls = {
                node: float(data["per_node_io"].get(node, 0.0))
                + float(data["per_node_compute"].get(node, 0.0))
                for node in set(data["per_node_io"]) | set(data["per_node_compute"])
            }
            busy = sorted(walls.items(), key=lambda kv: kv[1], reverse=True)
            if len(busy) >= 2 and busy[0][1] >= self.min_seconds:
                slowest, runner_up = busy[0], busy[1]
                if runner_up[1] > 0 and slowest[1] > self.node_factor * runner_up[1]:
                    self._raise(
                        event.t,
                        slowest[0],
                        f"node wall {slowest[1]:.4f}s on {stage_id} is "
                        f"{slowest[1] / runner_up[1]:.1f}x the next node's "
                        f"{runner_up[1]:.4f}s",
                        {"wall": slowest[1], "next": runner_up[1]},
                        stage=stage_id,
                        node=slowest[0],
                    )


class MemoryPressureWatchdog(Watchdog):
    """Spill-eviction rate over a sliding simulated-time window.

    Counts ``partition_evicted`` events with ``spilled=True`` (an
    in-memory eviction that keeps no disk copy frees memory without
    paying io — not pressure).  When ``threshold`` spills land within
    ``window`` simulated seconds, one alert fires and the watchdog backs
    off for ``cooldown`` simulated seconds so a sustained storm reads as
    a handful of alerts, not thousands.
    """

    kind = "memory_pressure"

    def __init__(
        self,
        registry=None,
        window: float = 0.5,
        threshold: int = 24,
        cooldown: float = 1.0,
    ):
        super().__init__(registry)
        self.window = window
        self.threshold = threshold
        self.cooldown = cooldown
        self._spill_times: Deque[float] = deque()
        self._muted_until = float("-inf")

    def on_event(self, event: TraceEvent) -> None:
        if event.kind != "partition_evicted" or not event.data.get("spilled"):
            return
        t = event.t
        self._spill_times.append(t)
        while self._spill_times and self._spill_times[0] < t - self.window:
            self._spill_times.popleft()
        if len(self._spill_times) >= self.threshold and t >= self._muted_until:
            self._muted_until = t + self.cooldown
            self._raise(
                t,
                event.data["node"],
                f"{len(self._spill_times)} spill evictions within "
                f"{self.window}s (threshold {self.threshold})",
                {"spills": float(len(self._spill_times)), "window": self.window},
                node=event.data["node"],
            )


class RetryStormWatchdog(Watchdog):
    """Task retries piling up on a node (§5 transient-failure storms).

    ``task_retried`` events carry the node and its cumulative attempt
    count; ``attempts`` reaching ``threshold`` raises once per node, and
    ``task_retries_exhausted`` (the run decommissioning a node after
    burning its whole retry budget) always raises.
    """

    kind = "retry_storm"

    def __init__(self, registry=None, threshold: int = 3):
        super().__init__(registry)
        self.threshold = threshold
        self._raised_for: Dict[str, bool] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.kind == "task_retried":
            node = event.data["node"]
            attempts = int(event.data["attempts"])
            if attempts >= self.threshold and not self._raised_for.get(node):
                self._raised_for[node] = True
                self._raise(
                    event.t,
                    node,
                    f"{attempts} task retries (threshold {self.threshold})",
                    {"attempts": float(attempts)},
                    node=node,
                )
        elif event.kind == "task_retries_exhausted":
            node = event.data["node"]
            self._raised_for[node] = True
            self._raise(
                event.t,
                node,
                f"retry budget exhausted after {event.data['attempts']} attempts",
                {"attempts": float(event.data["attempts"])},
                node=node,
            )


class StallWatchdog(Watchdog):
    """No new event for too long on the *wall* clock (hung producer).

    The simulated clock only moves when events are emitted, so a stall
    is invisible from inside the stream — it is the silence between
    events that matters.  The CLI's follow loop calls :meth:`poll`
    between file reads; ``clock`` is injectable (defaults to
    ``time.monotonic``) so tests can fake the passage of wall time.
    Fires at most once per silent period (a new event re-arms it).
    """

    kind = "stall"

    def __init__(
        self,
        registry=None,
        threshold_seconds: float = 10.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        super().__init__(registry)
        import time

        self.threshold_seconds = threshold_seconds
        self.clock = clock or time.monotonic
        self._last_event_wall = self.clock()
        self._last_event_t = 0.0
        self._armed = True
        self._finished = False

    def on_event(self, event: TraceEvent) -> None:
        self._last_event_wall = self.clock()
        self._last_event_t = max(self._last_event_t, event.t)
        self._armed = True

    def mark_finished(self) -> None:
        """A finished stream can no longer stall."""
        self._finished = True

    def poll(self) -> Optional[Alert]:
        """Check for silence; call periodically from the follow loop."""
        if self._finished or not self._armed:
            return None
        silent = self.clock() - self._last_event_wall
        if silent >= self.threshold_seconds:
            self._armed = False  # one alert per silent period
            return self._raise(
                self._last_event_t,
                "stream",
                f"no event for {silent:.1f} wall seconds "
                f"(threshold {self.threshold_seconds}s)",
                {"silent_seconds": silent},
            )
        return None


def default_watchdogs(
    plan: Optional[LivePlan] = None,
    registry=None,
    straggler_factor: float = 1.5,
    node_factor: Optional[float] = None,
) -> List[Watchdog]:
    """The standard in-run watchdog set (stall excluded — it needs a
    wall-clock poll loop, which an in-process run does not have)."""
    return [
        StragglerWatchdog(
            plan=plan, registry=registry, factor=straggler_factor,
            node_factor=node_factor,
        ),
        MemoryPressureWatchdog(registry=registry),
        RetryStormWatchdog(registry=registry),
    ]
