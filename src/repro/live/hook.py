"""Process-wide live hook (mirrors ``repro.prof.collect``).

Benchmark figures call :func:`repro.engine.runner.run_mdf` internally,
so ``python -m repro.bench --live`` cannot pass ``live=`` through their
signatures.  Instead it installs a :class:`LiveHook`: while installed,
every ``run_mdf`` call with ``live=None`` (the default) attaches a fresh
:class:`~repro.live.monitor.LiveMonitor` and records it — together with
a per-run stream/batch byte-identity verdict — on the hook.

An explicit ``live=False`` still wins over an installed hook, and an
explicit monitor/path is used as-is (the hook never double-attaches).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .monitor import LiveMonitor


@dataclass
class LiveRunRecord:
    """One hooked run: its monitor, streamed bytes, and the verdict."""

    monitor: LiveMonitor
    streamed: str
    batch: str
    #: streamed NDJSON == post-hoc ``Trace.to_jsonl()`` (the tentpole's
    #: byte-identity contract), checked the moment the run finishes
    byte_identical: bool


class LiveHook:
    """Attach a live monitor to every ``run_mdf`` while installed."""

    def __init__(self, make_monitor: Optional[Callable[[], LiveMonitor]] = None):
        self._make = make_monitor
        self.runs: List[LiveRunRecord] = []

    def monitor_for_run(self) -> Tuple[LiveMonitor, io.StringIO]:
        """A fresh monitor streaming into an in-memory buffer."""
        buffer = io.StringIO()
        if self._make is not None:
            monitor = self._make()
            if monitor.stream is None:
                from .stream import StreamWriter

                monitor.stream = StreamWriter(buffer)
        else:
            monitor = LiveMonitor(stream=buffer)
        return monitor, buffer

    def record(self, monitor: LiveMonitor, buffer: io.StringIO, result) -> None:
        batch = result.events.to_jsonl() if result.events is not None else ""
        streamed = buffer.getvalue()
        self.runs.append(
            LiveRunRecord(
                monitor=monitor,
                streamed=streamed,
                batch=batch,
                byte_identical=streamed == batch,
            )
        )

    # ------------------------------------------------------------ summaries
    @property
    def all_byte_identical(self) -> bool:
        return all(r.byte_identical for r in self.runs)

    def total_alerts(self) -> int:
        return sum(len(r.monitor.alerts) for r in self.runs)

    def alert_kinds(self) -> List[str]:
        kinds = set()
        for record in self.runs:
            kinds.update(a.kind for a in record.monitor.alerts)
        return sorted(kinds)


_active_hook: Optional[LiveHook] = None


def set_live_hook(hook: Optional[LiveHook]) -> None:
    """Install (or clear, with ``None``) the process-wide live hook."""
    global _active_hook
    _active_hook = hook


def active_live_hook() -> Optional[LiveHook]:
    return _active_hook
