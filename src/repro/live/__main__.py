"""Command-line entry: ``python -m repro.live <trace.ndjson> [--follow]``.

Renders a terminal progress dashboard from a streamed NDJSON trace file
(the :class:`~repro.live.stream.StreamWriter` format — which is also
exactly the batch ``Trace.save_jsonl`` format, so post-hoc traces work
too).  Without ``--follow`` the file is read to EOF and the final
dashboard printed once; with ``--follow`` the file is tailed and the
dashboard redrawn as events land, until ``--idle-timeout`` wall seconds
pass without growth.

The CLI is trace-only: it has the event stream but not the MDF, so the
ETA column (which needs the cost-model plan) reads ``n/a`` while
progress counts, per-branch status and the plan-free watchdogs
(memory-pressure, retry-storm, stall) stay fully live.  In-process runs
(``run_mdf(live=...)``) have the plan and show the full estimate.
"""

from __future__ import annotations

import sys
from typing import List, Optional, TextIO

from .monitor import progress_line, render_dashboard
from .progress import ProgressEstimator
from .stream import follow_events
from .watchdogs import (
    MemoryPressureWatchdog,
    RetryStormWatchdog,
    StallWatchdog,
    Watchdog,
)

USAGE = """\
usage: python -m repro.live <trace.ndjson> [options]

options:
  --follow, -f          tail the file, redrawing as events arrive
  --interval SECONDS    poll interval while following (default 0.2)
  --idle-timeout SECS   stop following after this much silence (default 5.0)
  --stall-seconds SECS  stall-watchdog threshold while following (default 10.0)
  --refresh N           redraw every N events while following (default 25)
  --plain               append progress lines instead of redrawing
  --fail-on-alert       exit 1 if any alert was raised
"""


def _pop_value(argv: List[str], flag: str, default: float) -> float:
    if flag not in argv:
        return default
    i = argv.index(flag)
    try:
        value = float(argv[i + 1])
    except (IndexError, ValueError):
        raise SystemExit(f"{flag} needs a numeric argument")
    del argv[i : i + 2]
    return value


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--help" in argv or "-h" in argv or not argv:
        out.write(USAGE)
        return 0 if argv else 2
    follow = False
    for flag in ("--follow", "-f"):
        if flag in argv:
            follow = True
            argv.remove(flag)
    plain = "--plain" in argv
    if plain:
        argv.remove("--plain")
    fail_on_alert = "--fail-on-alert" in argv
    if fail_on_alert:
        argv.remove("--fail-on-alert")
    interval = _pop_value(argv, "--interval", 0.2)
    idle_timeout = _pop_value(argv, "--idle-timeout", 5.0)
    stall_seconds = _pop_value(argv, "--stall-seconds", 10.0)
    refresh = int(_pop_value(argv, "--refresh", 25))
    if len(argv) != 1:
        out.write(USAGE)
        return 2
    path = argv[0]

    progress = ProgressEstimator()  # trace-only: no plan, ETA n/a
    stall = StallWatchdog(threshold_seconds=stall_seconds)
    watchdogs: List[Watchdog] = [
        MemoryPressureWatchdog(),
        RetryStormWatchdog(),
        stall,
    ]

    def alerts():
        return sorted(
            (a for dog in watchdogs for a in dog.alerts),
            key=lambda a: (a.t, a.kind, a.subject),
        )

    def draw(final: bool = False) -> None:
        snap = progress.snapshot()
        snap.alerts = len(alerts())
        if final:
            out.write(render_dashboard(snap, alerts()) + "\n")
        elif plain:
            out.write(progress_line(snap) + "\n")
        else:
            # redraw in place: clear screen, home cursor
            out.write("\x1b[2J\x1b[H" + render_dashboard(snap, alerts()) + "\n")
        out.flush()

    try:
        events = follow_events(
            path,
            follow=follow,
            poll_interval=interval,
            idle_timeout=idle_timeout,
        )
        since_draw = 0
        for event in events:
            progress.on_event(event)
            for dog in watchdogs:
                dog.on_event(event)
            stall.poll()
            since_draw += 1
            if follow and since_draw >= refresh:
                draw()
                since_draw = 0
    except FileNotFoundError:
        out.write(f"no such trace file: {path}\n")
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    progress.mark_finished()
    stall.mark_finished()
    draw(final=True)
    raised = alerts()
    if raised:
        out.write(f"{len(raised)} alert(s) raised\n")
    return 1 if (fail_on_alert and raised) else 0


if __name__ == "__main__":
    sys.exit(main())
