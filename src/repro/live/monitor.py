""":class:`LiveMonitor` — one attachable bundle of live subscribers.

``run_mdf(live=...)`` builds (or accepts) a monitor and attaches it to
the cluster's trace for the duration of the run: the optional
:class:`~repro.live.stream.StreamWriter` streams the NDJSON file, the
:class:`~repro.live.progress.ProgressEstimator` folds progress/ETA, and
the watchdogs scan for anomalies.  Attachment order is fixed — stream
first (the file always reflects at least what the estimator has seen),
then estimator, then watchdogs — and everything is detached in the
runner's ``finally``, so a monitor never outlives its run.

Renderers live here too: :func:`progress_line` is the one-line summary
(quickstart, bench), :func:`render_dashboard` the multi-line terminal
view (``python -m repro.live``).  Both are pure functions of a
:class:`~repro.live.progress.ProgressSnapshot` + alerts, shared by the
in-process and follow-mode paths.
"""

from __future__ import annotations

import io
import os
from typing import Dict, List, Optional, Union

from ..trace.events import Trace
from .plan import LivePlan
from .progress import BRANCH_STATES, ProgressEstimator, ProgressSnapshot
from .stream import StreamWriter
from .watchdogs import Alert, Watchdog, default_watchdogs


class LiveMonitor:
    """Streaming trace consumers for one run, attached as one unit."""

    def __init__(
        self,
        stream: Union[StreamWriter, str, "os.PathLike[str]", io.TextIOBase, None] = None,
        watchdogs: Optional[List[Watchdog]] = None,
        straggler_factor: float = 1.5,
        node_factor: Optional[float] = None,
    ):
        if stream is not None and not isinstance(stream, StreamWriter):
            stream = StreamWriter(stream)
        self.stream: Optional[StreamWriter] = stream
        self.progress: Optional[ProgressEstimator] = None
        self.plan: Optional[LivePlan] = None
        #: explicit watchdog list, or None to build the default set (which
        #: needs the plan, so it is deferred to ``attach``)
        self._watchdogs = watchdogs
        self._straggler_factor = straggler_factor
        self._node_factor = node_factor
        self.watchdogs: List[Watchdog] = watchdogs or []
        self._trace: Optional[Trace] = None

    # ------------------------------------------------------------ lifecycle
    def attach(
        self,
        trace: Trace,
        plan: Optional[LivePlan] = None,
        registry=None,
    ) -> "LiveMonitor":
        """Subscribe all consumers to ``trace`` (stream → progress → dogs)."""
        if self._trace is not None:
            raise RuntimeError("LiveMonitor is already attached")
        self.plan = plan
        self.progress = ProgressEstimator(plan=plan)
        if self._watchdogs is None:
            self.watchdogs = default_watchdogs(
                plan=plan,
                registry=registry,
                straggler_factor=self._straggler_factor,
                node_factor=self._node_factor,
            )
        else:
            for dog in self.watchdogs:
                if dog.registry is None:
                    dog.registry = registry
        self._trace = trace
        subscribers = []
        if self.stream is not None:
            subscribers.append(self.stream)
        subscribers.append(self.progress)
        subscribers.extend(self.watchdogs)
        # Catch-up replay: a warm-continuation run (``reset=False``) joins
        # a trace that already holds committed events.  Delivering them
        # first keeps the bus contract — every subscriber sees exactly the
        # committed event sequence — so the streamed file stays
        # byte-identical to the full post-hoc export.
        for event in list(trace.events):
            for subscriber in subscribers:
                subscriber(event)
        for subscriber in subscribers:
            trace.subscribe(subscriber)
        return self

    def detach(self) -> None:
        """Unsubscribe everything and flush the stream (idempotent)."""
        trace = self._trace
        if trace is None:
            return
        self._trace = None
        if self.stream is not None:
            trace.unsubscribe(self.stream)
        if self.progress is not None:
            trace.unsubscribe(self.progress)
        for dog in self.watchdogs:
            trace.unsubscribe(dog)
        if self.progress is not None:
            self.progress.mark_finished()
        if self.stream is not None:
            self.stream.close()

    @property
    def attached(self) -> bool:
        return self._trace is not None

    # -------------------------------------------------------------- results
    @property
    def alerts(self) -> List[Alert]:
        """All alerts raised so far, in (simulated time, kind) order."""
        out: List[Alert] = []
        for dog in self.watchdogs:
            out.extend(dog.alerts)
        out.sort(key=lambda a: (a.t, a.kind, a.subject))
        return out

    def alert_kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    def snapshot(self) -> ProgressSnapshot:
        if self.progress is None:
            raise RuntimeError("LiveMonitor was never attached")
        snap = self.progress.snapshot()
        snap.alerts = len(self.alerts)
        return snap

    def progress_line(self) -> str:
        return progress_line(self.snapshot())

    def dashboard(self, width: int = 72) -> str:
        return render_dashboard(self.snapshot(), self.alerts, width=width)


# ----------------------------------------------------------------- renderers


def _bar(fraction: Optional[float], width: int = 20) -> str:
    if fraction is None:
        return "·" * width
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(snap: ProgressSnapshot) -> str:
    if snap.eta is None:
        return "eta n/a"
    if snap.remaining_seconds == 0.0:
        return f"done @ {snap.now:.3f}s"
    return f"eta {snap.eta:.3f}s (+{snap.remaining_seconds:.3f}s)"


def progress_line(snap: ProgressSnapshot) -> str:
    """One-line live summary, e.g.
    ``[########............] 8/14 stages · t=0.412s · eta 0.733s (+0.321s) · branches: 2 running 1 kept 1 pruned · 0 alerts``
    """
    if snap.stages_total is not None:
        runnable = snap.stages_total - snap.stages_pruned
        stages = f"{snap.stages_completed}/{runnable} stages"
        if snap.stages_pruned:
            stages += f" ({snap.stages_pruned} pruned)"
    else:
        stages = f"{snap.stages_completed} stages"
    counts = snap.branch_counts()
    branch_bits = " ".join(
        f"{counts[state]} {state}" for state in BRANCH_STATES if counts.get(state)
    )
    parts = [
        f"[{_bar(snap.fraction)}]",
        stages,
        f"t={snap.now:.3f}s",
        _fmt_eta(snap),
    ]
    if branch_bits:
        parts.append(f"branches: {branch_bits}")
    parts.append(f"{snap.alerts} alert{'s' if snap.alerts != 1 else ''}")
    return " · ".join(parts)


_STATE_MARK = {
    "pending": " ",
    "running": ">",
    "kept": "+",
    "discarded": "-",
    "pruned": "x",
}


def render_dashboard(
    snap: ProgressSnapshot,
    alerts: List[Alert],
    width: int = 72,
    remaining_by_branch: Optional[Dict[str, float]] = None,
) -> str:
    """The multi-line terminal view: header, branch tree, alerts."""
    lines = ["repro.live " + "─" * max(0, width - 11)]
    lines.append(progress_line(snap))
    if snap.critical_path_seconds is not None and snap.remaining_seconds:
        lines.append(
            f"  critical path ≥ {snap.critical_path_seconds:.3f}s of the "
            f"+{snap.remaining_seconds:.3f}s remaining "
            f"(calibration ×{snap.calibration:.2f})"
        )
    # branch tree, grouped by explore scope (branch ids are "explore#i")
    scopes: Dict[str, List[str]] = {}
    for branch_id in snap.branch_status:
        scope = branch_id.split("#", 1)[0]
        scopes.setdefault(scope, []).append(branch_id)
    for scope in sorted(scopes):
        lines.append(f"  {scope}")
        members = sorted(
            scopes[scope],
            key=lambda b: int(b.split("#", 1)[1]) if "#" in b else 0,
        )
        for i, branch_id in enumerate(members):
            state = snap.branch_status[branch_id]
            joint = "└─" if i == len(members) - 1 else "├─"
            extra = ""
            if remaining_by_branch and branch_id in remaining_by_branch:
                extra = f"  (+{remaining_by_branch[branch_id]:.3f}s pending)"
            lines.append(
                f"  {joint}[{_STATE_MARK.get(state, '?')}] {branch_id}"
                f"  {state}{extra}"
            )
    if alerts:
        lines.append(f"  alerts ({len(alerts)}):")
        for alert in alerts:
            lines.append(f"    ! {alert}")
    return "\n".join(lines)
