"""``repro.live`` — streaming observability for in-flight jobs.

Everything before this package observed a run *after* it finished
(trace export, metrics registry, profiler).  The live layer subscribes
to the trace bus (:meth:`repro.trace.events.Trace.subscribe`) and folds
each committed event as it is emitted:

* :class:`StreamWriter` — NDJSON sink, byte-identical to the post-hoc
  JSONL export at every prefix;
* :class:`ProgressEstimator` — stages completed/total, per-branch
  status, elapsed simulated seconds and a cost-model ETA that converges
  exactly to the completion time;
* watchdogs (:class:`StragglerWatchdog`, :class:`MemoryPressureWatchdog`,
  :class:`RetryStormWatchdog`, :class:`StallWatchdog`) raising
  structured :class:`Alert` records;
* :class:`LiveMonitor` — the bundle ``run_mdf(live=...)`` attaches;
* ``python -m repro.live <trace.ndjson>`` — the follow-mode dashboard.

See ``docs/live_monitoring.md`` for the bus contract, the estimator
math and a CLI walkthrough.
"""

from .monitor import LiveMonitor, progress_line, render_dashboard
from .plan import LivePlan
from .progress import BRANCH_STATES, ProgressEstimator, ProgressSnapshot
from .stream import StreamWriter, follow_events, read_events
from .watchdogs import (
    ALERT_KINDS,
    Alert,
    MemoryPressureWatchdog,
    RetryStormWatchdog,
    StallWatchdog,
    StragglerWatchdog,
    Watchdog,
    default_watchdogs,
)
from .hook import LiveHook, active_live_hook, set_live_hook

__all__ = [
    "ALERT_KINDS",
    "Alert",
    "BRANCH_STATES",
    "LiveHook",
    "LiveMonitor",
    "LivePlan",
    "MemoryPressureWatchdog",
    "ProgressEstimator",
    "ProgressSnapshot",
    "RetryStormWatchdog",
    "StallWatchdog",
    "StragglerWatchdog",
    "StreamWriter",
    "Watchdog",
    "active_live_hook",
    "default_watchdogs",
    "follow_events",
    "progress_line",
    "read_events",
    "render_dashboard",
    "set_live_hook",
]
