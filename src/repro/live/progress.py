"""Online progress and ETA estimation over the streaming trace.

:class:`ProgressEstimator` is a pure fold: subscribed to the trace bus
(or replayed over an NDJSON file), it turns the committed event prefix
into live job state — stages completed / total, per-branch status,
simulated seconds elapsed, and a cost-model ETA.

ETA math (with a :class:`~repro.live.plan.LivePlan`)::

    pending   = real stages neither completed nor pruned
    remaining = calibration · Σ pessimistic_seconds(pending)
    eta       = now + remaining

``now`` is the largest simulated timestamp observed (event ``t`` plus
any ``finished`` payload field — span/stage completions timestamp their
*start*, the clock has already advanced to ``finished``).
``calibration`` is the ratio of observed stage walls to their modelled
pessimistic costs over *completed* stages (1.0 until the first stage
completes), so the estimate tightens as the run reveals where between
the optimistic and pessimistic bounds it actually lands.

Two properties the tests pin down:

* **exact convergence** — at the final event the pending set is empty,
  so ``eta == now == completion_time`` (to 1e-9 on every golden
  workload);
* **monotone tightening on prunes** — ``branch_pruned`` removes its
  ``stages`` payload from the pending set without advancing ``now``, so
  the ETA can only shrink across a prune (likewise ``choose_finalized``,
  whose choose stage is metadata and costs 0).

Without a plan (trace-only mode, e.g. tailing a file the CLI knows
nothing else about) the estimator still tracks completion counts,
elapsed time and branch statuses learned from the events themselves;
the ETA is then ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..trace.events import TraceEvent
from .plan import LivePlan

#: branch lifecycle states, in the order the dashboard lists them
BRANCH_STATES = ("pending", "running", "kept", "discarded", "pruned")

#: states a branch can never leave (a pruned branch stays pruned even if
#: a later discard event names its dataset)
_TERMINAL = frozenset({"kept", "discarded", "pruned"})


@dataclass
class ProgressSnapshot:
    """One immutable reading of the estimator (what renderers consume)."""

    now: float
    stages_completed: int
    stages_total: Optional[int]
    stages_pruned: int
    branch_status: Dict[str, str]
    eta: Optional[float]
    remaining_seconds: Optional[float]
    critical_path_seconds: Optional[float]
    calibration: float
    events_seen: int
    finished: bool
    alerts: int = 0

    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction of the stages that will actually run."""
        if self.stages_total is None:
            return None
        runnable = self.stages_total - self.stages_pruned
        if runnable <= 0:
            return 1.0
        return min(1.0, self.stages_completed / runnable)

    def branch_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in BRANCH_STATES}
        for state in self.branch_status.values():
            counts[state] = counts.get(state, 0) + 1
        return counts


class ProgressEstimator:
    """Fold committed trace events into live progress + cost-model ETA."""

    def __init__(self, plan: Optional[LivePlan] = None):
        self.plan = plan
        self.now = 0.0
        self.events_seen = 0
        self.finished = False
        #: real stage ids that have completed (a set — recovery re-runs a
        #: stage, which must not double-count)
        self.completed: Set[str] = set()
        #: real stage ids removed by ``branch_pruned`` before running
        self.pruned_stages: Set[str] = set()
        #: branch id -> lifecycle state
        self.branch_status: Dict[str, str] = {}
        #: Σ observed wall / Σ modelled pessimistic over completed stages
        self._observed_wall = 0.0
        self._modelled_wall = 0.0
        self._pending: Optional[Set[str]] = (
            set(plan.real_stage_ids) if plan is not None else None
        )
        if plan is not None:
            for branch_id in plan.branch_stages:
                self.branch_status[branch_id] = "pending"

    # ------------------------------------------------------------- the fold
    def __call__(self, event: TraceEvent) -> None:
        self.on_event(event)

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1
        self.now = max(self.now, event.t)
        kind, data = event.kind, event.data
        if kind in ("stage_completed", "span"):
            self.now = max(self.now, float(data["finished"]))
        if kind == "stage_scheduled":
            branch = data.get("branch")
            if branch is not None:
                self._set_branch(branch, "running")
        elif kind == "stage_completed":
            sid = data["stage"]
            if sid not in self.completed:
                self.completed.add(sid)
                if self._pending is not None:
                    self._pending.discard(sid)
                if self.plan is not None and sid in self.plan.stage_costs:
                    self._observed_wall += float(data["finished"]) - float(
                        data["started"]
                    )
                    self._modelled_wall += self.plan.stage_costs[sid]
        elif kind == "branch_pruned":
            self._set_branch(data["branch"], "pruned", force=True)
            for sid in data.get("stages", ()):
                if sid not in self.completed:
                    self.pruned_stages.add(sid)
                if self._pending is not None:
                    self._pending.discard(sid)
        elif kind == "branch_discarded":
            self._set_branch(data["branch"], "discarded")
        elif kind == "branch_evaluated":
            self._set_branch(data["branch"], "running")
        elif kind == "choose_finalized":
            for branch in data.get("kept", ()):
                self._set_branch(branch, "kept", force=True)
            for branch in data.get("discarded", ()):
                self._set_branch(branch, "discarded")
            for branch in data.get("pruned", ()):
                self._set_branch(branch, "pruned", force=True)

    def _set_branch(self, branch_id: str, state: str, force: bool = False) -> None:
        current = self.branch_status.get(branch_id)
        if current in _TERMINAL and not (force and state in _TERMINAL):
            return
        if current in _TERMINAL and current != "discarded":
            return  # kept/pruned never change
        self.branch_status[branch_id] = state

    def mark_finished(self) -> None:
        """Note end-of-stream (the CLI calls this at EOF)."""
        self.finished = True

    # ------------------------------------------------------------ estimates
    @property
    def stages_total(self) -> Optional[int]:
        if self.plan is None:
            return None
        return len(self.plan.real_stage_ids)

    @property
    def calibration(self) -> float:
        """Observed-over-modelled wall ratio on completed stages."""
        if self._modelled_wall <= 0.0:
            return 1.0
        return self._observed_wall / self._modelled_wall

    @property
    def remaining_seconds(self) -> Optional[float]:
        """Calibrated modelled seconds of work still pending (plan mode)."""
        if self.plan is None or self._pending is None:
            return None
        if not self._pending:
            return 0.0
        return self.calibration * self.plan.remaining_seconds(self._pending)

    @property
    def eta(self) -> Optional[float]:
        """Estimated completion time on the simulated clock."""
        remaining = self.remaining_seconds
        if remaining is None:
            return None
        return self.now + remaining

    @property
    def critical_path_seconds(self) -> Optional[float]:
        """Lower-bound remaining time via memoised HEFT upward ranks."""
        if self.plan is None or self._pending is None:
            return None
        if not self._pending:
            return 0.0
        return self.plan.critical_path_remaining(self._pending)

    def pending_stage_ids(self) -> List[str]:
        """Real stages not yet completed or pruned (plan order)."""
        if self.plan is None or self._pending is None:
            return []
        return [s for s in self.plan.real_stage_ids if s in self._pending]

    def remaining_by_branch(self) -> Dict[str, float]:
        """Pending modelled seconds per *live* branch (plan mode only).

        Pruned and discarded branches never appear — after a
        ``branch_pruned`` event the estimate must not reference the
        branch again (pinned by ``tests/live/test_progress.py``).
        """
        if self.plan is None or self._pending is None:
            return {}
        out: Dict[str, float] = {}
        for branch_id, stage_ids in self.plan.branch_stages.items():
            if self.branch_status.get(branch_id) in ("pruned", "discarded"):
                continue
            pending = stage_ids & self._pending
            if pending:
                out[branch_id] = self.plan.remaining_seconds(pending)
        return out

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> ProgressSnapshot:
        return ProgressSnapshot(
            now=self.now,
            stages_completed=len(self.completed),
            stages_total=self.stages_total,
            stages_pruned=len(self.pruned_stages),
            branch_status=dict(self.branch_status),
            eta=self.eta,
            remaining_seconds=self.remaining_seconds,
            critical_path_seconds=self.critical_path_seconds,
            calibration=self.calibration,
            events_seen=self.events_seen,
            finished=self.finished,
        )
