"""The live layer's static view of a job: :class:`LivePlan`.

The online estimator (:mod:`repro.live.progress`) needs three things the
trace alone cannot provide — the full stage inventory before anything has
run, a modelled cost per stage, and the branch → stage-ids map that turns
a ``branch_pruned`` event into "these stages will never run".  All three
are derivable *statically* from the MDF, which is exactly what the
pre-run planner (:func:`repro.engine.estimate.estimate_mdf`) and the
scheduler context (:class:`repro.engine.scheduler.SchedulerContext`)
already compute.  :class:`LivePlan` bundles them into one read-only
object built once per run.

Stage ids are deterministic per derivation of the same dataflow
(``StageGraph`` renumbers per graph), so a plan built here from the MDF
names exactly the stages the master's own graph emits into the trace.

The plan also carries a :class:`SchedulerContext` wired with the stage
graph and the pessimistic per-stage costs, so the live dashboard reuses
the *memoised* HEFT upward ranks — ``critical_path_remaining`` is the
longest modelled downstream chain from any pending stage, a lower bound
companion to the serial-sum ETA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..cluster.costmodel import CostModel
from ..core.mdf import MDF
from ..core.stages import StageGraph
from ..engine.scheduler import SchedulerContext


@dataclass
class LivePlan:
    """Static per-stage costs + branch structure for one MDF run."""

    #: stage id -> modelled pessimistic wall seconds (real stages only;
    #: explore/choose metadata stages carry no entry and cost 0)
    stage_costs: Dict[str, float]
    #: stage id -> modelled optimistic wall seconds (same key set)
    optimistic_costs: Dict[str, float]
    #: every stage id in the graph, topological order
    all_stage_ids: List[str]
    #: stage ids that emit ``stage_completed`` when run — every non-choose
    #: stage (explore forwarders complete too, with overhead-only walls;
    #: choose stages finalize via ``choose_finalized`` instead).  This is
    #: the estimator's pending/total universe.
    real_stage_ids: List[str]
    #: branch id ("explore#index") -> stage ids inside that branch
    branch_stages: Dict[str, Set[str]]
    #: stage id -> innermost branch id (None outside any scope)
    stage_branch: Dict[str, Optional[str]]
    #: explore name -> branch ids, in grid order
    scope_branches: Dict[str, List[str]]
    #: scheduler context with memoised upward ranks over the same costs
    context: SchedulerContext = field(repr=False, default_factory=SchedulerContext)
    #: whole-job modelled bounds (no-pruning assumption)
    optimistic_total: float = 0.0
    pessimistic_total: float = 0.0

    @classmethod
    def from_mdf(
        cls,
        mdf: MDF,
        workers: int,
        cost_model: Optional[CostModel] = None,
        task_overhead: float = 0.0005,
        partitions_per_worker: int = 1,
    ) -> "LivePlan":
        """Derive the plan the estimator folds events against.

        Pass the same ``workers``/``task_overhead``/``partitions_per_worker``
        the run uses so the modelled costs line up with what the master's
        own cost-aware schedulers would see.
        """
        from ..engine.estimate import estimate_mdf

        mdf.validate()
        stage_graph = StageGraph(mdf)
        estimate = estimate_mdf(
            mdf,
            workers,
            cost_model=cost_model,
            task_overhead=task_overhead,
            partitions_per_worker=partitions_per_worker,
        )
        stage_costs = {e.stage_id: e.pessimistic_seconds for e in estimate.stages}
        optimistic = {e.stage_id: e.optimistic_seconds for e in estimate.stages}

        branch_stages: Dict[str, Set[str]] = {}
        scope_branches: Dict[str, List[str]] = {}
        for explore_name, scope in mdf.scopes.items():
            scope_branches[explore_name] = [b.id for b in scope.branches]
            for branch in scope.branches:
                ops = mdf.branch_operators(branch)
                branch_stages[branch.id] = {
                    stage_graph.stage_of(op).id for op in ops
                }

        order = stage_graph.topological_stages()
        context = SchedulerContext()
        context.stage_graph = stage_graph
        context.stage_costs = dict(stage_costs)
        context.num_workers = workers

        return cls(
            stage_costs=stage_costs,
            optimistic_costs=optimistic,
            all_stage_ids=[s.id for s in order],
            real_stage_ids=[s.id for s in order if not s.is_choose],
            branch_stages=branch_stages,
            stage_branch={s.id: s.branch_id for s in order},
            scope_branches=scope_branches,
            context=context,
            optimistic_total=estimate.optimistic_seconds,
            pessimistic_total=estimate.pessimistic_seconds,
        )

    # ------------------------------------------------------------- queries
    def cost_of(self, stage_id: str) -> float:
        """Modelled pessimistic seconds of one stage (0 for metadata)."""
        return self.stage_costs.get(stage_id, 0.0)

    def remaining_seconds(self, pending: Iterable[str]) -> float:
        """Serial remaining work: Σ modelled cost over pending stage ids.

        The master executes stages one at a time (stage scheduling, §4.1),
        so the serial sum — not the parallel critical path — is the right
        completion model; the per-stage costs already divide work across
        the cluster's workers.
        """
        return sum(self.stage_costs.get(sid, 0.0) for sid in pending)

    def critical_path_remaining(self, pending: Iterable[str]) -> float:
        """Longest modelled downstream chain from any pending stage.

        Reuses the scheduler context's memoised HEFT upward ranks
        (:meth:`~repro.engine.scheduler.SchedulerContext.upward_rank`):
        computed once over the stage DAG on first use, cached for the
        plan's lifetime.  A lower bound on remaining time under unlimited
        stage-level parallelism — shown on the dashboard next to the
        serial ETA.
        """
        graph = self.context.stage_graph
        if graph is None:
            return 0.0
        by_id = {s.id: s for s in graph.stages}
        return max(
            (
                self.context.upward_rank(by_id[sid])
                for sid in pending
                if sid in by_id
            ),
            default=0.0,
        )
