"""Streaming NDJSON trace sink and follow-mode reader.

:class:`StreamWriter` is the canonical bus sink: subscribed to a
:class:`~repro.trace.events.Trace`, it appends each committed event's
canonical JSON line the moment it is emitted.  Because the bus notifies
strictly post-append and :meth:`TraceEvent.to_json` is the same
serialisation :meth:`Trace.to_jsonl` joins at job end, the streamed file
is **byte-identical** to the post-hoc export — at every point during the
run the file is a byte-prefix of the final JSONL, and after the final
event the two are equal (property-tested in
``tests/live/test_stream.py``).

:func:`follow_events` is the reading half: it tails an NDJSON file
(complete lines only — a partially-written line is left for the next
poll), yielding :class:`TraceEvent` objects for the CLI dashboard
(``python -m repro.live --follow``).
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Callable, Iterator, Optional, Union

from ..trace.events import Trace, TraceEvent


class StreamWriter:
    """Append each committed trace event as one canonical NDJSON line.

    Accepts a path (the writer opens and owns the file) or any writable
    text file object (the caller keeps ownership; ``close()`` only closes
    handles the writer opened).  Lines are flushed per event by default
    so a follower process observes committed events promptly.
    """

    def __init__(
        self,
        target: Union[str, "os.PathLike[str]", io.TextIOBase],
        autoflush: bool = True,
    ):
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self.path = os.fspath(target)
            self._fh = open(self.path, "w")
            self._owns = True
        self.autoflush = autoflush
        self.events_written = 0
        self.bytes_written = 0
        self.closed = False

    # The bus calls subscribers as plain callables.
    def __call__(self, event: TraceEvent) -> None:
        self.on_event(event)

    def on_event(self, event: TraceEvent) -> None:
        if self.closed:
            raise ValueError("StreamWriter is closed")
        line = event.to_json() + "\n"
        self._fh.write(line)
        if self.autoflush:
            self._fh.flush()
        self.events_written += 1
        self.bytes_written += len(line.encode("utf-8"))

    def attach(self, trace: Trace) -> "StreamWriter":
        """Subscribe to a trace (convenience for standalone use)."""
        trace.subscribe(self)
        return self

    def detach(self, trace: Trace) -> bool:
        return trace.unsubscribe(self)

    def flush(self) -> None:
        if not self.closed:
            self._fh.flush()

    def close(self) -> None:
        if self.closed:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover
        where = self.path or "<stream>"
        return f"StreamWriter({where!r}, events={self.events_written})"


def read_events(text: str) -> Iterator[TraceEvent]:
    """Parse complete NDJSON lines into :class:`TraceEvent` objects."""
    for line in text.splitlines():
        if not line.strip():
            continue
        raw = json.loads(line)
        yield TraceEvent(raw["seq"], raw["t"], raw["kind"], raw.get("data", {}))


def follow_events(
    path: Union[str, "os.PathLike[str]"],
    follow: bool = False,
    poll_interval: float = 0.1,
    idle_timeout: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[TraceEvent]:
    """Yield trace events from an NDJSON file, optionally tailing it.

    Only complete lines (terminated by ``\\n``) are parsed — a line still
    being written is buffered until its newline arrives, so a follower
    never sees a torn event.  With ``follow=False`` the iterator stops at
    end-of-file; with ``follow=True`` it keeps polling every
    ``poll_interval`` wall seconds until ``idle_timeout`` wall seconds
    pass with no file growth (``None`` = tail forever).  ``sleep`` and
    ``clock`` are injectable for deterministic tests.
    """
    buffer = ""
    last_growth = clock()
    with open(os.fspath(path)) as fh:
        while True:
            chunk = fh.read()
            if chunk:
                buffer += chunk
                last_growth = clock()
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    raw = json.loads(line)
                    yield TraceEvent(
                        raw["seq"], raw["t"], raw["kind"], raw.get("data", {})
                    )
                continue
            if not follow:
                return
            if idle_timeout is not None and clock() - last_growth >= idle_timeout:
                return
            sleep(poll_interval)
