"""``repro.obs``: labeled metrics, timeline sampling, and exporters.

The observability layer on top of the PR-1 decision trace:

* :mod:`repro.obs.registry` — Counter/Gauge/Histogram instruments labeled
  with ``{node, branch, stage, dataset, policy}`` plus the ambient label
  context the master uses for per-branch attribution;
* :mod:`repro.obs.timeline` — the simulated-clock sampler behind the
  Fig 17 memory-over-time series;
* :mod:`repro.obs.export` — deterministic Prometheus-text and JSON exports;
* :mod:`repro.obs.bridge` — rebuilds a registry from a JSONL decision
  trace so both observability layers can be checked against each other;
* :mod:`repro.obs.telemetry` — the bundle ``run_mdf(telemetry=...)``
  attaches to :class:`~repro.engine.job.JobResult`.
"""

from .bridge import CONSISTENCY_VIEWS, diff_registries, registry_from_trace
from .export import (
    lint_prometheus_text,
    prometheus_text,
    registry_json,
    registry_to_dict,
)
from .registry import (
    DEFAULT_BUCKETS,
    LABEL_NAMES,
    Counter,
    ExactHistogram,
    Gauge,
    Histogram,
    MetricsRegistry,
    labels_dict,
)
from .telemetry import Telemetry
from .timeline import TelemetryConfig, TimelineSample, TimelineSampler

__all__ = [
    "CONSISTENCY_VIEWS",
    "Counter",
    "DEFAULT_BUCKETS",
    "ExactHistogram",
    "Gauge",
    "Histogram",
    "LABEL_NAMES",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryConfig",
    "TimelineSample",
    "TimelineSampler",
    "diff_registries",
    "labels_dict",
    "lint_prometheus_text",
    "prometheus_text",
    "registry_from_trace",
    "registry_json",
    "registry_to_dict",
]
