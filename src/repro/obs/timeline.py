"""Simulated-clock timeline sampler (the Fig 17 memory-over-time series).

The paper's Fig 17 plots cluster memory in use over *job time* under LRU
vs AMM.  The simulator has no wall clock — time advances in discrete jumps
through :class:`~repro.cluster.clock.SimClock` — so the sampler subscribes
to clock advances and records one sample per crossed sampling interval.
Each sample is the cluster state *after* the advance that crossed the
boundary (execution state is piecewise-constant between advances, so this
is the exact value at every instant inside the jump).

Samples capture memory-in-use (total and per node), the cumulative memory
hit ratio, the live-branch count (a gauge the master maintains) and the
live-dataset/eviction counts — everything needed to reproduce the shape of
Fig 17 and the §6.2 hit-ratio series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class TelemetryConfig:
    """Knobs for ``run_mdf(telemetry=...)``.

    ``interval`` is in simulated seconds.  When a run produces more than
    ``max_samples`` samples the sampler thins itself (drops every other
    sample and doubles the interval), so unexpectedly long jobs degrade
    resolution instead of memory.
    """

    interval: float = 0.25
    max_samples: int = 4096


@dataclass
class TimelineSample:
    """Cluster state at one simulated instant."""

    t: float
    memory_in_use: int
    memory_capacity: int
    hit_ratio: float
    live_branches: int
    live_datasets: int
    evictions: int
    per_node_memory: Dict[str, int] = field(default_factory=dict)
    #: cumulative busy seconds per worker (io + compute walls charged to
    #: the node so far, from ``cluster.busy_seconds``)
    per_node_busy: Dict[str, float] = field(default_factory=dict)
    #: mean worker utilisation over the interval since the previous
    #: sample: Δbusy / (Δt · workers), clamped to [0, 1] (the Fig 17
    #: busy/idle overlay)
    utilisation: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t": self.t,
            "memory_in_use": self.memory_in_use,
            "memory_capacity": self.memory_capacity,
            "hit_ratio": self.hit_ratio,
            "live_branches": self.live_branches,
            "live_datasets": self.live_datasets,
            "evictions": self.evictions,
            "per_node_memory": dict(self.per_node_memory),
            "per_node_busy": dict(self.per_node_busy),
            "utilisation": self.utilisation,
        }


class TimelineSampler:
    """Samples cluster state at a fixed simulated-time interval.

    Attach before the job runs, detach after; ``samples`` then holds the
    series.  The sampler reads the cluster's nodes, metrics view and the
    ``live_branches`` gauge from the cluster's registry — it never touches
    the clock itself, so attaching it cannot perturb execution.
    """

    def __init__(self, cluster, interval: float = 0.25, max_samples: int = 4096):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.cluster = cluster
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.samples: List[TimelineSample] = []
        self._next_t = 0.0
        self._attached = False

    # ------------------------------------------------------------- lifecycle
    def attach(self) -> "TimelineSampler":
        if self._attached:
            return self
        self._next_t = self.cluster.clock.now
        self.cluster.clock.subscribe(self._on_advance)
        self._attached = True
        # the t=0 baseline (empty cluster / warm-cache starting point)
        self._record(self._next_t)
        self._next_t += self.interval
        return self

    def detach(self) -> "TimelineSampler":
        if not self._attached:
            return self
        self.cluster.clock.unsubscribe(self._on_advance)
        self._attached = False
        # close the series with the job-end state
        now = self.cluster.clock.now
        if not self.samples or self.samples[-1].t < now:
            self._record(now)
        return self

    # -------------------------------------------------------------- sampling
    def _on_advance(self, now: float) -> None:
        while self._next_t <= now:
            self._record(self._next_t)
            self._next_t += self.interval
        if len(self.samples) > self.max_samples:
            self._thin()

    def _thin(self) -> None:
        """Halve resolution: drop every other sample, double the interval."""
        self.samples = self.samples[::2]
        self.interval *= 2.0
        last = self.samples[-1].t if self.samples else 0.0
        self._next_t = max(self._next_t, last + self.interval)
        # per-node busy is cumulative, so the interval utilisation of the
        # surviving samples can be recomputed exactly over the new spacing
        for i, sample in enumerate(self.samples):
            prev = self.samples[i - 1] if i else None
            sample.utilisation = self._utilisation(
                prev, sample.t, sample.per_node_busy
            )

    @staticmethod
    def _utilisation(prev, t: float, busy: Dict[str, float]) -> float:
        if prev is None or t <= prev.t or not busy:
            return 0.0
        delta = sum(busy.values()) - sum(
            prev.per_node_busy.get(node, 0.0) for node in busy
        )
        return min(1.0, max(0.0, delta / ((t - prev.t) * len(busy))))

    def _record(self, t: float) -> None:
        cluster = self.cluster
        metrics = cluster.metrics
        per_node = {node.id: node.mem_used for node in cluster.nodes}
        busy = {
            node.id: cluster.busy_seconds.get(node.id, 0.0)
            for node in cluster.nodes
        }
        prev = self.samples[-1] if self.samples else None
        self.samples.append(
            TimelineSample(
                t=t,
                memory_in_use=sum(per_node.values()),
                memory_capacity=sum(node.mem_capacity for node in cluster.nodes),
                hit_ratio=metrics.memory_hit_ratio,
                live_branches=int(cluster.obs.max_value("live_branches")),
                live_datasets=cluster.live_dataset_count(),
                evictions=metrics.evictions,
                per_node_memory=per_node,
                per_node_busy=busy,
                utilisation=self._utilisation(prev, t, busy),
            )
        )

    # --------------------------------------------------------------- exports
    def as_dicts(self) -> List[Dict[str, Any]]:
        return [sample.as_dict() for sample in self.samples]

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimelineSampler(interval={self.interval}, samples={len(self.samples)})"
