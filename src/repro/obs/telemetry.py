"""The job-level telemetry bundle returned by ``run_mdf(telemetry=...)``.

One :class:`Telemetry` object packages the run's labeled metrics registry
and the simulated-clock timeline into every export the benchmarks need:
Prometheus text, JSON, and the per-branch / per-node breakdown tables
(rendered by :mod:`repro.bench.report`, imported lazily to keep
``repro.obs`` free of a bench dependency at import time).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .export import prometheus_text, registry_json, registry_to_dict
from .registry import MetricsRegistry
from .timeline import TimelineSampler


class Telemetry:
    """Everything observable about one run beyond the job-global metrics."""

    def __init__(
        self,
        registry: MetricsRegistry,
        timeline: Optional[TimelineSampler] = None,
        metrics=None,
    ):
        self.registry = registry
        self.timeline = timeline
        self.metrics = metrics

    # --------------------------------------------------------------- exports
    def to_prometheus(self, namespace: str = "repro") -> str:
        return prometheus_text(self.registry, namespace=namespace)

    def to_json(self, indent: int = 2) -> str:
        return registry_json(self.registry, indent=indent)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"registry": registry_to_dict(self.registry)}
        if self.timeline is not None:
            out["timeline"] = self.timeline.as_dicts()
        if self.metrics is not None:
            out["metrics"] = self.metrics.as_dict()
        return out

    def timeline_json(self, indent: int = 2) -> str:
        samples = self.timeline.as_dicts() if self.timeline is not None else []
        return json.dumps(samples, indent=indent, sort_keys=True)

    @property
    def samples(self) -> List:
        return self.timeline.samples if self.timeline is not None else []

    # ------------------------------------------------------------ breakdowns
    def branch_breakdown(self) -> str:
        """Per-branch attribution table (tasks, evictions, bytes, time)."""
        from ..bench.report import telemetry_breakdown

        return telemetry_breakdown(self.registry, "branch")

    def node_breakdown(self) -> str:
        """Per-node attribution table (tasks, evictions, bytes, time)."""
        from ..bench.report import telemetry_breakdown

        return telemetry_breakdown(self.registry, "node")

    def timeline_table(self, max_rows: int = 24) -> str:
        """The Fig 17-style memory-over-time series as a text table."""
        from ..bench.report import timeline_table

        samples = self.timeline.samples if self.timeline is not None else []
        return timeline_table(samples, max_rows=max_rows)

    def __repr__(self) -> str:  # pragma: no cover
        n = len(self.timeline) if self.timeline is not None else 0
        return f"Telemetry({self.registry!r}, timeline_samples={n})"


__all__ = ["Telemetry"]
