"""Trace→metrics bridge: rebuild a registry from a PR-1 decision trace.

The decision trace (:mod:`repro.trace`) and the metrics registry
(:mod:`repro.obs.registry`) observe the same execution at different
altitudes — one event per decision vs labeled aggregates.  This module
replays a trace and reconstructs the registry, which keeps the two layers
honest: golden-trace tests assert the rebuilt registry equals the live one
on every granularity the trace can express.

Attribution mirrors the engine exactly: the master wraps each scheduled
stage (including its deferred choose evaluation and selection) in a
``{stage, branch}`` label context, so the bridge attributes every event to
the most recent ``stage_scheduled`` event.  Quantities the trace does not
record (per-node time breakdowns, latency histograms) are left empty;
:data:`CONSISTENCY_VIEWS` lists exactly the instrument/granularity pairs
the bridge guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..prof.spans import registry_categories
from .registry import MetricsRegistry

#: (instrument, label dimensions) pairs on which a bridged registry must
#: equal the live registry of the run that recorded the trace.
CONSISTENCY_VIEWS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("evictions", ("node", "branch", "stage", "dataset", "policy")),
    ("evictions_free", ("node", "branch", "stage", "dataset", "policy")),
    ("bytes_read_memory", ("node", "branch", "stage", "dataset")),
    ("bytes_read_disk", ("node", "branch", "stage", "dataset")),
    ("bytes_written_memory", ("node", "branch", "stage", "dataset")),
    ("bytes_written_disk", ("node", "branch", "stage", "dataset")),
    ("partition_hits", ("node", "branch", "stage", "dataset")),
    ("partition_misses", ("node", "branch", "stage", "dataset")),
    ("tasks_executed", ("branch", "stage")),
    ("stages_executed", ("branch", "stage")),
    ("branches_executed", ("branch",)),
    ("branches_pruned", ("branch",)),
    ("datasets_discarded", ("dataset",)),
    ("choose_evaluations", ("branch", "stage", "dataset")),
    ("scheduler_selections", ("branch", "stage", "policy")),
    ("recoveries", ("node",)),
    ("recovery_reexecutions", ("node",)),
    ("stages_reexecuted", ("branch", "stage")),
    ("task_retries", ("node", "branch", "stage")),
    ("cache_hits", ("branch", "stage", "dataset", "policy")),
    ("cache_misses", ("branch", "stage")),
    ("cache_bytes_saved", ("branch", "stage", "dataset", "policy")),
    ("cache_compute_seconds_saved", ("branch", "stage", "dataset", "policy")),
    ("cache_admissions", ("branch", "stage", "dataset", "policy")),
    # post-recovery revalidation invalidates entries outside any stage's
    # label context while the bridge's ambient is the last re-executed
    # stage, so only the dataset dimension is trace-reconstructible
    ("cache_invalidations", ("dataset",)),
    # profiler category totals (repro.prof): replayed from the extended
    # stage_completed / span events through the same category mapping the
    # live counters use ("reload" is a profiler-only refinement of "io",
    # so it has no counter here)
    ("profile_compute_seconds", ("branch", "stage")),
    ("profile_io_seconds", ("branch", "stage")),
    ("profile_network_seconds", ("branch", "stage")),
    ("profile_overhead_seconds", ("branch", "stage")),
    ("profile_evaluator_seconds", ("branch", "stage")),
    ("profile_recovery_seconds", ("branch", "stage")),
)


def registry_from_trace(trace) -> MetricsRegistry:
    """Replay a :class:`~repro.trace.events.Trace` into a fresh registry.

    Accepts a live trace or one rebuilt from JSONL
    (:meth:`~repro.trace.events.Trace.load_jsonl`).
    """
    registry = MetricsRegistry()
    stage: Optional[str] = None
    branch: Optional[str] = None
    #: dataset id -> partition count (evaluate_branch task accounting)
    partitions: Dict[str, int] = {}
    live: set = set()
    #: stage id -> outstanding stage_reexecuted announcements: the next
    #: stage_completed of that stage is recovery work (same pairing the
    #: profiler uses — inputs are secured before the announcement)
    reexec_pending: Dict[str, int] = {}
    for event in trace:
        data = event.data
        kind = event.kind
        if kind == "stage_scheduled":
            stage = data["stage"]
            branch = data.get("branch")
            registry.counter(
                "scheduler_selections",
                stage=stage,
                branch=branch,
                policy=data.get("rationale"),
            ).inc()
        elif kind == "task_dispatched":
            registry.counter(
                "tasks_executed", stage=data["stage"], branch=branch
            ).inc(data["num_tasks"])
            registry.counter(
                "stages_executed", stage=data["stage"], branch=branch
            ).inc()
        elif kind == "dataset_access":
            labels = dict(
                node=data["node"], dataset=data["dataset"], stage=stage, branch=branch
            )
            if data["hit"]:
                registry.counter("partition_hits", **labels).inc()
                registry.counter("bytes_read_memory", **labels).inc(data["nbytes"])
            else:
                registry.counter("partition_misses", **labels).inc()
                registry.counter("bytes_read_disk", **labels).inc(data["nbytes"])
        elif kind == "source_read":
            registry.counter(
                "bytes_read_disk",
                node=data["node"],
                dataset=data["dataset"],
                stage=stage,
                branch=branch,
            ).inc(data["nbytes"])
        elif kind == "partition_stored":
            tier = "memory" if data["tier"] == "memory" else "disk"
            registry.counter(
                f"bytes_written_{tier}",
                node=data["node"],
                dataset=data["dataset"],
                stage=stage,
                branch=branch,
            ).inc(data["nbytes"])
        elif kind == "partition_evicted":
            labels = dict(
                node=data["node"],
                dataset=data["dataset"],
                policy=data["policy"],
                stage=stage,
                branch=branch,
            )
            registry.counter("evictions", **labels).inc()
            if data["spilled"]:
                registry.counter(
                    "bytes_written_disk",
                    node=data["node"],
                    dataset=data["dataset"],
                    stage=stage,
                    branch=branch,
                ).inc(data["nbytes"])
            else:
                registry.counter("evictions_free", **labels).inc()
        elif kind == "checkpoint_written":
            registry.counter(
                "bytes_written_disk", dataset=data["dataset"], stage=stage, branch=branch
            ).inc(data["nbytes"])
        elif kind == "dataset_registered" or kind == "composite_registered":
            live.add(data["dataset"])
            if kind == "composite_registered":
                for member in data["members"]:
                    live.discard(member)
            else:
                partitions[data["dataset"]] = data["partitions"]
            registry.gauge("peak_datasets_stored").set_max(len(live))
        elif kind == "dataset_discarded":
            live.discard(data["dataset"])
            registry.counter("datasets_discarded", dataset=data["dataset"]).inc()
        elif kind == "choose_evaluation":
            registry.counter(
                "choose_evaluations", dataset=data["dataset"], stage=stage, branch=branch
            ).inc()
            if not data["pipelined"]:
                # a non-pipelined evaluation re-reads every partition of the
                # branch dataset as one task each (executor.evaluate_branch)
                registry.counter(
                    "tasks_executed", stage=stage, branch=branch
                ).inc(_partition_count(data["dataset"], partitions, trace))
        elif kind == "branch_evaluated":
            registry.counter("branches_executed", branch=data["branch"], stage=stage).inc()
        elif kind == "branch_pruned":
            registry.counter("branches_pruned", branch=data["branch"], stage=stage).inc()
        elif kind in ("node_failed", "recovery_started"):
            # recovery work before the first re-executed stage (reloads,
            # free drops) runs outside any stage's label context
            stage = None
            branch = None
        elif kind == "stage_reexecuted":
            stage = data["stage"]
            branch = data["branch"]
            reexec_pending[stage] = reexec_pending.get(stage, 0) + 1
            registry.counter("stages_reexecuted", stage=stage, branch=branch).inc()
        elif kind == "stage_completed":
            if "io" in data and "per_node_io" in data:
                recovery = reexec_pending.get(data["stage"], 0) > 0
                if recovery:
                    reexec_pending[data["stage"]] -= 1
                _bridge_profile(registry, data, stage, branch, recovery=recovery)
        elif kind == "span":
            _bridge_profile(
                registry, data, stage, branch, activity=data["activity"]
            )
        elif kind == "recovery":
            action = data["action"]
            if action in ("reload", "recompute"):
                registry.counter(
                    "recoveries", node=data["node"], stage=stage, branch=branch
                ).inc()
            if action == "recompute":
                registry.counter(
                    "recovery_reexecutions",
                    node=data["node"],
                    stage=stage,
                    branch=branch,
                ).inc()
            elif action == "reload":
                registry.counter(
                    "bytes_read_disk",
                    node=data["node"],
                    dataset=data["dataset"],
                    stage=stage,
                    branch=branch,
                ).inc(data["nbytes"])
        elif kind == "task_retried":
            registry.counter(
                "task_retries", node=data["node"], stage=stage, branch=branch
            ).inc(data["attempts"])
        elif kind == "cache_hit":
            labels = dict(
                dataset=data["dataset"],
                policy=data["tier"],
                stage=stage,
                branch=branch,
            )
            registry.counter("cache_hits", **labels).inc()
            registry.counter("cache_bytes_saved", **labels).inc(data["nbytes"])
            registry.counter("cache_compute_seconds_saved", **labels).inc(
                data["saved_seconds"]
            )
        elif kind == "cache_miss":
            registry.counter("cache_misses", stage=stage, branch=branch).inc()
        elif kind == "cache_admit":
            registry.counter(
                "cache_admissions",
                dataset=data["dataset"],
                policy=data["tier"],
                stage=stage,
                branch=branch,
            ).inc()
        elif kind == "cache_invalidate":
            registry.counter(
                "cache_invalidations", dataset=data["dataset"], stage=stage, branch=branch
            ).inc()
    return registry


def _bridge_profile(
    registry: MetricsRegistry,
    data: Dict,
    stage: Optional[str],
    branch: Optional[str],
    activity: Optional[str] = None,
    recovery: bool = False,
) -> None:
    """Replay one span's category split into the profile counters."""
    for category, seconds in registry_categories(
        data["io"],
        data["compute"],
        data["network"],
        data["overhead"],
        activity=activity,
        recovery=recovery,
    ).items():
        registry.counter(
            f"profile_{category}_seconds", stage=stage, branch=branch
        ).inc(seconds)


def _partition_count(dataset_id: str, partitions: Dict[str, int], trace) -> int:
    """Partition count of a dataset, resolving composites via their members."""
    count = partitions.get(dataset_id)
    if count is not None:
        return count
    for event in trace:
        if event.kind == "composite_registered" and event.data["dataset"] == dataset_id:
            return sum(
                _partition_count(member, partitions, trace)
                for member in event.data["members"]
            )
    return 0


def diff_registries(
    live: MetricsRegistry,
    rebuilt: MetricsRegistry,
    views: Tuple[Tuple[str, Tuple[str, ...]], ...] = CONSISTENCY_VIEWS,
) -> List[str]:
    """Differences between two registries over the guaranteed views.

    Returns human-readable mismatch descriptions (empty = consistent).
    Used by the telemetry↔trace regression tests.
    """
    problems: List[str] = []
    for name, dims in views:
        a = live.aggregate(name, dims)
        b = rebuilt.aggregate(name, dims)
        for key in sorted(set(a) | set(b)):
            va, vb = a.get(key, 0.0), b.get(key, 0.0)
            if abs(va - vb) > 1e-9:
                labels = dict(zip(dims, key)) if dims else "(total)"
                problems.append(
                    f"{name}{labels}: live={va} rebuilt-from-trace={vb}"
                )
    return problems


__all__ = ["CONSISTENCY_VIEWS", "diff_registries", "registry_from_trace"]
