"""Registry exporters: Prometheus text exposition and JSON.

Both exports are deterministic (instruments and children emitted in sorted
order) so telemetry snapshots can be diffed across runs like the decision
traces.  Prometheus metric names are prefixed with the ``repro_`` namespace
and counters get the conventional ``_total`` suffix; histograms emit the
standard cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from .registry import LABEL_NAMES, MetricsRegistry, labels_dict


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in merged.items())
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for name in registry.names():
        kind = registry.kind_of(name)
        metric = f"{namespace}_{name}" if namespace else name
        if kind == "counter":
            metric += "_total"
        lines.append(f"# HELP {metric} {name} recorded by the MDF engine")
        lines.append(f"# TYPE {metric} {kind}")
        for labels, instrument in sorted(registry.series(name).items()):
            label_map = labels_dict(labels)
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        f"{metric}_bucket{_label_str(label_map, {'le': _fmt_value(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{metric}_bucket{_label_str(label_map, {'le': '+Inf'})}"
                    f" {instrument.count}"
                )
                lines.append(f"{metric}_sum{_label_str(label_map)} {_fmt_value(instrument.sum)}")
                lines.append(f"{metric}_count{_label_str(label_map)} {instrument.count}")
            else:
                lines.append(f"{metric}{_label_str(label_map)} {_fmt_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as a JSON-friendly dict (deterministic ordering)."""
    out: Dict[str, Any] = {}
    for name in registry.names():
        kind = registry.kind_of(name)
        series: List[Dict[str, Any]] = []
        for labels, instrument in sorted(registry.series(name).items()):
            entry: Dict[str, Any] = {"labels": labels_dict(labels)}
            if kind == "histogram":
                entry.update(
                    count=instrument.count,
                    sum=instrument.sum,
                    p50=_nan_none(instrument.p50),
                    p95=_nan_none(instrument.p95),
                    p99=_nan_none(instrument.p99),
                    buckets=[
                        {"le": bound, "count": count}
                        for bound, count in zip(instrument.bounds, instrument.counts)
                        if count
                    ],
                )
            else:
                entry["value"] = instrument.value
            series.append(entry)
        out[name] = {"kind": kind, "series": series}
    return out


def _nan_none(value: float):
    return None if value != value else value


def registry_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """JSON text export of :func:`registry_to_dict`."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


__all__ = [
    "LABEL_NAMES",
    "prometheus_text",
    "registry_json",
    "registry_to_dict",
]
