"""Registry exporters: Prometheus text exposition and JSON.

Both exports are deterministic (instruments and children emitted in sorted
order) so telemetry snapshots can be diffed across runs like the decision
traces.  Prometheus metric names are prefixed with the ``repro_`` namespace
and counters get the conventional ``_total`` suffix; histograms emit the
standard cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.

Label *values* are arbitrary strings — tenant names, ``owner->reader``
cross-tenant pairs — so they are escaped per the text exposition format
(backslash, double-quote and line feed; ``\\`` first so the escapes
themselves never double-escape).  HELP text escapes backslash and line
feed.  :func:`lint_prometheus_text` is a standalone checker for the
format (metric/label name charset, escape validity, histogram bucket
monotonicity, counter naming) used by the CI service-obs smoke job to
keep the exposition honest end to end.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List

from .registry import LABEL_NAMES, MetricsRegistry, labels_dict


def _escape(value: str) -> str:
    """Escape a label value per the exposition format (v0.0.4)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP docstrings escape only backslash and line feed."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in merged.items())
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    names = registry.label_names
    for name in registry.names():
        kind = registry.kind_of(name)
        metric = f"{namespace}_{name}" if namespace else name
        if kind == "counter":
            metric += "_total"
        help_text = _escape_help(f"{name} recorded by the MDF engine")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        for labels, instrument in sorted(registry.series(name).items()):
            label_map = labels_dict(labels, names)
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    lines.append(
                        f"{metric}_bucket{_label_str(label_map, {'le': _fmt_value(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{metric}_bucket{_label_str(label_map, {'le': '+Inf'})}"
                    f" {instrument.count}"
                )
                lines.append(f"{metric}_sum{_label_str(label_map)} {_fmt_value(instrument.sum)}")
                lines.append(f"{metric}_count{_label_str(label_map)} {instrument.count}")
            else:
                lines.append(f"{metric}{_label_str(label_map)} {_fmt_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as a JSON-friendly dict (deterministic ordering)."""
    out: Dict[str, Any] = {}
    names = registry.label_names
    for name in registry.names():
        kind = registry.kind_of(name)
        series: List[Dict[str, Any]] = []
        for labels, instrument in sorted(registry.series(name).items()):
            entry: Dict[str, Any] = {"labels": labels_dict(labels, names)}
            if kind == "histogram":
                entry.update(
                    count=instrument.count,
                    sum=instrument.sum,
                    p50=_nan_none(instrument.p50),
                    p95=_nan_none(instrument.p95),
                    p99=_nan_none(instrument.p99),
                    buckets=[
                        {"le": bound, "count": count}
                        for bound, count in zip(instrument.bounds, instrument.counts)
                        if count
                    ],
                )
            else:
                entry["value"] = instrument.value
            series.append(entry)
        out[name] = {"kind": kind, "series": series}
    return out


def _nan_none(value: float):
    return None if value != value else value


def registry_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """JSON text export of :func:`registry_to_dict`."""
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


# --------------------------------------------------------------- format lint

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
#: one sample line: name, optional {labels}, value (timestamp unsupported)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
#: a correctly escaped label value: any char except raw ", \ and newline,
#: or one of the three legal escapes
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\\\|\\"|\\n)*)"\s*(?:,|$)'
)


def _parse_labels(raw: str) -> Dict[str, str]:
    """Parse a label block strictly; raises ValueError on any bad escape."""
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_RE.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label block at offset {pos}: {raw!r}")
        labels[match.group("name")] = match.group("value")
        pos = match.end()
    return labels


def lint_prometheus_text(text: str) -> List[str]:
    """Check a text exposition for format violations; returns problems.

    Validates what the real Prometheus parser would reject: metric and
    label name charsets, label-value escaping (raw ``"``/``\\``/newline
    inside a value is a parse error), sample values that are not valid
    floats, HELP/TYPE declared before samples, cumulative (monotone)
    histogram buckets, and counter families carrying the ``_total``
    suffix.  Empty list = clean.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    bucket_last: Dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.fullmatch(parts[2]):
                problems.append(f"line {lineno}: malformed comment line: {line!r}")
                continue
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(
                        f"line {lineno}: unknown TYPE {parts[3]!r} for {parts[2]}"
                    )
                typed[parts[2]] = parts[3]
                if parts[3] == "counter" and not parts[2].endswith("_total"):
                    problems.append(
                        f"line {lineno}: counter {parts[2]} lacks the _total suffix"
                    )
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {lineno}: sample {name} has no TYPE declaration")
        raw_labels = match.group("labels")
        labels: Dict[str, str] = {}
        if raw_labels is not None:
            try:
                labels = _parse_labels(raw_labels)
            except ValueError as exc:
                problems.append(f"line {lineno}: {exc}")
                continue
            for label_name in labels:
                if not _LABEL_NAME_RE.fullmatch(label_name):
                    problems.append(
                        f"line {lineno}: bad label name {label_name!r}"
                    )
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: bad sample value {value!r}")
        if name.endswith("_bucket"):
            series = name + json.dumps(
                sorted((k, v) for k, v in labels.items() if k != "le"),
                sort_keys=True,
            )
            count = int(float(value))
            if count < bucket_last.get(series, 0):
                problems.append(
                    f"line {lineno}: histogram buckets of {name} not cumulative"
                )
            bucket_last[series] = count
    return problems


__all__ = [
    "LABEL_NAMES",
    "lint_prometheus_text",
    "prometheus_text",
    "registry_json",
    "registry_to_dict",
]
