"""Labeled metrics registry: typed instruments with fixed label dimensions.

The job-global :class:`~repro.cluster.metrics.Metrics` bag answers *how
much* — total evictions, total bytes — but none of the paper's §6.2–§6.4
questions: *which branch* burned the memory budget, *which node* was the
eviction hotspot, *which stage* paid the spill.  This registry records the
same quantities as labeled time series, Prometheus-style:

* :class:`Counter` — monotone accumulation (bytes, tasks, evictions),
* :class:`Gauge` — instantaneous values (queue depth, memory in use),
* :class:`Histogram` — fixed log-scale buckets with p50/p95/p99 estimates
  (task latency, choose-evaluation latency).

Every instrument child carries the registry's label dimensions — by
default the five engine dimensions ``{node, branch, stage, dataset,
policy}`` (unset labels are ``""``); a registry built for a different
altitude (the service plane uses ``{tenant, workload, status, policy}``)
passes its own ``label_names``.  The engine attributes low-level
observations to the currently executing stage and branch through an
ambient *label context* (:meth:`MetricsRegistry.label_context`) pushed by
the master around each scheduled stage, so the cluster substrate never
needs to know about branches.

Counters and histograms merge the ambient context into their labels;
gauges carry exactly the labels they are given (a per-node memory gauge
must not fragment across branches).

Registries cross process boundaries as plain-dict snapshots
(:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.from_snapshot`)
and merge (:meth:`MetricsRegistry.merge`): counters add, gauges ratchet to
the maximum, histograms add bucket counts (identical bounds required) so
a merged histogram is *exactly* the histogram a single process observing
every value would have built.  This is how the multi-tenant service folds
each worker process's per-job registry into its long-lived service
registry (:mod:`repro.service.obs`).
"""

from __future__ import annotations

import bisect
import contextlib
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: the default (engine) label dimensions, in canonical order
LABEL_NAMES: Tuple[str, ...] = ("node", "branch", "stage", "dataset", "policy")

LabelValues = Tuple[str, ...]


def labels_dict(
    values: LabelValues, names: Tuple[str, ...] = LABEL_NAMES
) -> Dict[str, str]:
    """A label tuple as a ``{name: value}`` dict, empty values omitted."""
    return {name: value for name, value in zip(names, values) if value}


class Counter:
    """A monotonically increasing accumulator for one label set."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another process's counter in (monotone sums add)."""
        self.value += other.value


class Gauge:
    """An instantaneous value for one label set."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Ratchet: keep the maximum ever set (peak gauges)."""
        if value > self.value:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        """Cross-process gauge merge keeps the maximum (peak semantics).

        Instantaneous values from two processes cannot be summed
        meaningfully after the fact; peaks (the only gauges the service
        rolls up) ratchet.
        """
        self.set_max(other.value)


#: default histogram buckets: log-scale (powers of four) from 1 µs up to
#: ~1073 simulated seconds, wide enough for task latencies and stage walls
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(16))


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    Buckets are upper bounds (a final +Inf bucket is implicit).  Quantiles
    are estimated by linear interpolation inside the containing bucket —
    exact enough for the log-scale reporting the benchmarks need.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                if bucket_count == 0:
                    return lo
                return lo + (hi - lo) * (target - cumulative) / bucket_count
            cumulative += bucket_count
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (bucket counts add, exactly).

        Requires identical bucket bounds — merged bucket counts are then
        equal to the counts a single histogram observing every value
        would hold, so quantile estimates after a merge are *identical*
        to a single-process run's (the cross-process parity invariant
        ``tests/obs/test_registry_merge.py`` asserts).
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count


class ExactHistogram(Histogram):
    """A histogram that additionally retains every observation.

    The service-plane latency/queue-wait series need *exact* nearest-rank
    percentiles (matching the load generator's reporting), which bucketed
    estimates cannot give.  Service job counts are small (thousands, not
    billions), so keeping the raw values is cheap; the bucketed view is
    still maintained for the Prometheus exposition.
    """

    __slots__ = ("values",)

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        super().__init__(bounds)
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        super().observe(value)
        self.values.append(float(value))

    def quantile(self, q: float) -> float:
        """Exact nearest-rank ``q``-quantile over the retained values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def merge(self, other: "Histogram") -> None:
        super().merge(other)
        if isinstance(other, ExactHistogram):
            self.values.extend(other.values)
        else:  # pragma: no cover - degenerate pairing, keep counts honest
            raise ValueError("cannot merge a bucket-only histogram into an exact one")


class Family:
    """All children (label sets) of one named instrument."""

    __slots__ = ("name", "kind", "children", "_factory")

    def __init__(self, name: str, kind: str, factory: Callable[[], Any]):
        self.name = name
        self.kind = kind
        self.children: Dict[LabelValues, Any] = {}
        self._factory = factory

    def child(self, labels: LabelValues):
        instrument = self.children.get(labels)
        if instrument is None:
            instrument = self._factory()
            self.children[labels] = instrument
        return instrument


class MetricsRegistry:
    """Per-job store of labeled instruments plus the ambient label context.

    The cluster owns one registry per run (reset with the cluster, like the
    decision trace); the master, executor, scheduler and memory manager all
    record into it.  Aggregation helpers power the derived
    :class:`~repro.cluster.metrics.Metrics` view and the exporters.

    ``label_names`` defaults to the engine dimensions; pass a different
    tuple to build a registry for another altitude (the service plane
    uses ``repro.service.obs.SERVICE_LABEL_NAMES``).
    """

    def __init__(self, label_names: Tuple[str, ...] = LABEL_NAMES):
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._families: Dict[str, Family] = {}
        self._context: List[Dict[str, str]] = []

    # ------------------------------------------------------------ label context
    @contextlib.contextmanager
    def label_context(self, **labels: Optional[str]):
        """Ambient labels merged into counter/histogram observations.

        The master pushes ``{stage, branch}`` around each scheduled stage so
        cluster-level hooks (which only know node/dataset) still attribute
        their observations to the right branch.
        """
        frame = {k: str(v) for k, v in labels.items() if v}
        for name in frame:
            if name not in self.label_names:
                raise ValueError(
                    f"unknown label {name!r} (allowed: {self.label_names})"
                )
        self._context.append(frame)
        try:
            yield self
        finally:
            self._context.pop()

    def _resolve(self, explicit: Dict[str, Optional[str]], ambient: bool) -> LabelValues:
        merged: Dict[str, str] = {}
        if ambient:
            for frame in self._context:
                merged.update(frame)
        for name, value in explicit.items():
            if name not in self.label_names:
                raise ValueError(
                    f"unknown label {name!r} (allowed: {self.label_names})"
                )
            if value:
                merged[name] = str(value)
        return tuple(merged.get(name, "") for name in self.label_names)

    def _family(self, name: str, kind: str, factory: Callable[[], Any]) -> Family:
        family = self._families.get(name)
        if family is None:
            family = Family(name, kind, factory)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"instrument {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        return family

    # -------------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Optional[str]) -> Counter:
        """The counter child for the given labels (ambient context merged)."""
        family = self._family(name, "counter", Counter)
        return family.child(self._resolve(labels, ambient=True))

    def gauge(self, name: str, **labels: Optional[str]) -> Gauge:
        """The gauge child for exactly the given labels (no ambient merge)."""
        family = self._family(name, "gauge", Gauge)
        return family.child(self._resolve(labels, ambient=False))

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        exact: bool = False,
        **labels: Optional[str],
    ) -> Histogram:
        """The histogram child for the given labels (ambient context merged).

        ``exact=True`` makes children :class:`ExactHistogram`\\ s, which
        retain every observation for exact nearest-rank quantiles (the
        service latency series).  All children of one family share the
        same exactness (set on first use).
        """
        bounds = tuple(buckets) if buckets is not None else None
        cls = ExactHistogram if exact else Histogram
        family = self._family(name, "histogram", lambda: cls(bounds))
        return family.child(self._resolve(labels, ambient=True))

    # --------------------------------------------------------------- queries
    def names(self) -> List[str]:
        return sorted(self._families)

    def kind_of(self, name: str) -> Optional[str]:
        family = self._families.get(name)
        return family.kind if family is not None else None

    def series(self, name: str) -> Dict[LabelValues, Any]:
        """All children of one instrument, keyed by their label tuples."""
        family = self._families.get(name)
        return dict(family.children) if family is not None else {}

    def _matches(self, labels: LabelValues, where: Dict[str, str]) -> bool:
        return all(
            labels[self.label_names.index(name)] == value
            for name, value in where.items()
        )

    def value(self, name: str, **where: str) -> float:
        """Sum of matching children (counter values / histogram sums)."""
        total = 0.0
        for labels, instrument in self.series(name).items():
            if not self._matches(labels, where):
                continue
            total += instrument.sum if instrument.kind == "histogram" else instrument.value
        return total

    def max_value(self, name: str, **where: str) -> float:
        """Maximum over matching children (peak gauges); 0.0 when empty."""
        values = [
            instrument.value
            for labels, instrument in self.series(name).items()
            if self._matches(labels, where)
        ]
        return max(values, default=0.0)

    def aggregate(self, name: str, by: Tuple[str, ...]) -> Dict[Tuple[str, ...], float]:
        """Totals of one instrument grouped by a subset of label dimensions.

        The group key preserves the order of ``by``; children differing only
        in the other dimensions are summed.  This is what the per-branch /
        per-node breakdown tables and the trace-consistency checks consume.
        """
        indices = [self.label_names.index(dim) for dim in by]
        out: Dict[Tuple[str, ...], float] = {}
        for labels, instrument in self.series(name).items():
            key = tuple(labels[i] for i in indices)
            amount = instrument.sum if instrument.kind == "histogram" else instrument.value
            out[key] = out.get(key, 0.0) + amount
        return out

    # --------------------------------------------------- snapshot / merge
    def snapshot(self, names: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        """The registry as a plain JSON-serialisable dict.

        The snapshot is complete (bucket bounds, every count, retained
        exact-histogram values), so :meth:`from_snapshot` rebuilds an
        equivalent registry in another process — the transport the
        service workers use to ship each finished job's registry back to
        the dispatcher.  ``names`` restricts the snapshot to a subset of
        instrument families.
        """
        wanted = set(names) if names is not None else None
        families: Dict[str, Any] = {}
        for name in self.names():
            if wanted is not None and name not in wanted:
                continue
            family = self._families[name]
            series: List[Dict[str, Any]] = []
            for labels in sorted(family.children):
                instrument = family.children[labels]
                entry: Dict[str, Any] = {"labels": list(labels)}
                if family.kind == "histogram":
                    entry["bounds"] = list(instrument.bounds)
                    entry["counts"] = list(instrument.counts)
                    entry["sum"] = instrument.sum
                    entry["count"] = instrument.count
                    if isinstance(instrument, ExactHistogram):
                        entry["values"] = list(instrument.values)
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            families[name] = {"kind": family.kind, "series": series}
        return {"label_names": list(self.label_names), "families": families}

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict (cross-process)."""
        registry = cls(label_names=tuple(snapshot["label_names"]))
        for name, family_snap in snapshot["families"].items():
            kind = family_snap["kind"]
            for entry in family_snap["series"]:
                labels = tuple(entry["labels"])
                if kind == "histogram":
                    exact = "values" in entry
                    instrument = (ExactHistogram if exact else Histogram)(
                        entry["bounds"]
                    )
                    instrument.counts = [int(c) for c in entry["counts"]]
                    instrument.sum = float(entry["sum"])
                    instrument.count = int(entry["count"])
                    if exact:
                        instrument.values = [float(v) for v in entry["values"]]
                elif kind == "gauge":
                    instrument = Gauge()
                    instrument.value = float(entry["value"])
                else:
                    instrument = Counter()
                    instrument.value = float(entry["value"])
                family = registry._family(
                    name, kind, {"counter": Counter, "gauge": Gauge}.get(kind, Histogram)
                )
                family.children[labels] = instrument
        return registry

    def merge(
        self,
        other: "MetricsRegistry",
        labels: Optional[Dict[str, str]] = None,
        names: Optional[Iterable[str]] = None,
    ) -> None:
        """Fold another registry in (counters add, gauges ratchet,
        histograms add bucket counts).

        With ``labels`` every child of ``other`` collapses onto that one
        label set in *this* registry's dimensions — the service plane
        collapses a job's per-stage children onto ``{tenant, workload}``.
        Without ``labels`` the registries must share label dimensions and
        children merge label-set by label-set.  ``names`` restricts the
        merge to a subset of families.  Children are merged in sorted
        label order, so repeated merges are deterministic.
        """
        if labels is None and other.label_names != self.label_names:
            raise ValueError(
                f"cannot merge registries with different label dimensions "
                f"{other.label_names} -> {self.label_names} without a "
                f"collapse label set"
            )
        target_labels: Optional[LabelValues] = None
        if labels is not None:
            target_labels = self._resolve(dict(labels), ambient=False)
        wanted = set(names) if names is not None else None
        for name in other.names():
            if wanted is not None and name not in wanted:
                continue
            source = other._families[name]
            family = self._family(name, source.kind, source._factory)
            for child_labels in sorted(source.children):
                instrument = source.children[child_labels]
                key = target_labels if target_labels is not None else child_labels
                mine = family.children.get(key)
                if mine is None:
                    if source.kind == "histogram":
                        mine = type(instrument)(instrument.bounds)
                    else:
                        mine = type(instrument)()
                    family.children[key] = mine
                mine.merge(instrument)

    def __repr__(self) -> str:  # pragma: no cover
        children = sum(len(f.children) for f in self._families.values())
        return f"MetricsRegistry(instruments={len(self._families)}, series={children})"
