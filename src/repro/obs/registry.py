"""Labeled metrics registry: typed instruments with fixed label dimensions.

The job-global :class:`~repro.cluster.metrics.Metrics` bag answers *how
much* — total evictions, total bytes — but none of the paper's §6.2–§6.4
questions: *which branch* burned the memory budget, *which node* was the
eviction hotspot, *which stage* paid the spill.  This registry records the
same quantities as labeled time series, Prometheus-style:

* :class:`Counter` — monotone accumulation (bytes, tasks, evictions),
* :class:`Gauge` — instantaneous values (queue depth, memory in use),
* :class:`Histogram` — fixed log-scale buckets with p50/p95/p99 estimates
  (task latency, choose-evaluation latency).

Every instrument child carries the five label dimensions
``{node, branch, stage, dataset, policy}`` (unset labels are ``""``).  The
engine attributes low-level observations to the currently executing stage
and branch through an ambient *label context* (:meth:`MetricsRegistry
.label_context`) pushed by the master around each scheduled stage, so the
cluster substrate never needs to know about branches.

Counters and histograms merge the ambient context into their labels;
gauges carry exactly the labels they are given (a per-node memory gauge
must not fragment across branches).
"""

from __future__ import annotations

import bisect
import contextlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: the fixed label dimensions, in canonical order
LABEL_NAMES: Tuple[str, ...] = ("node", "branch", "stage", "dataset", "policy")

LabelValues = Tuple[str, str, str, str, str]


def labels_dict(values: LabelValues) -> Dict[str, str]:
    """A label tuple as a ``{name: value}`` dict, empty values omitted."""
    return {name: value for name, value in zip(LABEL_NAMES, values) if value}


class Counter:
    """A monotonically increasing accumulator for one label set."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """An instantaneous value for one label set."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Ratchet: keep the maximum ever set (peak gauges)."""
        if value > self.value:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: default histogram buckets: log-scale (powers of four) from 1 µs up to
#: ~1073 simulated seconds, wide enough for task latencies and stage walls
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(16))


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    Buckets are upper bounds (a final +Inf bucket is implicit).  Quantiles
    are estimated by linear interpolation inside the containing bucket —
    exact enough for the log-scale reporting the benchmarks need.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                if bucket_count == 0:
                    return lo
                return lo + (hi - lo) * (target - cumulative) / bucket_count
            cumulative += bucket_count
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class Family:
    """All children (label sets) of one named instrument."""

    __slots__ = ("name", "kind", "children", "_factory")

    def __init__(self, name: str, kind: str, factory: Callable[[], Any]):
        self.name = name
        self.kind = kind
        self.children: Dict[LabelValues, Any] = {}
        self._factory = factory

    def child(self, labels: LabelValues):
        instrument = self.children.get(labels)
        if instrument is None:
            instrument = self._factory()
            self.children[labels] = instrument
        return instrument


class MetricsRegistry:
    """Per-job store of labeled instruments plus the ambient label context.

    The cluster owns one registry per run (reset with the cluster, like the
    decision trace); the master, executor, scheduler and memory manager all
    record into it.  Aggregation helpers power the derived
    :class:`~repro.cluster.metrics.Metrics` view and the exporters.
    """

    def __init__(self):
        self._families: Dict[str, Family] = {}
        self._context: List[Dict[str, str]] = []

    # ------------------------------------------------------------ label context
    @contextlib.contextmanager
    def label_context(self, **labels: Optional[str]):
        """Ambient labels merged into counter/histogram observations.

        The master pushes ``{stage, branch}`` around each scheduled stage so
        cluster-level hooks (which only know node/dataset) still attribute
        their observations to the right branch.
        """
        frame = {k: str(v) for k, v in labels.items() if v}
        for name in frame:
            if name not in LABEL_NAMES:
                raise ValueError(f"unknown label {name!r} (allowed: {LABEL_NAMES})")
        self._context.append(frame)
        try:
            yield self
        finally:
            self._context.pop()

    def _resolve(self, explicit: Dict[str, Optional[str]], ambient: bool) -> LabelValues:
        merged: Dict[str, str] = {}
        if ambient:
            for frame in self._context:
                merged.update(frame)
        for name, value in explicit.items():
            if name not in LABEL_NAMES:
                raise ValueError(f"unknown label {name!r} (allowed: {LABEL_NAMES})")
            if value:
                merged[name] = str(value)
        return tuple(merged.get(name, "") for name in LABEL_NAMES)  # type: ignore[return-value]

    def _family(self, name: str, kind: str, factory: Callable[[], Any]) -> Family:
        family = self._families.get(name)
        if family is None:
            family = Family(name, kind, factory)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"instrument {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        return family

    # -------------------------------------------------------------- instruments
    def counter(self, name: str, **labels: Optional[str]) -> Counter:
        """The counter child for the given labels (ambient context merged)."""
        family = self._family(name, "counter", Counter)
        return family.child(self._resolve(labels, ambient=True))

    def gauge(self, name: str, **labels: Optional[str]) -> Gauge:
        """The gauge child for exactly the given labels (no ambient merge)."""
        family = self._family(name, "gauge", Gauge)
        return family.child(self._resolve(labels, ambient=False))

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: Optional[str],
    ) -> Histogram:
        """The histogram child for the given labels (ambient context merged)."""
        bounds = tuple(buckets) if buckets is not None else None
        family = self._family(
            name, "histogram", lambda: Histogram(bounds)
        )
        return family.child(self._resolve(labels, ambient=True))

    # --------------------------------------------------------------- queries
    def names(self) -> List[str]:
        return sorted(self._families)

    def kind_of(self, name: str) -> Optional[str]:
        family = self._families.get(name)
        return family.kind if family is not None else None

    def series(self, name: str) -> Dict[LabelValues, Any]:
        """All children of one instrument, keyed by their label tuples."""
        family = self._families.get(name)
        return dict(family.children) if family is not None else {}

    @staticmethod
    def _matches(labels: LabelValues, where: Dict[str, str]) -> bool:
        return all(
            labels[LABEL_NAMES.index(name)] == value for name, value in where.items()
        )

    def value(self, name: str, **where: str) -> float:
        """Sum of matching children (counter values / histogram sums)."""
        total = 0.0
        for labels, instrument in self.series(name).items():
            if not self._matches(labels, where):
                continue
            total += instrument.sum if instrument.kind == "histogram" else instrument.value
        return total

    def max_value(self, name: str, **where: str) -> float:
        """Maximum over matching children (peak gauges); 0.0 when empty."""
        values = [
            instrument.value
            for labels, instrument in self.series(name).items()
            if self._matches(labels, where)
        ]
        return max(values, default=0.0)

    def aggregate(self, name: str, by: Tuple[str, ...]) -> Dict[Tuple[str, ...], float]:
        """Totals of one instrument grouped by a subset of label dimensions.

        The group key preserves the order of ``by``; children differing only
        in the other dimensions are summed.  This is what the per-branch /
        per-node breakdown tables and the trace-consistency checks consume.
        """
        indices = [LABEL_NAMES.index(dim) for dim in by]
        out: Dict[Tuple[str, ...], float] = {}
        for labels, instrument in self.series(name).items():
            key = tuple(labels[i] for i in indices)
            amount = instrument.sum if instrument.kind == "histogram" else instrument.value
            out[key] = out.get(key, 0.0) + amount
        return out

    def __repr__(self) -> str:  # pragma: no cover
        children = sum(len(f.children) for f in self._families.values())
        return f"MetricsRegistry(instruments={len(self._families)}, series={children})"
