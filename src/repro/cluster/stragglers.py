"""Straggler simulation and mitigation (§5 of the paper).

A straggler is a worker that runs slower than its peers, stretching stage
completion times (stages finish when their slowest node finishes).  The
paper notes MDFs need no new mechanism: standard speculative re-execution
applies.  We model both sides:

* :class:`StragglerProfile` — a per-node slowdown factor applied to that
  node's compute and IO time within a stage;
* speculative execution — when a node's stage share exceeds the median
  node time by ``speculation_threshold``, a backup copy is launched on the
  fastest node, and the stage share becomes the minimum of the straggler
  finishing and the backup (which must redo the work from scratch).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StragglerProfile:
    """Per-node slowdown factors (1.0 = nominal speed)."""

    slowdown: Dict[str, float] = field(default_factory=dict)

    def factor(self, node_id: str) -> float:
        return self.slowdown.get(node_id, 1.0)


@dataclass
class SpeculationConfig:
    """Speculative re-execution settings."""

    enabled: bool = True
    #: launch a backup when a node exceeds ``threshold ×`` the median share
    threshold: float = 1.5
    #: backup restart overhead as a fraction of the original work
    restart_overhead: float = 0.1


def apply_stragglers(
    per_node_seconds: Dict[str, float],
    profile: StragglerProfile,
    speculation: SpeculationConfig,
    metrics=None,
) -> Dict[str, float]:
    """Stretch per-node stage times by straggler factors, then mitigate.

    Returns the adjusted per-node seconds.  With speculation enabled, a
    straggling node's share is capped at the time a backup copy on the
    fastest node would take (its own nominal work plus restart overhead,
    executed at the fastest node's speed).
    """
    stretched = {
        node_id: seconds * profile.factor(node_id)
        for node_id, seconds in per_node_seconds.items()
    }
    if not speculation.enabled or len(stretched) < 2:
        return stretched
    median = statistics.median(stretched.values())
    if median <= 0:
        return stretched
    fastest_factor = min(profile.factor(n) for n in stretched)
    mitigated: Dict[str, float] = {}
    for node_id, seconds in stretched.items():
        if seconds > speculation.threshold * median:
            nominal = per_node_seconds[node_id]
            backup = nominal * fastest_factor * (1.0 + speculation.restart_overhead)
            # the backup starts once the slowness is detected (the median)
            backup_finish = median + backup
            if backup_finish < seconds:
                seconds = backup_finish
                if metrics is not None:
                    metrics.speculative_tasks += 1
        mitigated[node_id] = seconds
    return mitigated
