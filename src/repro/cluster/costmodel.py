"""Hardware cost model for the simulated cluster.

The paper's AMM policy takes a hardware-specific ratio ``α = (w_d · r_m) /
(w_m · r_d)`` of the per-byte times to write to disk (``w_d``), read from
memory (``r_m``), write to memory (``w_m``), and read from disk (``r_d``).
This module expresses those four quantities as bandwidths plus a compute
rate, and derives α, IO times and compute times from them.

Defaults approximate the paper's testbed class (SATA-disk workers with
DDR3 memory): memory ~10 GB/s, disk read 200 MB/s, disk write 100 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass


GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class CostModel:
    """Bandwidths (bytes/s), compute rate (cost-units/s) and network.

    ``compute_rate`` converts operator cost units (by default one unit per
    input byte) into simulated seconds.  ``network_bandwidth`` is charged
    for wide (shuffle) dependencies.
    """

    mem_read_bw: float = 10 * GB
    mem_write_bw: float = 10 * GB
    disk_read_bw: float = 200 * MB
    disk_write_bw: float = 100 * MB
    compute_rate: float = 500 * MB
    network_bandwidth: float = 125 * MB  # 1 Gbps

    def __post_init__(self):
        for name in (
            "mem_read_bw",
            "mem_write_bw",
            "disk_read_bw",
            "disk_write_bw",
            "compute_rate",
            "network_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -------------------------------------------------------------- alpha
    @property
    def alpha(self) -> float:
        """``α = w_d · r_m / (w_m · r_d)`` with times per byte (Alg. 2)."""
        w_d = 1.0 / self.disk_write_bw
        r_m = 1.0 / self.mem_read_bw
        w_m = 1.0 / self.mem_write_bw
        r_d = 1.0 / self.disk_read_bw
        return (w_d * r_m) / (w_m * r_d)

    # ---------------------------------------------------------------- time
    def mem_read_time(self, nbytes: int) -> float:
        return nbytes / self.mem_read_bw

    def mem_write_time(self, nbytes: int) -> float:
        return nbytes / self.mem_write_bw

    def disk_read_time(self, nbytes: int) -> float:
        return nbytes / self.disk_read_bw

    def disk_write_time(self, nbytes: int) -> float:
        return nbytes / self.disk_write_bw

    def compute_time(self, cost_units: float) -> float:
        return cost_units / self.compute_rate

    def network_time(self, nbytes: int) -> float:
        return nbytes / self.network_bandwidth

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with some bandwidths/rates replaced."""
        current = {
            "mem_read_bw": self.mem_read_bw,
            "mem_write_bw": self.mem_write_bw,
            "disk_read_bw": self.disk_read_bw,
            "disk_write_bw": self.disk_write_bw,
            "compute_rate": self.compute_rate,
            "network_bandwidth": self.network_bandwidth,
        }
        current.update(overrides)
        return CostModel(**current)
