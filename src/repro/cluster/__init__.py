"""Simulated distributed substrate: nodes, memory, costs, faults.

Replaces the paper's SEEP cluster with a deterministic simulation that
executes real operator functions while accounting for partition placement,
memory pressure, evictions and access costs (see DESIGN.md §2 for why this
substitution preserves the paper's behaviour).
"""

from .clock import SimClock
from .cluster import Cluster, DatasetRecord, FailureReport
from .costmodel import GB, MB, CostModel
from .fault import (
    CheckpointConfig,
    ChooseScoreStore,
    FailureEvent,
    FailureInjector,
    TaskFailureEvent,
    recover_partitions,
)
from .memory import (
    AccessOnlyPolicy,
    AMMPolicy,
    EvictionPolicy,
    LRUPolicy,
    MemoryPolicy,
    SizeOnlyPolicy,
    available_policies,
    make_policy,
    register_eviction_policy,
)
from .metrics import Metrics
from .node import Node, PartitionKey, Slot
from .stragglers import SpeculationConfig, StragglerProfile, apply_stragglers

__all__ = [
    "AMMPolicy",
    "AccessOnlyPolicy",
    "CheckpointConfig",
    "ChooseScoreStore",
    "Cluster",
    "CostModel",
    "DatasetRecord",
    "EvictionPolicy",
    "FailureEvent",
    "FailureInjector",
    "FailureReport",
    "GB",
    "LRUPolicy",
    "MB",
    "MemoryPolicy",
    "Metrics",
    "Node",
    "PartitionKey",
    "SimClock",
    "SizeOnlyPolicy",
    "Slot",
    "SpeculationConfig",
    "StragglerProfile",
    "TaskFailureEvent",
    "apply_stragglers",
    "available_policies",
    "make_policy",
    "recover_partitions",
    "register_eviction_policy",
]
