"""Execution metrics collected by the simulated cluster.

The paper's evaluation reports completion times and the *memory hit ratio*:
the fraction of data accesses that read data residing in memory (§6.2).
This module tracks both, plus eviction counts, byte volumes, per-category
time breakdowns, and pruning statistics, so every figure of §6.2–§6.4 can
be regenerated.

Since the labeled registry landed (:mod:`repro.obs.registry`), a cluster's
``Metrics`` is a *derived view*: :meth:`Metrics.bind` attaches it to the
cluster's :class:`~repro.obs.registry.MetricsRegistry`, after which every
field read aggregates the labeled series (sum for counters, max for
peaks) and every field write is forwarded as a counter increment / gauge
ratchet.  Existing callers — ``as_dict()`` consumers, ``merge()`` over
baseline runs, plain ``Metrics()`` literals in tests — keep working
unchanged: an unbound instance behaves exactly as the old dataclass did.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

#: fields merged/read by maximum instead of sum (gauge-backed peaks)
_MAX_FIELDS = frozenset({"peak_datasets_stored"})
#: fields reported as floats (everything else is an integer count)
_FLOAT_FIELDS = frozenset({"time_compute", "time_io", "time_network"})


@dataclass
class Metrics:
    """Counters accumulated over one job execution."""

    bytes_read_memory: int = 0
    bytes_read_disk: int = 0
    bytes_written_memory: int = 0
    bytes_written_disk: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    evictions: int = 0
    datasets_discarded: int = 0
    branches_pruned: int = 0
    branches_executed: int = 0
    stages_executed: int = 0
    tasks_executed: int = 0
    choose_evaluations: int = 0
    time_compute: float = 0.0
    time_io: float = 0.0
    time_network: float = 0.0
    peak_datasets_stored: int = 0
    recoveries: int = 0
    #: recoveries that re-executed a producing stage because no copy of the
    #: lost partition survived (checkpoint reloads are plain recoveries)
    recovery_reexecutions: int = 0
    #: stages re-run by lineage recovery after a node failure
    stages_reexecuted: int = 0
    #: transient task-failure attempts retried with backoff (§5)
    task_retries: int = 0
    speculative_tasks: int = 0

    # --------------------------------------------------------- registry view
    def bind(self, registry) -> "Metrics":
        """Turn this instance into a live view over a metrics registry.

        Bound, every field read aggregates the registry's labeled series
        under the same name and every write forwards the delta, so the two
        observability layers cannot drift apart.
        """
        object.__setattr__(self, "_registry", registry)
        return self

    def __getattribute__(self, name: str):
        if name in _FIELD_NAMES:
            registry = object.__getattribute__(self, "__dict__").get("_registry")
            if registry is not None:
                if name in _MAX_FIELDS:
                    value = registry.max_value(name)
                else:
                    value = registry.value(name)
                return value if name in _FLOAT_FIELDS else int(value)
        return object.__getattribute__(self, name)

    def __setattr__(self, name: str, value) -> None:
        if name in _FIELD_NAMES:
            registry = object.__getattribute__(self, "__dict__").get("_registry")
            if registry is not None:
                if name in _MAX_FIELDS:
                    registry.gauge(name).set_max(value)
                else:
                    delta = value - registry.value(name)
                    if delta:
                        registry.counter(name).inc(delta)
                return
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------ aggregates
    @property
    def memory_hit_ratio(self) -> float:
        """Fraction of read bytes served from memory (1.0 when nothing read)."""
        total = self.bytes_read_memory + self.bytes_read_disk
        if total == 0:
            return 1.0
        return self.bytes_read_memory / total

    @property
    def total_time(self) -> float:
        return self.time_compute + self.time_io + self.time_network

    def merge(self, other: "Metrics") -> "Metrics":
        """Element-wise sum of two metric sets (peaks take the maximum).

        Iterates the dataclass fields so a newly added metric participates
        automatically instead of silently dropping out of merged reports.
        """
        merged = Metrics()
        for name in _FIELD_NAMES:
            mine, theirs = getattr(self, name), getattr(other, name)
            combined = max(mine, theirs) if name in _MAX_FIELDS else mine + theirs
            object.__setattr__(merged, name, combined)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        data = {name: getattr(self, name) for name in _FIELD_NAMES}
        data["memory_hit_ratio"] = self.memory_hit_ratio
        data["total_time"] = self.total_time
        return data


_FIELD_NAMES = tuple(f.name for f in fields(Metrics))
