"""Execution metrics collected by the simulated cluster.

The paper's evaluation reports completion times and the *memory hit ratio*:
the fraction of data accesses that read data residing in memory (§6.2).
This module tracks both, plus eviction counts, byte volumes, per-category
time breakdowns, and pruning statistics, so every figure of §6.2–§6.4 can
be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class Metrics:
    """Counters accumulated over one job execution."""

    bytes_read_memory: int = 0
    bytes_read_disk: int = 0
    bytes_written_memory: int = 0
    bytes_written_disk: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    evictions: int = 0
    datasets_discarded: int = 0
    branches_pruned: int = 0
    branches_executed: int = 0
    stages_executed: int = 0
    tasks_executed: int = 0
    choose_evaluations: int = 0
    time_compute: float = 0.0
    time_io: float = 0.0
    time_network: float = 0.0
    peak_datasets_stored: int = 0
    recoveries: int = 0
    #: recoveries that had to restore partitions lost from a node's memory
    #: (re-secured from checkpoints / re-execution, not a plain reload)
    recovery_reexecutions: int = 0
    speculative_tasks: int = 0

    @property
    def memory_hit_ratio(self) -> float:
        """Fraction of read bytes served from memory (1.0 when nothing read)."""
        total = self.bytes_read_memory + self.bytes_read_disk
        if total == 0:
            return 1.0
        return self.bytes_read_memory / total

    @property
    def total_time(self) -> float:
        return self.time_compute + self.time_io + self.time_network

    def merge(self, other: "Metrics") -> "Metrics":
        """Element-wise sum of two metric sets (peaks take the maximum)."""
        merged = Metrics()
        for name in (
            "bytes_read_memory",
            "bytes_read_disk",
            "bytes_written_memory",
            "bytes_written_disk",
            "partition_hits",
            "partition_misses",
            "evictions",
            "datasets_discarded",
            "branches_pruned",
            "branches_executed",
            "stages_executed",
            "tasks_executed",
            "choose_evaluations",
            "recoveries",
            "recovery_reexecutions",
            "speculative_tasks",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        for name in ("time_compute", "time_io", "time_network"):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.peak_datasets_stored = max(self.peak_datasets_stored, other.peak_datasets_stored)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        data = dict(self.__dict__)
        data["memory_hit_ratio"] = self.memory_hit_ratio
        data["total_time"] = self.total_time
        return data
