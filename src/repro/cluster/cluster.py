"""The simulated cluster: nodes, partition placement, cost accounting.

This is the substrate that replaces SEEP's physical cluster.  It owns the
nodes, the registry of live datasets, the memory policy, the simulated
clock and the metrics.  Operator functions still execute for real — the
cluster only *accounts* for where partitions live and what each access
costs, which is all the paper's scheduling and eviction decisions depend
on.

Partition placement is round-robin: partition ``i`` of every dataset lives
on node ``i mod N``, so datasets derived from one another stay co-located
and narrow stages never shuffle.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.datasets import Dataset, Partition
from ..core.errors import FaultError
from ..core.state import ExecutionState
from ..obs.registry import MetricsRegistry
from ..trace import Trace
from .clock import SimClock
from .costmodel import CostModel, GB
from .memory import LRUPolicy, MemoryPolicy
from .metrics import Metrics
from .node import Node, PartitionKey


@dataclass
class DatasetRecord:
    """Bookkeeping for one live dataset.

    ``partition_keys`` are the node-store keys backing each partition.  For
    ordinary datasets they are ``(dataset_id, i)``; for *composite*
    datasets (a choose keeping several branches, Definition 3.3's ``⊕``)
    they point at the member datasets' partitions — concatenation is pure
    metadata at the master, no bytes move.
    """

    dataset_id: str
    producer: Optional[str]
    partition_nodes: List[str]  # node id per partition index
    partition_bytes: List[int]
    pinned: bool = False
    partition_keys: Optional[List[PartitionKey]] = None

    def __post_init__(self):
        if self.partition_keys is None:
            self.partition_keys = [
                (self.dataset_id, i) for i in range(len(self.partition_nodes))
            ]

    @property
    def num_partitions(self) -> int:
        return len(self.partition_nodes)

    @property
    def nbytes(self) -> int:
        return sum(self.partition_bytes)


@dataclass
class FailureReport:
    """What one ``fail_node`` call destroyed, and what survived it.

    * ``reload`` — in-memory partitions with a checkpoint copy that fell
      back to the failed node's stable storage (transient failures only);
      recovery charges a disk read and promotes them back.
    * ``relocated`` — checkpointed partitions re-placed as disk copies on
      surviving nodes (permanent failures: the dead node's stable-storage
      state is re-fetched by its successors).
    * ``lost`` — partitions whose payload is gone; only lineage recompute
      (or a free drop, for dead data) can bring them back.
    """

    node_id: str
    permanent: bool = False
    reload: List[PartitionKey] = field(default_factory=list)
    relocated: List[PartitionKey] = field(default_factory=list)
    lost: List[PartitionKey] = field(default_factory=list)

    @property
    def reloadable(self) -> List[PartitionKey]:
        return self.reload + self.relocated


class Cluster:
    """A set of worker nodes with a shared cost model and memory policy."""

    def __init__(
        self,
        num_workers: int = 4,
        mem_per_worker: int = 1 * GB,
        cost_model: Optional[CostModel] = None,
        policy: Optional[MemoryPolicy] = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.cost_model = cost_model or CostModel()
        self.policy = policy or LRUPolicy()
        self.clock = SimClock()
        self.obs = MetricsRegistry()
        self.metrics = Metrics().bind(self.obs)
        self.trace = Trace(clock=self.clock)
        self.nodes: List[Node] = [
            Node(f"worker-{i}", mem_per_worker) for i in range(num_workers)
        ]
        self._records: Dict[str, DatasetRecord] = {}
        #: permanently failed (decommissioned) node ids — excluded from
        #: placement and from the worker count until ``reset``
        self._dead: Set[str] = set()
        #: cumulative per-node busy seconds (io + compute charged against
        #: the node), fed by the executor/recovery paths; the timeline
        #: sampler reads it to derive per-node utilisation over time
        self.busy_seconds: Dict[str, float] = {}
        self._watch_nodes()
        self._wire_trace()

    def note_busy(self, node_id: str, seconds: float) -> None:
        """Accumulate busy (io/compute) seconds charged against a node."""
        if seconds:
            self.busy_seconds[node_id] = self.busy_seconds.get(node_id, 0.0) + seconds

    def _watch_nodes(self) -> None:
        """Wire each node's memory changes into its per-node gauge."""
        for node in self.nodes:
            gauge = self.obs.gauge("node_memory_in_use", node=node.id)
            node.observer = (lambda n=node, g=gauge: g.set(n.mem_used))
            node.observer()

    def _wire_trace(self) -> None:
        """Count detached live subscribers in the metrics registry.

        A raising trace subscriber is detached by the bus (never fatal to
        the job); this hook makes the failure visible as the
        ``live_subscriber_errors`` counter so dashboards and CI can spot
        a broken monitor.
        """
        counter = self.obs.counter("live_subscriber_errors")
        self.trace.on_subscriber_error = (
            lambda callback, exc, c=counter: c.inc()
        )

    # ------------------------------------------------------------ topology
    @property
    def num_workers(self) -> int:
        return len(self.alive_nodes)

    @property
    def alive_nodes(self) -> List[Node]:
        """Nodes currently accepting work (decommissioned ones excluded)."""
        if not self._dead:
            return self.nodes
        return [n for n in self.nodes if n.id not in self._dead]

    def node(self, node_id: str) -> Node:
        for node in self.nodes:
            if node.id == node_id:
                return node
        raise KeyError(node_id)

    def node_for_partition(self, index: int) -> Node:
        alive = self.alive_nodes
        return alive[index % len(alive)]

    # ------------------------------------------------------------ datasets
    def dataset_ids(self) -> List[str]:
        return list(self._records)

    def has_dataset(self, dataset_id: str) -> bool:
        return dataset_id in self._records

    def record(self, dataset_id: str) -> DatasetRecord:
        return self._records[dataset_id]

    def live_dataset_count(self) -> int:
        return len(self._records)

    def register_dataset(self, dataset: Dataset) -> Dict[str, float]:
        """Place a dataset's partitions round-robin; returns per-node seconds.

        Storing charges memory-write time (or disk-write time when the
        partition cannot fit in memory at all) on the receiving node.
        """
        per_node: Dict[str, float] = {}
        nodes: List[str] = []
        for partition in dataset.partitions:
            node = self.node_for_partition(partition.index)
            seconds = self._store(node, partition)
            per_node[node.id] = per_node.get(node.id, 0.0) + seconds
            nodes.append(node.id)
        self._records[dataset.id] = DatasetRecord(
            dataset.id, dataset.producer, nodes, [p.nominal_bytes for p in dataset.partitions]
        )
        self.metrics.peak_datasets_stored = max(
            self.metrics.peak_datasets_stored, len(self._records)
        )
        self.trace.emit(
            "dataset_registered",
            dataset=dataset.id,
            producer=dataset.producer,
            nbytes=self._records[dataset.id].nbytes,
            partitions=len(nodes),
        )
        return per_node

    def _store(self, node: Node, partition: Partition) -> float:
        nbytes = partition.nominal_bytes
        key = partition.key
        seconds = 0.0
        if nbytes > node.mem_capacity:
            node.put(key, partition.data, nbytes, self.clock.now, in_memory=False)
            self.obs.counter(
                "bytes_written_disk", node=node.id, dataset=key[0]
            ).inc(nbytes)
            self.trace.emit(
                "partition_stored",
                dataset=key[0],
                index=key[1],
                node=node.id,
                nbytes=nbytes,
                tier="disk",
            )
            return self.cost_model.disk_write_time(nbytes)
        seconds += self._ensure_space(node, nbytes)
        node.put(key, partition.data, nbytes, self.clock.now, in_memory=True)
        self.obs.counter(
            "bytes_written_memory", node=node.id, dataset=key[0]
        ).inc(nbytes)
        self.trace.emit(
            "partition_stored",
            dataset=key[0],
            index=key[1],
            node=node.id,
            nbytes=nbytes,
            tier="memory",
        )
        seconds += self.cost_model.mem_write_time(nbytes)
        return seconds

    def register_composite(
        self, dataset_id: str, member_ids: List[str], producer: Optional[str] = None
    ) -> None:
        """Fuse member datasets into one logical dataset (zero-copy ``⊕``).

        The members' records are absorbed: the composite's partitions point
        at the members' node slots, so no data moves and memory accounting
        is unchanged.  This is how a choose keeping several branches hands
        their datasets downstream.
        """
        keys: List[PartitionKey] = []
        nodes: List[str] = []
        sizes: List[int] = []
        for member_id in member_ids:
            record = self._records.pop(member_id)
            keys.extend(record.partition_keys)
            nodes.extend(record.partition_nodes)
            sizes.extend(record.partition_bytes)
        self._records[dataset_id] = DatasetRecord(
            dataset_id, producer, nodes, sizes, partition_keys=keys
        )
        self.metrics.peak_datasets_stored = max(
            self.metrics.peak_datasets_stored, len(self._records)
        )
        self.trace.emit(
            "composite_registered",
            dataset=dataset_id,
            members=list(member_ids),
            producer=producer,
        )

    def load_partition(self, dataset_id: str, index: int) -> Tuple[Any, float, str]:
        """Read one partition; returns ``(payload, seconds, node_id)``.

        A memory-resident partition is a *hit* (memory-read time); a
        disk-resident one is a *miss* (streamed from disk at disk-read
        time).
        """
        record = self._records[dataset_id]
        node = self.node(record.partition_nodes[index])
        key: PartitionKey = record.partition_keys[index]
        slot = node.slot(key)
        nbytes = slot.nbytes
        if slot.in_memory:
            node.touch(key, self.clock.now)
            access = dict(node=node.id, dataset=dataset_id)
            self.obs.counter("partition_hits", **access).inc()
            self.obs.counter("bytes_read_memory", **access).inc(nbytes)
            seconds = self.cost_model.mem_read_time(nbytes)
            self.trace.emit(
                "dataset_access",
                dataset=dataset_id,
                index=index,
                node=node.id,
                hit=True,
                nbytes=nbytes,
                seconds=seconds,
                reload=False,
            )
            return slot.payload, seconds, node.id
        # miss: stream the partition from disk.  It is *not* promoted back
        # into memory — tasks stream spilled inputs (as Spark does); data
        # only re-enters memory as part of newly produced outputs.  An
        # eviction of still-needed data therefore costs one disk read per
        # future access, which is exactly what AMM's preference weighs.
        access = dict(node=node.id, dataset=dataset_id)
        self.obs.counter("partition_misses", **access).inc()
        self.obs.counter("bytes_read_disk", **access).inc(nbytes)
        node.touch(key, self.clock.now)
        seconds = self.cost_model.disk_read_time(nbytes)
        self.trace.emit(
            "dataset_access",
            dataset=dataset_id,
            index=index,
            node=node.id,
            hit=False,
            nbytes=nbytes,
            seconds=seconds,
            reload=slot.evicted,
        )
        return slot.payload, seconds, node.id

    def peek_payloads(self, dataset_id: str) -> List[Any]:
        """Read payloads without cost accounting (test/debug helper)."""
        record = self._records[dataset_id]
        out = []
        for key, node_id in zip(record.partition_keys, record.partition_nodes):
            out.append(self.node(node_id).slot(key).payload)
        return out

    def materialize(self, dataset_id: str, producer: Optional[str] = None) -> Dataset:
        """Rebuild a :class:`Dataset` view over a registered dataset.

        Does not charge access costs — callers that model reads (the choose
        evaluator, the sink) account for them explicitly.
        """
        record = self._records[dataset_id]
        parts = []
        for index, (key, node_id) in enumerate(
            zip(record.partition_keys, record.partition_nodes)
        ):
            slot = self.node(node_id).slot(key)
            parts.append(Partition(dataset_id, index, slot.payload, slot.nbytes))
        return Dataset(parts, dataset_id=dataset_id, producer=producer or record.producer)

    def discard_dataset(self, dataset_id: str) -> None:
        """Free a dataset everywhere (memory and disk) at zero cost (R3)."""
        record = self._records.pop(dataset_id, None)
        if record is None:
            return
        for key, node_id in zip(record.partition_keys, record.partition_nodes):
            self.node(node_id).remove(key)
        self.obs.counter("datasets_discarded", dataset=dataset_id).inc()
        self.trace.emit("dataset_discarded", dataset=dataset_id)

    def pin_dataset(self, dataset_id: str) -> None:
        """Mark every partition as pinned (Spark ``cache()`` emulation)."""
        record = self._records[dataset_id]
        record.pinned = True
        for key, node_id in zip(record.partition_keys, record.partition_nodes):
            self.node(node_id).slot(key).pinned = True

    # -------------------------------------------------------------- memory
    def _ensure_space(self, node: Node, nbytes: int) -> float:
        """Evict until ``nbytes`` fit in memory; returns spill seconds.

        Victims come from one policy ``eviction_round`` per call: the
        ranking inputs cannot change while a store is in flight, so the
        policy ranks the candidates once instead of re-sorting them per
        eviction.  The round runs dry when its tier is exhausted (e.g. all
        unpinned slots evicted); the node is then re-consulted, which is
        how the pinned-slots-as-last-resort fallback engages.
        """
        seconds = 0.0
        round_ = None
        while node.free_memory() < nbytes:
            if round_ is None:
                candidates = node.eviction_candidates()
                if not candidates:
                    # Nothing evictable: the caller's partition goes to disk
                    # via the capacity check; protected slots stay resident.
                    break
                round_ = self.policy.eviction_round(node, candidates)
            # the ranking snapshot reflects the candidates before the
            # demotion mutates the node, so the validator sees exactly
            # what the policy ranked
            victim, ranking = round_.pop()
            if victim is None:
                round_ = None
                if not node.eviction_candidates():
                    break
                continue
            spilled = self.policy.should_spill(victim)
            self.trace.emit(
                "partition_evicted",
                node=node.id,
                dataset=victim.dataset_id,
                index=victim.key[1],
                nbytes=victim.nbytes,
                spilled=spilled,
                policy=self.policy.name,
                alpha=getattr(self.policy, "_alpha", None),
                ranking=ranking,
            )
            node.demote(victim.key).evicted = True
            self.policy.record_eviction(self.obs, node, victim, spilled)
            if spilled:
                seconds += self.cost_model.disk_write_time(victim.nbytes)
            # else: the policy knows the data is dead — dropped for free
        return seconds

    @contextlib.contextmanager
    def protect(self, dataset_ids: Iterable[str]):
        """Shield the given datasets' partitions from eviction for the
        duration (inputs of the currently executing stage)."""
        grouped: Dict[str, List[PartitionKey]] = {}
        for dataset_id in dataset_ids:
            record = self._records.get(dataset_id)
            if record is None:
                continue
            for key, node_id in zip(record.partition_keys, record.partition_nodes):
                grouped.setdefault(node_id, []).append(key)
        for node_id, node_keys in grouped.items():
            self.node(node_id).protected.update(node_keys)
        try:
            yield
        finally:
            for node_id, node_keys in grouped.items():
                self.node(node_id).protected.difference_update(node_keys)

    # -------------------------------------------------------------- faults
    def fail_node(
        self, node_id: str, permanent: bool = False, reason: str = "injected"
    ) -> FailureReport:
        """Crash a node and report what its failure cost the cluster.

        A *transient* failure (the default) wipes the node's memory: slots
        with a checkpoint copy fall back to stable storage (reloadable),
        purely memory-resident slots are lost; local disk spills survive
        the restart.  A *permanent* failure decommissions the node — only
        checkpointed partitions survive, re-fetched from stable storage
        onto the surviving nodes as disk copies, and the node drops out of
        placement until :meth:`reset` (graceful degradation).
        """
        node = self.node(node_id)
        report = FailureReport(node_id=node_id, permanent=permanent)
        if node_id in self._dead:
            return report  # already decommissioned: nothing left to lose
        if permanent:
            self._dead.add(node_id)
            survivors = self.alive_nodes
            if not survivors:
                self._dead.discard(node_id)
                raise FaultError(
                    f"no surviving workers after permanent failure of {node_id!r}"
                )
            for key, slot in sorted(node.slots.items()):
                if slot.checkpointed:
                    target = survivors[key[1] % len(survivors)]
                    moved = target.put(
                        key, slot.payload, slot.nbytes, self.clock.now, in_memory=False
                    )
                    moved.checkpointed = True
                    moved.pinned = slot.pinned
                    self._repoint(key, target.id)
                    report.relocated.append(key)
                else:
                    report.lost.append(key)
            node.slots.clear()
            node.protected.clear()
            node.mem_used = 0
            node._notify()
        else:
            report.reload, report.lost = node.fail_memory()
        self.trace.emit(
            "node_failed",
            node=node_id,
            permanent=permanent,
            lost=len(report.lost),
            reloadable=len(report.reloadable),
        )
        if permanent:
            self.trace.emit("node_decommissioned", node=node_id, reason=reason)
        return report

    def mark_checkpointed(self, dataset_id: str) -> None:
        """Flag a dataset's partitions as checkpoint-backed (§5).

        Checkpointed partitions survive node failures: a restarted node
        reloads them from stable storage instead of triggering a lineage
        recompute.
        """
        record = self._records.get(dataset_id)
        if record is None:
            return
        for key, node_id in zip(record.partition_keys, record.partition_nodes):
            node = self.node(node_id)
            if node.has(key):
                node.slot(key).checkpointed = True

    def _locate(self, key: PartitionKey) -> Tuple[Optional[DatasetRecord], int]:
        """The record (and position) whose partitions include ``key``."""
        for record in self._records.values():
            for pos, candidate in enumerate(record.partition_keys):
                if candidate == key:
                    return record, pos
        return None, -1

    def owner_of(self, key: PartitionKey) -> Optional[Tuple[str, int]]:
        """The live dataset (id, position) referencing a partition key.

        A key admitted under one dataset id may later be owned by another:
        a choose absorbing branch tails into a composite pops the member
        records but keeps their slots.  The result cache resolves reads
        through this so they are attributed to the live owner (R3).
        """
        record, pos = self._locate(key)
        if record is None:
            return None
        return record.dataset_id, pos

    def key_available(self, key: PartitionKey) -> Optional[Tuple[str, int]]:
        """Like :meth:`owner_of`, but only when the bytes are readable now:
        the home node must be alive and still hold the slot (a failure may
        have destroyed it while the record awaits recovery)."""
        record, pos = self._locate(key)
        if record is None:
            return None
        node_id = record.partition_nodes[pos]
        if node_id in self._dead or not self.node(node_id).has(key):
            return None
        return record.dataset_id, pos

    def key_in_memory(self, key: PartitionKey) -> bool:
        """Whether a partition key is memory-resident (cost estimation)."""
        record, pos = self._locate(key)
        if record is None:
            return False
        node = self.node(record.partition_nodes[pos])
        return node.has(key) and node.slot(key).in_memory

    def _repoint(self, key: PartitionKey, node_id: str) -> None:
        """Update every record referencing ``key`` to its new home node."""
        for record in self._records.values():
            for pos, candidate in enumerate(record.partition_keys):
                if candidate == key:
                    record.partition_nodes[pos] = node_id

    def recover_reload(self, key: PartitionKey, promote: bool = True) -> float:
        """Reload one checkpoint-resident partition after a failure.

        Charges a disk read from the checkpoint copy; with ``promote`` the
        slot re-enters memory (its pre-failure residency), evicting under
        pressure like any other store.  Returns the charged seconds.
        """
        record, pos = self._locate(key)
        if record is None:
            return 0.0
        node = self.node(record.partition_nodes[pos])
        if not node.has(key):
            return 0.0
        slot = node.slot(key)
        seconds = self.cost_model.disk_read_time(slot.nbytes)
        self.obs.counter(
            "bytes_read_disk", node=node.id, dataset=record.dataset_id
        ).inc(slot.nbytes)
        self.obs.counter("recoveries", node=node.id).inc()
        if promote and not slot.in_memory:
            seconds += self._ensure_space(node, slot.nbytes)
            if node.free_memory() >= slot.nbytes:
                node.promote(key, self.clock.now)
                seconds += self.cost_model.mem_write_time(slot.nbytes)
        self.note_busy(node.id, seconds)
        self.trace.emit(
            "recovery",
            dataset=record.dataset_id,
            index=pos,
            nbytes=slot.nbytes,
            node=node.id,
            action="reload",
        )
        return seconds

    def restore_partitions(
        self,
        dataset: Dataset,
        into: Optional[str] = None,
        keys: Optional[Iterable[PartitionKey]] = None,
    ) -> Dict[str, float]:
        """Re-store recomputed partitions into an existing dataset record.

        Used by lineage recovery: the record — and therefore any composite
        or choose alias pointing at it — keeps its identity; only the node
        slots named by ``keys`` (default: all of the dataset's) are filled
        back in.  Partitions homed on a decommissioned node are re-placed
        round-robin across the survivors.  Returns per-node store seconds.
        """
        record = self._records[into or dataset.id]
        wanted = set(keys) if keys is not None else None
        per_node: Dict[str, float] = {}
        for partition in dataset.partitions:
            key = partition.key
            if wanted is not None and key not in wanted:
                continue
            try:
                pos = record.partition_keys.index(key)
            except ValueError:
                raise FaultError(
                    f"recomputed partition {key} does not belong to dataset "
                    f"{record.dataset_id!r}"
                ) from None
            node = self.node(record.partition_nodes[pos])
            if node.id in self._dead:
                node = self.node_for_partition(partition.index)
                record.partition_nodes[pos] = node.id
            seconds = self._store(node, partition)
            per_node[node.id] = per_node.get(node.id, 0.0) + seconds
            if record.pinned:
                node.slot(key).pinned = True
        return per_node

    def missing_partitions(self, dataset_id: str) -> List[PartitionKey]:
        """Partition keys of a registered dataset with no backing slot."""
        record = self._records[dataset_id]
        return [
            key
            for key, node_id in zip(record.partition_keys, record.partition_nodes)
            if not self.node(node_id).has(key)
        ]

    # ------------------------------------------------------------ snapshot
    def snapshot_state(self) -> ExecutionState:
        """The Appendix A state ``(D, δ, μ)`` at this instant."""
        sizes: Dict[Tuple[str, str], int] = {}
        in_memory: Dict[str, frozenset] = {}
        for node in self.nodes:
            mem_ids = set()
            for slot in node.slots.values():
                sizes[(node.id, slot.dataset_id)] = (
                    sizes.get((node.id, slot.dataset_id), 0) + slot.nbytes
                )
                if slot.in_memory:
                    mem_ids.add(slot.dataset_id)
            in_memory[node.id] = frozenset(mem_ids)
        return ExecutionState(
            datasets=frozenset(self._records),
            sizes=sizes,
            in_memory=in_memory,
            memory_limits={n.id: n.mem_capacity for n in self.nodes},
        )

    def reset(self) -> None:
        """Clear all datasets, metrics and the clock (cold start)."""
        for node in self.nodes:
            node.slots.clear()
            node.mem_used = 0
            node.protected.clear()
        self._records.clear()
        self._dead.clear()
        self.busy_seconds = {}
        self.clock.reset()
        self.obs = MetricsRegistry()
        self.metrics = Metrics().bind(self.obs)
        self.trace = Trace(clock=self.clock)
        self._watch_nodes()
        self._wire_trace()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Cluster(workers={self.num_workers}, "
            f"policy={self.policy.name}, datasets={len(self._records)})"
        )
