"""Deterministic simulated clock.

All completion times reported by the engine are simulated seconds advanced
through this clock, never wall-clock time.  This keeps every benchmark
deterministic and lets laptop-scale runs reproduce the *shape* of the
paper's cluster-scale results.

Subscribers (the telemetry timeline sampler) are notified after every
advance with the new time; they observe the clock, never drive it, so a
subscribed clock behaves identically to an unsubscribed one.
"""

from __future__ import annotations

from typing import Callable, List


class SimClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self):
        self._now = 0.0
        self._subscribers: List[Callable[[float], None]] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        for subscriber in tuple(self._subscribers):
            subscriber(self._now)
        return self._now

    def subscribe(self, callback: Callable[[float], None]) -> None:
        """Call ``callback(now)`` after every advance."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[float], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def reset(self) -> None:
        """Rewind to t=0.  Subscribers survive (they track runs, not time)."""
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimClock(t={self._now:.3f}s)"
