"""Deterministic simulated clock.

All completion times reported by the engine are simulated seconds advanced
through this clock, never wall-clock time.  This keeps every benchmark
deterministic and lets laptop-scale runs reproduce the *shape* of the
paper's cluster-scale results.
"""

from __future__ import annotations


class SimClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self):
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimClock(t={self._now:.3f}s)"
