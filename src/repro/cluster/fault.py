"""Checkpoint-based fault tolerance (§5 of the paper).

SEEP recovers failed operators from checkpoints; for MDFs the crucial
addition is that the *master* keeps the small evaluator scores of choose
operators, so a failure during branch exploration never forces re-running
whole branches just to recompute scores.

The simulated mechanism:

* the master snapshots choose scores (:class:`ChooseScoreStore`) as they
  arrive — recovery of a choose decision is free;
* a node failure wipes the node's memory; partitions with a checkpoint
  copy simply reload, partitions without any copy are recomputed from
  lineage by the engine (:class:`repro.engine.recovery.RecoveryManager`),
  and already-dead data (``acc = 0``) is dropped free.

:class:`FailureInjector` deterministically schedules failures — whole-node
crashes (:class:`FailureEvent`, optionally permanent) and transient task
failures retried with backoff (:class:`TaskFailureEvent`) — for tests and
the failure-injection benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cluster import Cluster, FailureReport
from .node import PartitionKey


class ChooseScoreStore:
    """Master-held store of choose evaluator scores (tiny, survives workers).

    Keyed by ``(choose_name, branch_id)``; exactly the state §5 says the
    master maintains so branch results never need recomputing just to
    recover a selection decision.
    """

    def __init__(self):
        self._scores: Dict[Tuple[str, str], float] = {}

    def put(self, choose_name: str, branch_id: str, score: float) -> None:
        self._scores[(choose_name, branch_id)] = score

    def get(self, choose_name: str, branch_id: str) -> Optional[float]:
        return self._scores.get((choose_name, branch_id))

    def has(self, choose_name: str, branch_id: str) -> bool:
        return (choose_name, branch_id) in self._scores

    def scores_for(self, choose_name: str) -> Dict[str, float]:
        return {
            branch: score
            for (choose, branch), score in self._scores.items()
            if choose == choose_name
        }

    def __len__(self) -> int:
        return len(self._scores)


@dataclass
class CheckpointConfig:
    """Periodic checkpointing of stage outputs (§5's fault-tolerance cost).

    Every ``interval_stages``-th executed stage writes its output dataset
    to stable storage.  The write overlaps with execution, so only
    ``overhead_fraction`` of the full disk-write time is charged.  With
    checkpointing disabled (the default) recovery relies on the spill
    copies that eviction produces anyway — the optimistic end of the
    spectrum; enabling it makes the recovery guarantee explicit and paid
    for.
    """

    interval_stages: int = 1
    overhead_fraction: float = 0.1

    def __post_init__(self):
        if self.interval_stages < 1:
            raise ValueError("interval_stages must be >= 1")
        if not 0.0 <= self.overhead_fraction <= 1.0:
            raise ValueError("overhead_fraction must be in [0, 1]")


@dataclass
class FailureEvent:
    """A scheduled node failure: fires before executing stage ``stage_index``.

    ``permanent`` decommissions the node (its partition shares rebalance
    across the survivors) instead of restarting it.
    """

    stage_index: int
    node_id: str
    fired: bool = False
    permanent: bool = False


@dataclass
class TaskFailureEvent:
    """A transient task failure: the node's tasks of stage ``stage_index``
    fail ``attempts`` times before succeeding.  The engine retries with
    backoff up to ``EngineConfig.max_task_retries``; beyond that the node
    is declared dead and decommissioned."""

    stage_index: int
    node_id: str
    attempts: int = 1
    fired: bool = False


class FailureInjector:
    """Deterministically injects failures at chosen stage boundaries."""

    def __init__(
        self,
        events: Optional[List[FailureEvent]] = None,
        task_events: Optional[List[TaskFailureEvent]] = None,
    ):
        self.events = events or []
        self.task_events = task_events or []

    @classmethod
    def at_stages(
        cls, pairs: List[Tuple[int, str]], permanent: bool = False
    ) -> "FailureInjector":
        return cls(
            [
                FailureEvent(stage_index, node_id, permanent=permanent)
                for stage_index, node_id in pairs
            ]
        )

    @classmethod
    def task_failures(cls, triples: List[Tuple[int, str, int]]) -> "FailureInjector":
        """Injector of transient task failures: ``(stage_index, node, attempts)``."""
        return cls(
            task_events=[
                TaskFailureEvent(stage_index, node_id, attempts)
                for stage_index, node_id, attempts in triples
            ]
        )

    def maybe_fail(self, cluster: Cluster, stage_index: int) -> List[FailureReport]:
        """Fire any due node failure; returns one report per failed node."""
        reports: List[FailureReport] = []
        for event in self.events:
            if not event.fired and event.stage_index == stage_index:
                event.fired = True
                reports.append(
                    cluster.fail_node(event.node_id, permanent=event.permanent)
                )
        return reports

    def due_task_failures(self, stage_index: int) -> List[TaskFailureEvent]:
        """Fire (and return) the task failures due at this stage boundary."""
        due: List[TaskFailureEvent] = []
        for event in self.task_events:
            if not event.fired and event.stage_index == stage_index:
                event.fired = True
                due.append(event)
        return due

    def unfired(self) -> List[Tuple[str, object]]:
        """Events that never fired (scheduled past the last stage index)."""
        out: List[Tuple[str, object]] = []
        for event in self.events:
            if not event.fired:
                out.append(("node", event))
        for task_event in self.task_events:
            if not task_event.fired:
                out.append(("task", task_event))
        return out


def recover_partitions(cluster: Cluster, lost: List[PartitionKey]) -> float:
    """Charge the recovery cost for partitions lost from a node's memory.

    Cluster-level approximation used by substrate tests and standalone
    simulations: partitions with a surviving disk/checkpoint copy reload
    (a plain recovery, *not* a re-execution); partitions without any copy
    count one ``recovery_reexecutions`` each, their upstream re-execution
    modelled as a disk reload at checkpoint bandwidth.  The engine's
    :class:`repro.engine.recovery.RecoveryManager` is the real successor:
    it replays actual lineage and uses the same counting rules.
    """
    seconds = 0.0
    for dataset_id, index in lost:
        if not cluster.has_dataset(dataset_id):
            continue
        record = cluster.record(dataset_id)
        nbytes = record.partition_bytes[index]
        node_id = record.partition_nodes[index]
        key = record.partition_keys[index]
        seconds += cluster.cost_model.disk_read_time(nbytes)
        cluster.obs.counter("recoveries", node=node_id).inc()
        if cluster.node(node_id).has(key):
            # a disk copy survives: reload it, no upstream work needed
            cluster.obs.counter(
                "bytes_read_disk", node=node_id, dataset=dataset_id
            ).inc(nbytes)
            action = "reload"
        else:
            cluster.obs.counter("recovery_reexecutions", node=node_id).inc()
            action = "recompute"
        cluster.trace.emit(
            "recovery",
            dataset=dataset_id,
            index=index,
            nbytes=nbytes,
            node=node_id,
            action=action,
        )
    return seconds
