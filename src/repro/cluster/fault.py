"""Checkpoint-based fault tolerance (§5 of the paper).

SEEP recovers failed operators from checkpoints; for MDFs the crucial
addition is that the *master* keeps the small evaluator scores of choose
operators, so a failure during branch exploration never forces re-running
whole branches just to recompute scores.

The simulated mechanism:

* the master snapshots choose scores (:class:`ChooseScoreStore`) as they
  arrive — recovery of a choose decision is free;
* a node failure wipes the node's memory; partitions that were only in
  memory are recomputed from their producing stage's inputs (charged as a
  recovery re-execution) while disk-resident partitions simply reload.

:class:`FailureInjector` deterministically schedules failures for tests and
the failure-injection benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cluster import Cluster
from .node import PartitionKey


class ChooseScoreStore:
    """Master-held store of choose evaluator scores (tiny, survives workers).

    Keyed by ``(choose_name, branch_id)``; exactly the state §5 says the
    master maintains so branch results never need recomputing just to
    recover a selection decision.
    """

    def __init__(self):
        self._scores: Dict[Tuple[str, str], float] = {}

    def put(self, choose_name: str, branch_id: str, score: float) -> None:
        self._scores[(choose_name, branch_id)] = score

    def get(self, choose_name: str, branch_id: str) -> Optional[float]:
        return self._scores.get((choose_name, branch_id))

    def has(self, choose_name: str, branch_id: str) -> bool:
        return (choose_name, branch_id) in self._scores

    def scores_for(self, choose_name: str) -> Dict[str, float]:
        return {
            branch: score
            for (choose, branch), score in self._scores.items()
            if choose == choose_name
        }

    def __len__(self) -> int:
        return len(self._scores)


@dataclass
class CheckpointConfig:
    """Periodic checkpointing of stage outputs (§5's fault-tolerance cost).

    Every ``interval_stages``-th executed stage writes its output dataset
    to stable storage.  The write overlaps with execution, so only
    ``overhead_fraction`` of the full disk-write time is charged.  With
    checkpointing disabled (the default) recovery relies on the spill
    copies that eviction produces anyway — the optimistic end of the
    spectrum; enabling it makes the recovery guarantee explicit and paid
    for.
    """

    interval_stages: int = 1
    overhead_fraction: float = 0.1

    def __post_init__(self):
        if self.interval_stages < 1:
            raise ValueError("interval_stages must be >= 1")
        if not 0.0 <= self.overhead_fraction <= 1.0:
            raise ValueError("overhead_fraction must be in [0, 1]")


@dataclass
class FailureEvent:
    """A scheduled node failure: fires before executing stage ``stage_index``."""

    stage_index: int
    node_id: str
    fired: bool = False


class FailureInjector:
    """Deterministically injects node failures at chosen stage boundaries."""

    def __init__(self, events: Optional[List[FailureEvent]] = None):
        self.events = events or []

    @classmethod
    def at_stages(cls, pairs: List[Tuple[int, str]]) -> "FailureInjector":
        return cls([FailureEvent(stage_index, node_id) for stage_index, node_id in pairs])

    def maybe_fail(self, cluster: Cluster, stage_index: int) -> List[PartitionKey]:
        """Fire any due failure; returns the partition keys lost from memory."""
        lost: List[PartitionKey] = []
        for event in self.events:
            if not event.fired and event.stage_index == stage_index:
                event.fired = True
                lost.extend(cluster.fail_node(event.node_id))
        return lost


def recover_partitions(cluster: Cluster, lost: List[PartitionKey]) -> float:
    """Charge the recovery cost for partitions lost from a node's memory.

    Datasets with surviving disk copies reload from disk; datasets without
    any copy must be recomputed upstream — modelled as a disk reload at the
    checkpoint read bandwidth (SEEP checkpoints operator state to stable
    storage), plus one recovery event in the metrics.
    """
    seconds = 0.0
    for dataset_id, index in lost:
        if not cluster.has_dataset(dataset_id):
            continue
        record = cluster.record(dataset_id)
        nbytes = record.partition_bytes[index]
        seconds += cluster.cost_model.disk_read_time(nbytes)
        cluster.metrics.bytes_read_disk += nbytes
        cluster.metrics.recoveries += 1
        cluster.metrics.recovery_reexecutions += 1
        cluster.trace.emit("recovery", dataset=dataset_id, index=index, nbytes=nbytes)
        # Reinstall the partition on its node as a disk-resident copy; the
        # next access promotes it like any other miss.  The payload itself
        # is unrecoverable in memory terms, so we mark the slot as lost by
        # leaving it absent — the engine re-registers when recomputing.
    return seconds
