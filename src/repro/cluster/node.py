"""Worker nodes of the simulated cluster.

Each node has finite memory ``mem(n)`` and unbounded disk (§2.1).  A node
stores partition *slots*: the real payload plus its nominal size and where
it currently lives (memory or disk).  Slots track their last access time
for the LRU policy and can be pinned (Spark ``cache()`` emulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

PartitionKey = Tuple[str, int]  # (dataset_id, partition_index)


@dataclass
class Slot:
    """One partition held at a node."""

    key: PartitionKey
    payload: Any
    nbytes: int
    in_memory: bool = True
    last_access: float = 0.0
    pinned: bool = False
    #: a checkpoint copy exists on stable storage (§5): the partition
    #: survives node failures and reloads instead of recomputing
    checkpointed: bool = False
    #: the slot is disk-resident because an eviction spilled it — reads
    #: that stream it back are *eviction-induced reloads*, the cost AMM's
    #: preference weighs.  Cleared when the slot re-enters memory.
    evicted: bool = False

    @property
    def dataset_id(self) -> str:
        return self.key[0]


class Node:
    """A worker node: finite memory, unbounded disk, a partition store."""

    def __init__(self, node_id: str, mem_capacity: int):
        if mem_capacity <= 0:
            raise ValueError("memory capacity must be positive")
        self.id = node_id
        self.mem_capacity = int(mem_capacity)
        self.slots: Dict[PartitionKey, Slot] = {}
        self.mem_used = 0
        #: keys that must not be evicted right now (inputs/outputs of the
        #: currently executing stage)
        self.protected: set = set()
        #: zero-arg callback invoked after every ``mem_used`` change (the
        #: cluster wires this to its per-node memory gauge)
        self.observer: Optional[Callable[[], None]] = None

    def _notify(self) -> None:
        if self.observer is not None:
            self.observer()

    # -------------------------------------------------------------- queries
    def has(self, key: PartitionKey) -> bool:
        return key in self.slots

    def slot(self, key: PartitionKey) -> Slot:
        return self.slots[key]

    def in_memory_slots(self) -> List[Slot]:
        return [s for s in self.slots.values() if s.in_memory]

    def memory_datasets(self) -> set:
        """Dataset ids with at least one in-memory partition here (``μ(n)``)."""
        return {s.dataset_id for s in self.slots.values() if s.in_memory}

    def free_memory(self) -> int:
        return self.mem_capacity - self.mem_used

    # ------------------------------------------------------------ mutations
    def put(self, key: PartitionKey, payload: Any, nbytes: int, now: float, in_memory: bool) -> Slot:
        """Insert or replace a slot; caller must have made space first."""
        existing = self.slots.get(key)
        if existing is not None and existing.in_memory:
            self.mem_used -= existing.nbytes
        slot = Slot(key, payload, int(nbytes), in_memory=in_memory, last_access=now)
        if existing is not None:
            slot.pinned = existing.pinned
            slot.checkpointed = existing.checkpointed
        self.slots[key] = slot
        if in_memory:
            self.mem_used += slot.nbytes
        self._notify()
        return slot

    def promote(self, key: PartitionKey, now: float) -> Slot:
        """Move a disk slot into memory; caller must have made space."""
        slot = self.slots[key]
        if not slot.in_memory:
            slot.in_memory = True
            slot.evicted = False
            self.mem_used += slot.nbytes
            self._notify()
        slot.last_access = now
        return slot

    def demote(self, key: PartitionKey) -> Slot:
        """Spill a memory slot to disk (the eviction mechanism)."""
        slot = self.slots[key]
        if slot.in_memory:
            slot.in_memory = False
            self.mem_used -= slot.nbytes
            self._notify()
        return slot

    def touch(self, key: PartitionKey, now: float) -> None:
        self.slots[key].last_access = now

    def remove(self, key: PartitionKey) -> Optional[Slot]:
        """Drop a slot entirely (dataset discarded); frees memory at no cost."""
        slot = self.slots.pop(key, None)
        if slot is not None and slot.in_memory:
            self.mem_used -= slot.nbytes
            self._notify()
        return slot

    def fail_memory(self) -> Tuple[List[PartitionKey], List[PartitionKey]]:
        """Simulate a node restart: the memory contents are wiped.

        Partitions with a checkpoint copy on stable storage (§5, SEEP's
        checkpoint mechanism) fall back to their disk copy and can simply
        reload; everything else held only in memory is *gone* and must be
        recomputed from lineage.  Disk-resident slots (spills, demoted
        checkpoints) survive a restart untouched.

        Returns ``(reloadable, lost)`` partition keys.
        """
        reloadable: List[PartitionKey] = []
        lost: List[PartitionKey] = []
        for key, slot in list(self.slots.items()):
            if not slot.in_memory:
                continue
            if slot.checkpointed:
                slot.in_memory = False
                reloadable.append(key)
            else:
                del self.slots[key]
                lost.append(key)
        self.mem_used = 0
        self._notify()
        return reloadable, lost

    def eviction_candidates(self) -> List[Slot]:
        """In-memory, unprotected, unpinned slots — in eviction order the
        policy will rank.  Pinned slots are only offered when nothing else
        is evictable (a full cache must still make progress)."""
        unpinned = [
            s
            for s in self.slots.values()
            if s.in_memory and s.key not in self.protected and not s.pinned
        ]
        if unpinned:
            return unpinned
        return [
            s
            for s in self.slots.values()
            if s.in_memory and s.key not in self.protected
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Node({self.id}, mem={self.mem_used}/{self.mem_capacity}, "
            f"slots={len(self.slots)})"
        )
