"""Memory management policies: LRU baseline and AMM (Algorithm 2).

When a node exhausts its memory, the policy picks the partition to evict.

* :class:`LRUPolicy` — evicts the least-recently-used partition, the policy
  of existing systems (Spark) the paper compares against.
* :class:`AMMPolicy` — anticipatory memory management: ranks each in-memory
  partition by the preference ``pre(d) = acc(d) · δ(n, d) · α`` where
  ``acc(d)`` is the number of *future* accesses the MDF structure implies
  (consumers of ``pro(d)`` not yet executed, minus pruned branches),
  ``δ(n, d)`` is the partition's size at the node, and ``α`` the hardware
  disk/memory cost ratio.  The partition with the lowest preference is
  evicted.

Two degenerate variants (:class:`AccessOnlyPolicy`, :class:`SizeOnlyPolicy`)
isolate the contribution of each factor in the preference formula — the
ablation DESIGN.md §5 calls out.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .node import Node, Slot

AccessCounter = Callable[[str], int]  # dataset_id -> remaining future accesses


class MemoryPolicy:
    """Strategy deciding which in-memory partition a node evicts."""

    name = "base"

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        raise NotImplementedError

    def bind(self, access_counter: Optional[AccessCounter], alpha: float) -> None:
        """Called by the engine before execution with workflow context.

        The default implementation ignores the context; AMM stores it.
        """

    def should_spill(self, slot: Slot) -> bool:
        """Whether an evicted partition must be written to disk.

        Workflow-oblivious policies cannot tell dead data from live data,
        so they always pay the spill.  AMM knows from the MDF structure
        when a dataset has no future readers (``acc = 0``) and drops it
        for free instead — requirement R4 in action.
        """
        return True

    def record_eviction(self, registry, node: Node, victim: Slot, spilled: bool) -> None:
        """Account one eviction into the labeled metrics registry.

        Called by the cluster right after it demotes ``victim``.  The
        policy's name is the ``policy`` label, so eviction hotspots can be
        broken down per node/dataset *and* compared across policies; a
        spill additionally counts the victim's bytes as disk writes, while
        a free drop (AMM's ``acc = 0`` case, R4) lands in the separate
        ``evictions_free`` counter.
        """
        if registry is None:
            return
        labels = dict(node=node.id, dataset=victim.dataset_id, policy=self.name)
        registry.counter("evictions", **labels).inc()
        if spilled:
            registry.counter(
                "bytes_written_disk", node=node.id, dataset=victim.dataset_id
            ).inc(victim.nbytes)
        else:
            registry.counter("evictions_free", **labels).inc()

    def ranking_snapshot(self, candidates: List[Slot]) -> List[Dict[str, Any]]:
        """What this policy ranked an eviction's candidates by.

        Recorded into every ``partition_evicted`` trace event so invariant
        validators can re-derive the decision.  Workflow-oblivious policies
        only expose recency; AMM overrides this to expose the full
        ``pre(d)`` inputs.
        """
        return [
            {
                "dataset": slot.dataset_id,
                "index": slot.key[1],
                "nbytes": slot.nbytes,
                "last_access": slot.last_access,
            }
            for slot in candidates
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class LRUPolicy(MemoryPolicy):
    """Least-recently-used eviction (the Spark/Tachyon baseline)."""

    name = "lru"

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        return min(candidates, key=lambda s: (s.last_access, s.key))


class AMMPolicy(MemoryPolicy):
    """Anticipatory memory management (Algorithm 2).

    ``pre(d) = acc(d) · δ(n, d) · α``; the slot with the lowest preference
    is evicted.  Ties break towards least-recently-used so behaviour is
    deterministic and degrades gracefully to LRU when the MDF provides no
    signal (all counts equal).
    """

    name = "amm"

    def __init__(self):
        self._access_counter: Optional[AccessCounter] = None
        self._alpha: float = 1.0

    def bind(self, access_counter: Optional[AccessCounter], alpha: float) -> None:
        self._access_counter = access_counter
        self._alpha = alpha

    def preference(self, slot: Slot) -> float:
        """The keep-in-memory preference ``pre(d)`` of one partition."""
        acc = 1
        if self._access_counter is not None:
            acc = self._access_counter(slot.dataset_id)
        return acc * slot.nbytes * self._alpha

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        return min(candidates, key=lambda s: (self.preference(s), s.last_access, s.key))

    def should_spill(self, slot: Slot) -> bool:
        if self._access_counter is None:
            return True
        return self._access_counter(slot.dataset_id) > 0

    def ranking_snapshot(self, candidates: List[Slot]) -> List[Dict[str, Any]]:
        """The full ``pre(d) = acc(d)·δ(n,d)·α`` inputs per candidate."""
        out: List[Dict[str, Any]] = []
        for slot in candidates:
            acc = (
                self._access_counter(slot.dataset_id)
                if self._access_counter is not None
                else None
            )
            out.append(
                {
                    "dataset": slot.dataset_id,
                    "index": slot.key[1],
                    "nbytes": slot.nbytes,
                    "last_access": slot.last_access,
                    "acc": acc,
                    "pre": self.preference(slot),
                }
            )
        return out

    def preference_order(self, node: Node) -> List[Slot]:
        """All in-memory slots ordered by rising preference (eviction order).

        This is the list the master ships to workers with each scheduling
        decision in the paper's implementation (§5).
        """
        return sorted(
            node.in_memory_slots(), key=lambda s: (self.preference(s), s.last_access, s.key)
        )


class AccessOnlyPolicy(AMMPolicy):
    """Ablation: AMM preference reduced to the future-access count only."""

    name = "amm-access-only"

    def preference(self, slot: Slot) -> float:
        acc = 1
        if self._access_counter is not None:
            acc = self._access_counter(slot.dataset_id)
        return float(acc)


class SizeOnlyPolicy(AMMPolicy):
    """Ablation: AMM preference reduced to partition size only."""

    name = "amm-size-only"

    def preference(self, slot: Slot) -> float:
        return float(slot.nbytes)


def make_policy(name: str) -> MemoryPolicy:
    """Factory used by benchmarks: ``lru``, ``amm``, or an ablation name."""
    policies = {
        "lru": LRUPolicy,
        "amm": AMMPolicy,
        "amm-access-only": AccessOnlyPolicy,
        "amm-size-only": SizeOnlyPolicy,
    }
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(f"unknown memory policy {name!r}") from None
