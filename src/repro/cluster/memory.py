"""Memory management policies: LRU baseline and AMM (Algorithm 2).

When a node exhausts its memory, the policy picks the partition to evict.

* :class:`LRUPolicy` — evicts the least-recently-used partition, the policy
  of existing systems (Spark) the paper compares against.
* :class:`AMMPolicy` — anticipatory memory management: ranks each in-memory
  partition by the preference ``pre(d) = acc(d) · δ(n, d) · α`` where
  ``acc(d)`` is the number of *future* accesses the MDF structure implies
  (consumers of ``pro(d)`` not yet executed, minus pruned branches),
  ``δ(n, d)`` is the partition's size at the node, and ``α`` the hardware
  disk/memory cost ratio.  The partition with the lowest preference is
  evicted.

Two degenerate variants (:class:`AccessOnlyPolicy`, :class:`SizeOnlyPolicy`)
isolate the contribution of each factor in the preference formula — the
ablation DESIGN.md §5 calls out.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from .node import Node, Slot

AccessCounter = Callable[[str], int]  # dataset_id -> remaining future accesses


class _GenericEvictionRound:
    """Per-eviction re-ranking, exactly as the historical eviction loop.

    Used for policies that override ``select_victim``/``ranking_snapshot``
    (including the deliberately-broken ones the validator tests ship): each
    :meth:`pop` re-runs both over the remaining candidates, so any custom
    behaviour — sound or not — is preserved observably unchanged.
    """

    def __init__(self, policy: "MemoryPolicy", node: Node, candidates: List[Slot]):
        self._policy = policy
        self._node = node
        self._candidates = list(candidates)

    def pop(self) -> Tuple[Optional[Slot], Optional[List[Dict[str, Any]]]]:
        if not self._candidates:
            return None, None
        victim = self._policy.select_victim(self._node, self._candidates)
        ranking = self._policy.ranking_snapshot(self._candidates)
        self._candidates.remove(victim)
        return victim, ranking


class _RankedEvictionRound:
    """Heap-ordered victims over one precomputed ranking pass.

    Within one ``_ensure_space`` call nothing that feeds the ranking can
    change — ``acc`` (the master mutates consumers only between stages),
    ``last_access`` (no loads happen mid-store) and sizes are all frozen —
    so the historical per-eviction re-sort recomputed identical values
    ``k`` times for ``k`` evictions.  This round ranks once: victims pop
    off a heap in ``O(log n)`` and each event's ranking snapshot is the
    surviving candidates in their original (node-store) order, exactly
    what a fresh ``ranking_snapshot`` over fresh ``eviction_candidates``
    would have produced.
    """

    def __init__(
        self,
        candidates: List[Slot],
        entries: List[Dict[str, Any]],
        order_keys: List[Any],
    ):
        self._slots = list(candidates)
        self._entries = entries
        self._alive = [True] * len(candidates)
        self._heap = [(key, i) for i, key in enumerate(order_keys)]
        heapq.heapify(self._heap)

    def pop(self) -> Tuple[Optional[Slot], Optional[List[Dict[str, Any]]]]:
        while self._heap:
            _, i = heapq.heappop(self._heap)
            if not self._alive[i]:  # pragma: no cover - victims leave via pop
                continue
            ranking = [
                entry
                for j, entry in enumerate(self._entries)
                if self._alive[j]
            ]
            self._alive[i] = False
            return self._slots[i], ranking
        return None, None


class MemoryPolicy:
    """Strategy deciding which in-memory partition a node evicts."""

    name = "base"

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        raise NotImplementedError

    def bind(self, access_counter: Optional[AccessCounter], alpha: float) -> None:
        """Called by the engine before execution with workflow context.

        The default implementation ignores the context; AMM stores it.
        """

    def should_spill(self, slot: Slot) -> bool:
        """Whether an evicted partition must be written to disk.

        Workflow-oblivious policies cannot tell dead data from live data,
        so they always pay the spill.  AMM knows from the MDF structure
        when a dataset has no future readers (``acc = 0``) and drops it
        for free instead — requirement R4 in action.
        """
        return True

    def record_eviction(self, registry, node: Node, victim: Slot, spilled: bool) -> None:
        """Account one eviction into the labeled metrics registry.

        Called by the cluster right after it demotes ``victim``.  The
        policy's name is the ``policy`` label, so eviction hotspots can be
        broken down per node/dataset *and* compared across policies; a
        spill additionally counts the victim's bytes as disk writes, while
        a free drop (AMM's ``acc = 0`` case, R4) lands in the separate
        ``evictions_free`` counter.
        """
        if registry is None:
            return
        labels = dict(node=node.id, dataset=victim.dataset_id, policy=self.name)
        registry.counter("evictions", **labels).inc()
        if spilled:
            registry.counter(
                "bytes_written_disk", node=node.id, dataset=victim.dataset_id
            ).inc(victim.nbytes)
        else:
            registry.counter("evictions_free", **labels).inc()

    def ranking_snapshot(self, candidates: List[Slot]) -> List[Dict[str, Any]]:
        """What this policy ranked an eviction's candidates by.

        Recorded into every ``partition_evicted`` trace event so invariant
        validators can re-derive the decision.  Workflow-oblivious policies
        only expose recency; AMM overrides this to expose the full
        ``pre(d)`` inputs.
        """
        return [
            {
                "dataset": slot.dataset_id,
                "index": slot.key[1],
                "nbytes": slot.nbytes,
                "last_access": slot.last_access,
            }
            for slot in candidates
        ]

    def eviction_round(self, node: Node, candidates: List[Slot]):
        """Victim iterator for one ``_ensure_space`` call.

        Returns an object whose ``pop()`` yields ``(victim, ranking)``
        pairs until the candidates run dry (``(None, None)``).  The base
        implementation re-ranks per eviction — byte-identical to the
        historical loop for any subclass; LRU/AMM override it with a
        single-pass ranked round when their stock ranking is in effect.
        """
        return _GenericEvictionRound(self, node, candidates)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class LRUPolicy(MemoryPolicy):
    """Least-recently-used eviction (the Spark/Tachyon baseline)."""

    name = "lru"

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        return min(candidates, key=lambda s: (s.last_access, s.key))

    def eviction_round(self, node: Node, candidates: List[Slot]):
        if (
            type(self).select_victim is not LRUPolicy.select_victim
            or type(self).ranking_snapshot is not MemoryPolicy.ranking_snapshot
        ):
            return super().eviction_round(node, candidates)
        entries = self.ranking_snapshot(candidates)
        keys = [(s.last_access, s.key) for s in candidates]
        return _RankedEvictionRound(candidates, entries, keys)


class AMMPolicy(MemoryPolicy):
    """Anticipatory memory management (Algorithm 2).

    ``pre(d) = acc(d) · δ(n, d) · α``; the slot with the lowest preference
    is evicted.  Ties break towards least-recently-used so behaviour is
    deterministic and degrades gracefully to LRU when the MDF provides no
    signal (all counts equal).
    """

    name = "amm"

    def __init__(self):
        self._access_counter: Optional[AccessCounter] = None
        self._alpha: float = 1.0

    def bind(self, access_counter: Optional[AccessCounter], alpha: float) -> None:
        self._access_counter = access_counter
        self._alpha = alpha

    def preference(self, slot: Slot) -> float:
        """The keep-in-memory preference ``pre(d)`` of one partition."""
        acc = 1
        if self._access_counter is not None:
            acc = self._access_counter(slot.dataset_id)
        return acc * slot.nbytes * self._alpha

    def select_victim(self, node: Node, candidates: List[Slot]) -> Slot:
        return min(candidates, key=lambda s: (self.preference(s), s.last_access, s.key))

    def should_spill(self, slot: Slot) -> bool:
        if self._access_counter is None:
            return True
        return self._access_counter(slot.dataset_id) > 0

    def ranking_snapshot(self, candidates: List[Slot]) -> List[Dict[str, Any]]:
        """The full ``pre(d) = acc(d)·δ(n,d)·α`` inputs per candidate."""
        out: List[Dict[str, Any]] = []
        for slot in candidates:
            acc = (
                self._access_counter(slot.dataset_id)
                if self._access_counter is not None
                else None
            )
            out.append(
                {
                    "dataset": slot.dataset_id,
                    "index": slot.key[1],
                    "nbytes": slot.nbytes,
                    "last_access": slot.last_access,
                    "acc": acc,
                    "pre": self.preference(slot),
                }
            )
        return out

    def eviction_round(self, node: Node, candidates: List[Slot]):
        if (
            type(self).select_victim is not AMMPolicy.select_victim
            or type(self).ranking_snapshot is not AMMPolicy.ranking_snapshot
        ):
            return super().eviction_round(node, candidates)
        # one ranking pass feeds both the heap order and every event's
        # snapshot: the per-eviction full re-sort (and its acc(d) lookups,
        # O(n·k) on large nodes) collapses to heapify + O(log n) pops
        entries = self.ranking_snapshot(candidates)
        keys = [
            (entry["pre"], slot.last_access, slot.key)
            for slot, entry in zip(candidates, entries)
        ]
        return _RankedEvictionRound(candidates, entries, keys)

    def preference_order(self, node: Node) -> List[Slot]:
        """All in-memory slots ordered by rising preference (eviction order).

        This is the list the master ships to workers with each scheduling
        decision in the paper's implementation (§5).  The decorate-sort
        computes ``pre(d)`` once per slot (``acc`` lookups are the costly
        part on large nodes) instead of once per comparison.
        """
        decorated = [
            (self.preference(s), s.last_access, s.key, s)
            for s in node.in_memory_slots()
        ]
        decorated.sort(key=lambda d: d[:3])
        return [d[3] for d in decorated]


class AccessOnlyPolicy(AMMPolicy):
    """Ablation: AMM preference reduced to the future-access count only."""

    name = "amm-access-only"

    def preference(self, slot: Slot) -> float:
        acc = 1
        if self._access_counter is not None:
            acc = self._access_counter(slot.dataset_id)
        return float(acc)


class SizeOnlyPolicy(AMMPolicy):
    """Ablation: AMM preference reduced to partition size only."""

    name = "amm-size-only"

    def preference(self, slot: Slot) -> float:
        return float(slot.nbytes)


#: Public alias for the eviction seam: a memory policy *is* the eviction
#: policy (``select_victim`` + ``should_spill`` + ``ranking_snapshot``).
EvictionPolicy = MemoryPolicy

# ------------------------------------------------------------------ registry

#: name -> factory() -> MemoryPolicy.  Mirrors the scheduler registry in
#: :mod:`repro.engine.policies`; factories return a fresh instance per
#: call (policies hold per-run bindings via :meth:`MemoryPolicy.bind`).
EVICTION_POLICIES: Dict[str, Callable[[], MemoryPolicy]] = {}


def register_eviction_policy(
    name: str, factory: Callable[[], MemoryPolicy]
) -> None:
    """Register an eviction policy under ``name`` for string resolution."""
    if name in EVICTION_POLICIES:
        raise ValueError(f"eviction policy {name!r} already registered")
    EVICTION_POLICIES[name] = factory


def available_policies() -> List[str]:
    """Registered eviction-policy names, sorted."""
    return sorted(EVICTION_POLICIES)


def make_policy(name: str) -> MemoryPolicy:
    """Resolve an eviction-policy name to a fresh instance.

    Used by ``run_mdf(memory=...)``, the benchmarks and the policy lab;
    any name added via :func:`register_eviction_policy` resolves here.
    """
    try:
        factory = EVICTION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown memory policy {name!r} (registered: {available_policies()})"
        ) from None
    return factory()


register_eviction_policy("lru", LRUPolicy)
register_eviction_policy("amm", AMMPolicy)
register_eviction_policy("amm-access-only", AccessOnlyPolicy)
register_eviction_policy("amm-size-only", SizeOnlyPolicy)
