"""Tasks: the unit of work shipped to workers (§2.1).

A task pairs an operator chain (one stage) with one data partition.  The
scheduler breaks a stage into one task per partition; stage completion time
is governed by the slowest node, with a small per-task master overhead that
reproduces the paper's observed sublinear scaling (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.stages import Stage


@dataclass(frozen=True)
class Task:
    """One (stage, partition) execution unit."""

    stage_id: str
    partition_index: int
    node_id: str


def expand_stage(stage: Stage, partition_nodes: List[str]) -> List[Task]:
    """One task per input partition, pinned to the partition's node."""
    return [
        Task(stage.id, index, node_id) for index, node_id in enumerate(partition_nodes)
    ]
