"""Stage schedulers: breadth-first baseline and branch-aware (Algorithm 1).

The master executes stages one at a time (stage scheduling, §4.1); the
scheduler decides which ready stage runs next.

* :class:`BFSScheduler` — the strategy of existing dataflow systems: stages
  execute in the order they become ready (a FIFO frontier), so all branches
  of an explore advance level by level and every branch completes before
  the choose can decide anything.
* :class:`BranchAwareScheduler` — Algorithm 1: depth-first traversal
  between an explore and its choose.  After executing a stage, its ready
  successors are the next candidates (``T_cand``); only when none are ready
  does the scheduler fall back to the pool of previously ready stages
  (``T_open``, the paper's *pending branch queue*).  Choose stages are
  taken as early as possible, and scheduling hints order sibling branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.stages import Stage
from .hints import SchedulingHint, SortedHint


class SchedulerContext:
    """What a scheduler may inspect when ranking candidate stages.

    Provided by the master: branch metadata per stage, the scores observed
    so far per explore scope (for model-based hints), static per-stage
    cost estimates (for cost-aware policies) and the stage graph's
    successor structure (for list-scheduling ranks).

    The context is strictly *read-only* for schedulers: a policy may
    change **when** a stage runs, never **what** the job computes (the
    byte-identity contract checked by ``repro.lab``'s differential
    matrix).  Anything the context exposes is derived from the MDF
    structure or already-recorded observations, so reading it cannot
    perturb the job.
    """

    def __init__(self):
        #: stage id -> (explore_name, branch_index, branch_params)
        self.stage_branch: Dict[str, Tuple[str, int, dict]] = {}
        #: explore_name -> list of (params, score) observed so far
        self.observed_scores: Dict[str, List[Tuple[dict, float]]] = {}
        #: explore_name -> nesting depth (deeper scopes scheduled first)
        self.scope_depth: Dict[str, int] = {}
        #: the job's metrics registry (set by the master); schedulers record
        #: their selections into it with the rationale as the policy label
        self.registry = None
        #: the job's :class:`~repro.core.stages.StageGraph` (set by the
        #: master); lets list schedulers walk successor chains
        self.stage_graph = None
        #: stage id -> modelled pessimistic wall seconds (set by the master
        #: when the scheduler declares ``needs_estimates``); explore/choose
        #: stages are metadata-only and carry no entry (treated as 0)
        self.stage_costs: Dict[str, float] = {}
        #: number of cluster workers (virtual lanes for work stealing)
        self.num_workers: int = 1
        self._upward_ranks: Optional[Dict[str, float]] = None

    def branch_info(self, stage: Stage) -> Optional[Tuple[str, int, dict]]:
        return self.stage_branch.get(stage.id)

    def stage_cost(self, stage: Stage) -> float:
        """Modelled wall seconds of one stage (0 for metadata stages)."""
        return self.stage_costs.get(stage.id, 0.0)

    def upward_rank(self, stage: Stage) -> float:
        """HEFT's upward rank: stage cost + longest downstream cost chain.

        Computed once over the whole stage graph on first use and cached
        for the job's lifetime (the graph and the static estimates never
        change mid-run — pruning only removes stages, which can only
        shorten true ranks, so the static rank stays an admissible
        priority).
        """
        if self._upward_ranks is None:
            self._upward_ranks = self._compute_upward_ranks()
        return self._upward_ranks.get(stage.id, 0.0)

    def _compute_upward_ranks(self) -> Dict[str, float]:
        if self.stage_graph is None:
            return {}
        ranks: Dict[str, float] = {}
        # reverse-topological accumulation over the stage DAG
        for stage in reversed(self.stage_graph.topological_stages()):
            succ_rank = max(
                (ranks.get(s.id, 0.0) for s in self.stage_graph.post(stage)),
                default=0.0,
            )
            ranks[stage.id] = self.stage_cost(stage) + succ_rank
        return ranks


class Scheduler:
    """Picks the next stage to execute from the ready set.

    The contract every policy must honour (documented in
    ``docs/scheduling.md`` and enforced by the master, the trace
    validators and ``repro.lab``'s differential matrix):

    * ``select`` returns a member of ``ready`` — nothing else is
      executable, and the master raises on any other pick;
    * the context is read-only — a scheduler observes, it never mutates
      job state;
    * policies are single-job objects — ``make_scheduler`` builds a fresh
      instance per run, so stateful policies (speculation, lane loads)
      need no reset logic.
    """

    name = "base"
    #: why the last ``select`` picked its stage — recorded into the
    #: ``stage_scheduled`` trace event for observability
    last_rationale: Optional[str] = None
    #: set True on policies that rank by modelled stage cost: the master
    #: then runs the static estimator once and fills
    #: ``SchedulerContext.stage_costs`` before the first ``select``
    needs_estimates: bool = False

    def select(
        self,
        ready: Sequence[Stage],
        last_executed: Optional[Stage],
        successors_of_last: Sequence[Stage],
        context: SchedulerContext,
    ) -> Stage:
        raise NotImplementedError

    def _record(self, context: SchedulerContext, stage: Stage) -> Stage:
        """Count the selection under its rationale; returns the stage."""
        registry = getattr(context, "registry", None)
        if registry is not None:
            registry.counter(
                "scheduler_selections",
                stage=stage.id,
                branch=stage.branch_id,
                policy=self.last_rationale,
            ).inc()
        return stage

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class BFSScheduler(Scheduler):
    """Breadth-first: run stages in the order they became ready."""

    name = "bfs"

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        # `ready` is maintained in became-ready order by the master.
        self.last_rationale = "fifo"
        return self._record(context, ready[0])


class BranchAwareScheduler(Scheduler):
    """Branch-aware scheduling (Algorithm 1) with scheduling hints."""

    name = "bas"

    def __init__(self, hint: Optional[SchedulingHint] = None):
        self.hint = hint or SortedHint()

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        ready_ids = {s.id for s in ready}
        candidates = [s for s in successors_of_last if s.id in ready_ids]
        fell_back = not candidates
        if fell_back:
            candidates = list(ready)  # fall back to T_open
        # Choose stages run as early as possible (finalise scopes, free data).
        chooses = [s for s in candidates if s.is_choose]
        if chooses:
            self.last_rationale = "choose-first"
            return self._record(context, chooses[0])
        self.last_rationale = "open-queue" if fell_back else "dfs-successor"
        return self._record(context, self._hinted(candidates, context))

    def _hinted(self, candidates: List[Stage], context: SchedulerContext) -> Stage:
        """Rank candidates: deepest scope first (finish inner explores
        before changing outer choices), then hint order within a scope."""
        by_scope: Dict[Optional[str], List[Tuple[int, Stage, dict]]] = {}
        scope_free: List[Stage] = []
        for stage in candidates:
            info = context.branch_info(stage)
            if info is None:
                scope_free.append(stage)
            else:
                explore_name, branch_index, params = info
                by_scope.setdefault(explore_name, []).append((branch_index, stage, params))
        if scope_free:
            # Stages outside any scope (pre-explore / post-choose) always
            # make global progress; run them first.
            return scope_free[0]
        # Deepest scope first: its choose closes earliest.
        deepest = max(by_scope, key=lambda name: context.scope_depth.get(name, 0))
        entries = by_scope[deepest]
        branch_candidates = [(index, params) for index, _, params in entries]
        observed = context.observed_scores.get(deepest, [])
        order = self.hint.order(branch_candidates, observed)
        rank = {index: pos for pos, index in enumerate(order)}
        entries.sort(key=lambda e: (rank.get(e[0], len(rank)), e[0]))
        return entries[0][1]
