"""Static cost estimation for MDFs (a pre-run planner).

§4.1 notes that a schedule's true cost can only be assessed in retrospect
(it depends on eviction decisions and pruned branches).  What *can* be
computed statically from the MDF structure and the nominal size model is
a pair of bounds:

* an **optimistic** bound — every read is a memory hit, every branch the
  selection can skip is skipped;
* a **pessimistic** bound — every read comes from disk, every branch
  executes.

The real engine, whatever its policy choices, lands between the two
(benchmarked in ``tests/engine/test_estimate.py``).  The estimator also
reports the peak simultaneously-live nominal bytes, which tells a user
whether a cluster's memory will be under pressure *before* running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.costmodel import CostModel
from ..core.choose import ChooseOperator
from ..core.explore import ExploreOperator
from ..core.mdf import MDF
from ..core.operators import Join, Source
from ..core.stages import Stage, StageGraph


@dataclass
class StageEstimate:
    """Static per-stage cost components."""

    stage_id: str
    ops: List[str]
    input_bytes: int
    output_bytes: int
    compute_units: float
    is_wide: bool
    #: modelled wall seconds under all-memory reads / all-disk reads; the
    #: cost-aware schedulers (HEFT list scheduling, work stealing) rank
    #: ready stages by these
    optimistic_seconds: float = 0.0
    pessimistic_seconds: float = 0.0


@dataclass
class CostEstimate:
    """Static bounds on an MDF's execution cost.

    ``optimistic_seconds`` assumes all-memory reads; ``pessimistic_seconds``
    assumes all-disk reads and writes; real runs land in between (given the
    same no-pruning assumption).  ``peak_live_bytes`` is the largest total
    nominal size of simultaneously needed datasets under eager release — a
    lower bound on the working set.
    """

    num_stages: int
    num_branches: int
    total_compute_units: float
    total_read_bytes: int
    total_write_bytes: int
    peak_live_bytes: int
    optimistic_seconds: float
    pessimistic_seconds: float
    stages: List[StageEstimate] = field(default_factory=list)

    def fits_in_memory(self, workers: int, mem_per_worker: int) -> bool:
        """Whether the peak working set fits the cluster's total memory."""
        return self.peak_live_bytes <= workers * mem_per_worker


def estimate_mdf(
    mdf: MDF,
    workers: int,
    cost_model: Optional[CostModel] = None,
    task_overhead: float = 0.0005,
    partitions_per_worker: int = 1,
) -> CostEstimate:
    """Statically estimate an MDF's execution cost (no-pruning assumption)."""
    cost_model = cost_model or CostModel()
    mdf.validate()
    stage_graph = StageGraph(mdf)
    order = stage_graph.topological_stages()

    output_bytes: Dict[str, int] = {}  # tail op name -> nominal output bytes
    stage_estimates: List[StageEstimate] = []
    total_compute = 0.0
    total_read = 0
    total_write = 0
    optimistic = 0.0
    pessimistic = 0.0

    # reference counts for the peak-live estimate
    remaining_readers: Dict[str, int] = {}
    live_bytes = 0
    peak_live = 0

    def effective_readers(op) -> int:
        count = 0
        for succ in mdf.post(op):
            if isinstance(succ, ExploreOperator):
                count += effective_readers(succ)
            else:
                count += 1
        return count

    tasks_per_stage = workers * partitions_per_worker

    for stage in order:
        head = stage.head
        if isinstance(head, ChooseOperator):
            # selection is master-side metadata work; the kept dataset is
            # an alias of a branch output (size of one branch, optimistic)
            branch_sizes = [
                output_bytes.get(p.name, 0) for p in mdf.pre(head)
            ]
            output_bytes[head.name] = max(branch_sizes, default=1)
            continue
        if stage.is_explore:
            (pred,) = mdf.pre(head)
            output_bytes[head.name] = output_bytes.get(pred.name, 0)
            continue

        if isinstance(head, Source):
            in_bytes = int(head.nominal_bytes or 1)
            chain = stage.ops[1:]
            source_read = in_bytes
        elif isinstance(head, Join):
            in_bytes = sum(
                output_bytes.get(name, 0) for name in head.input_names
            ) or 1
            chain = stage.ops
            source_read = 0
        else:
            (pred,) = mdf.pre(head)
            in_bytes = output_bytes.get(pred.name, 1)
            chain = stage.ops
            source_read = 0

        compute = 0.0
        cur = in_bytes
        for op in chain:
            compute += op.compute_cost(cur)
            cur = op.output_bytes(cur)
        out_bytes = cur
        output_bytes[stage.tail.name] = out_bytes

        total_compute += compute
        total_read += in_bytes
        total_write += out_bytes
        is_wide = not head.narrow

        compute_wall = cost_model.compute_time(compute / workers)
        overhead = tasks_per_stage * task_overhead
        network = (
            cost_model.network_time(in_bytes // workers) if is_wide else 0.0
        )
        opt_io = (
            cost_model.disk_read_time(source_read // workers)
            + cost_model.mem_read_time((in_bytes - source_read) // workers)
            + cost_model.mem_write_time(out_bytes // workers)
        )
        pes_io = (
            cost_model.disk_read_time(in_bytes // workers)
            + cost_model.disk_write_time(out_bytes // workers)
        )
        stage_opt = compute_wall + opt_io + overhead + network
        stage_pes = compute_wall + pes_io + overhead + network
        optimistic += stage_opt
        pessimistic += stage_pes

        stage_estimates.append(
            StageEstimate(
                stage.id,
                [op.name for op in stage.ops],
                in_bytes,
                out_bytes,
                compute,
                is_wide,
                optimistic_seconds=stage_opt,
                pessimistic_seconds=stage_pes,
            )
        )

        # live-set tracking (eager-release lower bound)
        live_bytes += out_bytes
        remaining_readers[stage.tail.name] = effective_readers(stage.tail)
        peak_live = max(peak_live, live_bytes)
        # consuming the input decrements its producer's reader count
        for pred in mdf.pre(head):
            name = pred.name
            # walk through explore forwarders to the real producer
            while isinstance(mdf.operator(name), ExploreOperator):
                (upstream,) = mdf.pre(mdf.operator(name))
                name = upstream.name
            if name in remaining_readers:
                remaining_readers[name] -= 1
                if remaining_readers[name] <= 0:
                    live_bytes -= output_bytes.get(name, 0)

    num_branches = sum(len(s.branches) for s in mdf.scopes.values())
    return CostEstimate(
        num_stages=len(stage_graph),
        num_branches=num_branches,
        total_compute_units=total_compute,
        total_read_bytes=total_read,
        total_write_bytes=total_write,
        peak_live_bytes=peak_live,
        optimistic_seconds=optimistic,
        pessimistic_seconds=pessimistic,
        stages=stage_estimates,
    )
