"""Scheduling hints for branch-aware scheduling (§4.2).

When several branches of the same explore are ready, the hint decides which
to execute first.  The paper names three kinds:

* priorities over the choices of an explorable — :class:`SortedHint`
  follows the explorable's domain order (what a monotone evaluator wants),
  :class:`PriorityHint` applies a user priority function;
* random order, as suggested by random hyper-parameter search —
  :class:`RandomHint`;
* stateful, model-based prioritisation learned from the scores of already
  executed branches — :class:`ModelBasedHint` fits a least-squares
  regression from numeric branch parameters to scores and schedules the
  most promising unexplored branch next.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class SchedulingHint:
    """Orders candidate branch indices of one explore scope."""

    name = "base"

    def order(
        self,
        candidates: Sequence[Tuple[int, Dict[str, Any]]],
        observed: Sequence[Tuple[Dict[str, Any], float]],
    ) -> List[int]:
        """Rank candidates best-first.

        ``candidates`` are ``(branch_index, params)`` pairs still to run;
        ``observed`` are ``(params, score)`` pairs of already scored
        branches (empty until the first choose evaluation).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class SortedHint(SchedulingHint):
    """Deterministic domain order (branch index order).

    With a monotone evaluator this is the order that lets the scheduler
    stop as soon as scores start losing (Fig. 8, *first-4 sorted*).
    """

    name = "sorted"

    def order(self, candidates, observed) -> List[int]:
        return [index for index, _ in sorted(candidates, key=lambda c: c[0])]


class RandomHint(SchedulingHint):
    """Random branch order (random hyper-parameter search, Fig. 8)."""

    name = "random"

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)

    def order(self, candidates, observed) -> List[int]:
        indices = [index for index, _ in candidates]
        self.rng.shuffle(indices)
        return list(indices)


class PriorityHint(SchedulingHint):
    """User-supplied priority function over branch parameters (domain
    knowledge); highest priority first."""

    name = "priority"

    def __init__(self, priority_fn: Callable[[Dict[str, Any]], float]):
        self.priority_fn = priority_fn

    def order(self, candidates, observed) -> List[int]:
        return [
            index
            for index, _ in sorted(
                candidates, key=lambda c: (-self.priority_fn(c[1]), c[0])
            )
        ]


class ModelBasedHint(SchedulingHint):
    """Model-based prioritisation (SMAC-style, [19] in the paper).

    Fits a linear least-squares model from numeric branch parameters to the
    observed scores and orders unexplored branches by predicted score
    (descending when ``maximize``).  Falls back to domain order until
    enough observations exist or when parameters are non-numeric.
    """

    name = "model"

    def __init__(self, maximize: bool = True, min_observations: int = 3):
        self.maximize = maximize
        self.min_observations = min_observations

    @staticmethod
    def _features(params: Dict[str, Any]) -> Optional[List[float]]:
        feats = []
        for key in sorted(params):
            value = params[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return None
            feats.append(float(value))
        return feats

    def order(self, candidates, observed) -> List[int]:
        fallback = [index for index, _ in sorted(candidates, key=lambda c: c[0])]
        if len(observed) < self.min_observations:
            return fallback
        xs, ys = [], []
        for params, score in observed:
            feats = self._features(params)
            if feats is None:
                return fallback
            xs.append(feats + [1.0])
            ys.append(score)
        cand_feats = []
        for index, params in candidates:
            feats = self._features(params)
            if feats is None:
                return fallback
            cand_feats.append((index, feats + [1.0]))
        try:
            coef, *_ = np.linalg.lstsq(np.asarray(xs), np.asarray(ys), rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate inputs
            return fallback
        sign = -1.0 if self.maximize else 1.0
        ranked = sorted(
            cand_feats,
            key=lambda cf: (sign * float(np.dot(coef, cf[1])), cf[0]),
        )
        return [index for index, _ in ranked]
