"""Top-level execution API: ``run_mdf`` and friends.

This is the function downstream users call::

    from repro import run_mdf, Cluster, GB

    cluster = Cluster(num_workers=8, mem_per_worker=4 * GB)
    result = run_mdf(mdf, cluster, scheduler="bas", memory="amm")
    print(result.completion_time, result.output)

``scheduler`` picks any registered scheduling policy by name — the paper's
branch-aware ``"bas"`` (Algorithm 1), the ``"bfs"`` baseline, or one of
the lab contenders (``"heft"``, ``"speculative"``, ``"wsteal"``,
``"random"``; see :mod:`repro.engine.policies`).  ``memory`` picks the
eviction policy by name (``"lru"``, ``"amm"``/Algorithm 2, or any name in
:data:`repro.cluster.memory.EVICTION_POLICIES`).  The cluster is reset
before the run (cold caches) unless ``reset=False``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from ..cluster.cluster import Cluster
from ..cluster.memory import MemoryPolicy, make_policy
from ..core.mdf import MDF
from ..obs.telemetry import Telemetry
from ..obs.timeline import TelemetryConfig, TimelineSampler
from ..prof.collect import active_profile_collector
from ..trace.validate import assert_valid, auto_validate_enabled
from .job import EngineConfig, JobResult
from .master import Master
from .policies import available_schedulers, make_scheduler, register_scheduler
from .scheduler import Scheduler


def run_mdf(
    mdf: MDF,
    cluster: Cluster,
    scheduler: Union[str, Scheduler] = "bas",
    memory: Union[str, MemoryPolicy, None] = None,
    config: Optional[EngineConfig] = None,
    reset: bool = True,
    validate: Optional[bool] = None,
    telemetry: Union[bool, float, TelemetryConfig, None] = None,
    live=None,
    backend=None,
) -> JobResult:
    """Execute an MDF on a cluster and return the job result.

    Parameters
    ----------
    mdf:
        The meta-dataflow to execute (validated before the run).
    cluster:
        The simulated cluster.  Its clock and metrics are reset first
        unless ``reset=False`` (warm-cache continuation runs).
    scheduler:
        A registered policy name — ``"bas"`` (default, Algorithm 1),
        ``"bfs"``, ``"heft"``, ``"speculative"``, ``"wsteal"``,
        ``"random"`` or anything added via
        :func:`~repro.engine.policies.register_scheduler` — or a
        scheduler object.
    memory:
        ``"lru"``, ``"amm"``, a policy object, or None to keep the
        cluster's current policy.
    config:
        Engine knobs; defaults to incremental choose + pruning on.  A
        :class:`~repro.cluster.fault.FailureInjector` in ``config.failures``
        makes the run pay real recovery costs: lost partitions reload from
        checkpoints or recompute from lineage
        (:class:`~repro.engine.recovery.RecoveryManager`), and the
        ``recovery_sound`` validator checks the replay discipline.
    validate:
        Run the paper-invariant checkers (:mod:`repro.trace.validate`)
        over the recorded decision trace after the job finishes, raising
        :class:`~repro.trace.validate.InvariantViolation` on any breach.
        ``None`` (default) defers to the process-wide auto-validate flag
        (``repro.trace.set_auto_validate`` / ``python -m repro.bench
        --validate``).
    telemetry:
        Attach a :class:`~repro.obs.telemetry.Telemetry` bundle to the
        result (labeled registry, simulated-clock timeline, exporters).
        ``True`` samples at the default interval, a float sets the
        sampling interval in simulated seconds, and a
        :class:`~repro.obs.timeline.TelemetryConfig` gives full control.
        ``None``/``False`` (default) skips the sampler; the registry is
        always recorded and reachable as ``cluster.obs``.
    live:
        Attach a :class:`~repro.live.monitor.LiveMonitor` to the trace
        bus for the run's duration (streaming NDJSON, online
        progress/ETA, watchdogs; see ``docs/live_monitoring.md``).
        ``True`` builds a default monitor, a string/path streams the
        NDJSON there, a prebuilt monitor is attached as-is, and
        ``None`` (default) attaches nothing unless a process-wide
        :class:`~repro.live.hook.LiveHook` is installed (``python -m
        repro.bench --live``); ``False`` forces monitoring off even
        then.  The monitor is detached before returning and reachable
        as ``result.live``.  Live subscribers are pure observers — a
        monitored run's trace is byte-identical to an unmonitored one.
    backend:
        Execution backend for the real operator work: a registry name
        (``"serial"`` — the default — or ``"mp"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance.
        Overrides ``config.backend`` when given.  Backends only change
        real wall-clock time; simulated results are byte-identical
        across backends (see ``docs/parallel_execution.md``).
    """
    config = config or EngineConfig()
    if backend is not None:
        config = dataclasses.replace(config, backend=backend)
    if reset:
        cluster.reset()
    if memory is not None:
        cluster.policy = make_policy(memory) if isinstance(memory, str) else memory
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, config)
    sampler: Optional[TimelineSampler] = None
    if telemetry is not None and telemetry is not False:
        if isinstance(telemetry, TelemetryConfig):
            tconfig = telemetry
        elif telemetry is True:
            tconfig = TelemetryConfig()
        else:
            tconfig = TelemetryConfig(interval=float(telemetry))
        sampler = TimelineSampler(
            cluster, interval=tconfig.interval, max_samples=tconfig.max_samples
        ).attach()
    # --- live monitoring (repro.live): attach after reset, detach always.
    # Imported lazily — repro.live depends on the engine's estimator, so a
    # module-level import here would be circular.
    monitor = None
    hook = hook_buffer = None
    if live is None:
        from ..live.hook import active_live_hook

        hook = active_live_hook()
        if hook is not None:
            monitor, hook_buffer = hook.monitor_for_run()
    elif live is not False:
        from ..live.monitor import LiveMonitor

        if isinstance(live, LiveMonitor):
            monitor = live
        elif live is True:
            monitor = LiveMonitor()
        else:  # a path or writable stream for the NDJSON sink
            monitor = LiveMonitor(stream=live)
    if monitor is not None:
        from ..live.plan import LivePlan

        plan = LivePlan.from_mdf(
            mdf,
            cluster.num_workers,
            cost_model=cluster.cost_model,
            task_overhead=config.task_overhead,
            partitions_per_worker=config.partitions_per_worker,
        )
        monitor.attach(cluster.trace, plan=plan, registry=cluster.obs)
    master = Master(mdf, cluster, scheduler=scheduler, config=config)
    try:
        result = master.run()
    finally:
        if sampler is not None:
            sampler.detach()
        if monitor is not None:
            monitor.detach()
        # release single-flight leases a shared-store cache may still hold
        # (discarded deferred tails, failed runs) so concurrent jobs
        # waiting on them unblock promptly
        finish = getattr(config.cache, "finish_run", None)
        if finish is not None:
            finish()
    if monitor is not None:
        result.live = monitor
        if hook is not None:
            hook.record(monitor, hook_buffer, result)
    if sampler is not None:
        result.telemetry = Telemetry(cluster.obs, sampler, metrics=cluster.metrics)
    if validate is None:
        validate = auto_validate_enabled()
    if validate:
        assert_valid(result.events)
    collector = active_profile_collector()
    if collector is not None:
        collector.record(result)
    return result
