"""The master: drives MDF execution (Algorithm 1 + §5 implementation).

The master owns the schedule loop, the dataset lifecycle (reference counts
over *effective* consumers, which is what frees datasets early — R3), the
choose protocol (worker-side evaluator, master-side selection, incremental
evaluation and superfluous-branch pruning), and the binding of AMM's
future-access counter (Algorithm 2's ``acc(d)``).

Dynamic topology changes (§5) are realised by pruning: the stages of a
pruned branch are removed from the schedule, their datasets discarded, and
the matching choose's readiness updated — the schedule is rewritten at the
master exactly as in the SEEP implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..cache import (
    FingerprintError,
    choose_fingerprint,
    operator_fingerprint,
    stage_fingerprint,
)
from ..cluster.cluster import Cluster
from ..cluster.fault import ChooseScoreStore
from ..core.choose import ChooseOperator
from ..core.datasets import Dataset, Partition
from ..core.errors import FaultError, SchedulingError
from ..core.explore import Branch, ExploreOperator
from ..core.mdf import MDF, Scope
from ..core.operators import Join, Operator, Sink, Source
from ..core.optimizations import make_pruner, plan_optimizations
from ..core.stages import Stage, StageGraph
from ..prof.spans import registry_categories
from .executor import StageExecutor, StageTimes
from .job import ChooseDecision, EngineConfig, JobResult, StageTrace
from .recovery import RecoveryManager
from .scheduler import BFSScheduler, Scheduler, SchedulerContext

#: ready-queue depths are small integers; the default log-scale latency
#: buckets would lump them all together
_QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _ScopeRuntime:
    """Execution-time state of one explore/choose scope."""

    def __init__(self, scope: Scope, config: EngineConfig):
        self.scope = scope
        self.choose = scope.choose
        self.plan = plan_optimizations(self.choose.evaluator, self.choose.selection)
        self.selector = self.choose.selection.incremental()
        self.pruner = (
            make_pruner(self.choose.evaluator, self.choose.selection)
            if (config.pruning and self.plan.prune_superfluous)
            else None
        )
        self.scores: Dict[str, float] = {}
        self.alive: Set[str] = set()  # evaluated, not discarded
        self.discarded: Set[str] = set()
        self.pruned: Set[str] = set()
        self.tail_dataset: Dict[str, str] = {}
        self.finalized = False
        # The monotone/convex trend pruners (Table 1) reason over scores
        # observed *in the explorable's domain order* — their soundness
        # precondition.  BAS (sorted hint) and BFS evaluate branches in
        # domain order; a pluggable policy need not.  Track whether every
        # evaluation so far extended the ordered prefix 0,1,...,i and
        # consult the trend pruner only while that holds, so any
        # scheduler stays prune-sound (it merely loses the shortcut).
        self._next_ordered_index = 0
        self._in_domain_order = True

    def note_evaluation_order(self, branch_index: int) -> bool:
        """Record one evaluation; True while evaluations form the ordered
        prefix of the domain (the trend pruners' soundness precondition)."""
        if self._in_domain_order and branch_index == self._next_ordered_index:
            self._next_ordered_index += 1
        else:
            self._in_domain_order = False
        return self._in_domain_order

    @property
    def branches(self) -> List[Branch]:
        return self.scope.branches

    def settled(self) -> bool:
        """True when every branch is evaluated or pruned."""
        return all(
            b.id in self.scores or b.id in self.pruned for b in self.branches
        )

    def unexecuted_branches(self) -> List[Branch]:
        return [
            b
            for b in self.branches
            if b.id not in self.scores and b.id not in self.pruned
        ]


class Master:
    """Schedules and executes one MDF job on a cluster."""

    def __init__(
        self,
        mdf: MDF,
        cluster: Cluster,
        scheduler: Optional[Scheduler] = None,
        config: Optional[EngineConfig] = None,
    ):
        mdf.validate()
        self.mdf = mdf
        self.cluster = cluster
        self.scheduler = scheduler or BFSScheduler()
        self.config = config or EngineConfig()
        self.executor = StageExecutor(cluster, self.config)
        self.stage_graph = StageGraph(mdf)
        self.score_store = ChooseScoreStore()
        self.result = JobResult(metrics=cluster.metrics, events=cluster.trace)

        # --- schedule state
        self._executed: Set[str] = set()
        self._pruned_stages: Set[str] = set()
        self._remaining_preds: Dict[str, int] = {}
        self._ready: deque = deque()
        self._ready_ids: Set[str] = set()
        self._stage_by_id: Dict[str, Stage] = {s.id: s for s in self.stage_graph.stages}
        self._last_executed: Optional[Stage] = None
        self._stages_since_checkpoint = 0

        # --- data state
        self._output_of: Dict[str, str] = {}  # operator name -> dataset id
        self._consumers: Dict[str, Set[str]] = {}  # dataset id -> op names
        self._producer_op: Dict[str, str] = {}  # dataset id -> producing op
        #: base dataset id -> composite dataset id that absorbed it (AMM's
        #: acc(d) must resolve a node slot's dataset to its live composite)
        self._composite_of: Dict[str, str] = {}
        #: dataset id -> lineage fingerprint of its content (result cache);
        #: absent = uncacheable.  Rebuilt per run — entries in the shared
        #: :class:`~repro.cache.ResultCache` are what survives across runs.
        self._fp_of: Dict[str, str] = {}
        #: operator name -> its fingerprint (None = unfingerprintable), so
        #: each operator's attributes/bytecode are hashed once per run
        self._op_fps: Dict[str, Optional[str]] = {}

        # --- scope state
        self._scopes: Dict[str, _ScopeRuntime] = {}
        self._branch_stage_ids: Dict[str, Set[str]] = {}
        self._tail_stage_to_branch: Dict[str, Tuple[str, Branch]] = {}
        self._context = SchedulerContext()
        self._context.registry = cluster.obs
        self._context.stage_graph = self.stage_graph
        self._context.num_workers = cluster.num_workers
        if getattr(self.scheduler, "needs_estimates", False):
            # cost-aware policies rank by the static estimator's modelled
            # per-stage seconds; computed once, before the first select
            from .estimate import estimate_mdf

            estimate = estimate_mdf(
                mdf,
                cluster.num_workers,
                cost_model=cluster.cost_model,
                task_overhead=self.config.task_overhead,
                partitions_per_worker=self.config.partitions_per_worker,
            )
            self._context.stage_costs = {
                e.stage_id: e.pessimistic_seconds for e in estimate.stages
            }
        #: set by the RecoveryManager around §5 failure handling, so stage
        #: re-executions are attributed to "recovery" rather than their
        #: normal component split (the profiler applies the same rule by
        #: pairing stage_reexecuted announcements with completions)
        self._in_recovery = False
        self._prepare_scopes()
        self._prepare_schedule()
        self._bind_policy()
        self.recovery = RecoveryManager(self)
        # hand every operator of the run to the data-plane backend up
        # front: process-pool backends make them reachable from workers
        # via fork inheritance (operators are closures, not picklables)
        self.executor.backend.prepare(
            op for stage in self.stage_graph.stages for op in stage.ops
        )

    # ------------------------------------------------------------- set-up
    def _prepare_scopes(self) -> None:
        for explore_name, scope in self.mdf.scopes.items():
            runtime = _ScopeRuntime(scope, self.config)
            self._scopes[explore_name] = runtime
            depth = self.mdf.nesting_depth(scope.explore) + 1
            self._context.scope_depth[explore_name] = depth
            for branch in scope.branches:
                ops = self.mdf.branch_operators(branch)
                stage_ids = {self.stage_graph.stage_of(op).id for op in ops}
                self._branch_stage_ids[branch.id] = stage_ids
                tail_stage = self.stage_graph.stage_of(branch.ops[-1])
                self._tail_stage_to_branch[tail_stage.id] = (explore_name, branch)
        # hints reason over the *innermost* branch of every stage
        for stage in self.stage_graph.stages:
            if stage.branch_id is None:
                continue
            explore_name, index_str = stage.branch_id.split("#", 1)
            branch = self._scopes[explore_name].scope.branches[int(index_str)]
            self._context.stage_branch[stage.id] = (
                explore_name,
                branch.index,
                branch.params,
            )

    def _prepare_schedule(self) -> None:
        for stage in self.stage_graph.stages:
            preds = self.stage_graph.pre(stage)
            self._remaining_preds[stage.id] = len(preds)
            if not preds:
                self._push_ready(stage)

    def _bind_policy(self) -> None:
        policy = self.cluster.policy
        policy.bind(self._future_accesses, self.cluster.cost_model.alpha)

    def _future_accesses(self, dataset_id: str) -> int:
        """Alg. 2's ``acc(d)``: future readers of a dataset per the MDF."""
        seen = set()
        while dataset_id in self._composite_of and dataset_id not in seen:
            seen.add(dataset_id)
            dataset_id = self._composite_of[dataset_id]
        return len(self._consumers.get(dataset_id, ()))

    # -------------------------------------------------------- ready queue
    def _push_ready(self, stage: Stage) -> None:
        if stage.id not in self._ready_ids:
            self._ready.append(stage)
            self._ready_ids.add(stage.id)

    def _pop_ready(self, stage: Stage) -> None:
        self._ready_ids.discard(stage.id)
        self._ready = deque(s for s in self._ready if s.id != stage.id)

    def _mark_done(self, stage: Stage, pruned: bool = False) -> None:
        """Record a stage as executed (or pruned) and update readiness."""
        if stage.id in self._executed or stage.id in self._pruned_stages:
            return
        if pruned:
            self._pruned_stages.add(stage.id)
        else:
            self._executed.add(stage.id)
        self._pop_ready(stage)
        for succ in sorted(self.stage_graph.post(stage), key=lambda s: s.index):
            if succ.id in self._executed or succ.id in self._pruned_stages:
                continue
            self._remaining_preds[succ.id] -= 1
            if self._remaining_preds[succ.id] == 0:
                self._push_ready(succ)

    # ------------------------------------------------------------- lifecycle
    def _effective_consumers(self, op: Operator) -> Set[str]:
        """Operators that will actually read ``op``'s output dataset.

        Explore operators forward their input zero-copy, so the real
        readers of a dataset feeding an explore are the branch heads.
        """
        out: Set[str] = set()
        for succ in self.mdf.post(op):
            if isinstance(succ, ExploreOperator):
                out |= self._effective_consumers(succ)
            else:
                out.add(succ.name)
        return out

    def _register_output(self, tail: Operator, dataset_id: str) -> None:
        self._output_of[tail.name] = dataset_id
        self._producer_op[dataset_id] = tail.name
        existing = self._consumers.get(dataset_id, set())
        self._consumers[dataset_id] = existing | self._effective_consumers(tail)
        if tail.name in self.config.pin_producers:
            self.cluster.pin_dataset(dataset_id)  # Spark cache() emulation

    def _consume(self, dataset_id: str, consumer: Operator) -> None:
        """One consumer has read the dataset; free it when none remain.

        Without ``eager_release`` the dataset is left in place (acc drops
        to 0, so AMM evicts it first, at zero spill cost); with it the
        dataset is discarded immediately.
        """
        consumers = self._consumers.get(dataset_id)
        if consumers is None:
            return
        consumers.discard(consumer.name)
        if not consumers and self.config.eager_release:
            self._release(dataset_id)

    def _release(self, dataset_id: str) -> None:
        self._consumers.pop(dataset_id, None)
        cache = self.config.cache
        if cache is not None:
            # eager invalidation: entries admitted under this dataset lose
            # their backing the moment the discard lands
            cache.invalidate_dataset(
                dataset_id, self.cluster, reason="dataset-discarded"
            )
        self.cluster.discard_dataset(dataset_id)

    # --------------------------------------------------------- result cache
    def _operator_fp(self, op: Operator) -> Optional[str]:
        """Fingerprint one operator, memoized per run (None = no identity)."""
        sentinel = object()
        fp = self._op_fps.get(op.name, sentinel)
        if fp is sentinel:
            try:
                fp = operator_fingerprint(op)
            except FingerprintError:
                fp = None
            self._op_fps[op.name] = fp
        return fp

    def _stage_fingerprint(self, stage: Stage, input_ids: List[str]) -> Optional[str]:
        """Lineage fingerprint of a stage's output, or ``None`` (uncacheable).

        Combines the stage kind, the canonical identity of every operator
        in its chain, the fingerprints of its input datasets (lineage) and
        the partitioning layout the output depends on.  Any hole — an
        operator without a canonical identity, an input produced by an
        unfingerprintable chain — makes the stage conservatively
        uncacheable, recorded as a ``cache_miss`` with reason
        ``"unfingerprintable"``.
        """
        cache = self.config.cache
        if cache is None:
            return None
        input_fps: List[str] = []
        for input_id in input_ids:
            fp = self._fp_of.get(input_id)
            if fp is None:
                self._note_uncacheable(stage)
                return None
            input_fps.append(fp)
        op_fps: List[str] = []
        for op in stage.ops:
            fp = self._operator_fp(op)
            if fp is None:
                self._note_uncacheable(stage)
                return None
            op_fps.append(fp)
        head = stage.head
        if isinstance(head, Source):
            kind = "source"
            layout = self.cluster.num_workers * self.config.partitions_per_worker
        elif isinstance(head, Join):
            kind, layout = "join", self.cluster.num_workers
        elif head.narrow:
            # narrow stages inherit their input's partitioning untouched
            kind, layout = "narrow", None
        else:
            kind, layout = "wide", self.cluster.num_workers
        return stage_fingerprint(kind, op_fps, input_fps, layout)

    def _note_uncacheable(self, stage: Stage) -> None:
        cache = self.config.cache
        cache.stats.misses += 1
        self.cluster.obs.counter("cache_misses").inc()
        self.cluster.trace.emit(
            "cache_miss", stage=stage.id, fingerprint=None, reason="unfingerprintable"
        )

    def _note_fingerprint(self, dataset_id: Optional[str], fingerprint: Optional[str]) -> None:
        """Record (or clear) the fingerprint of a just-produced dataset."""
        if dataset_id is None:
            return
        if fingerprint is None:
            self._fp_of.pop(dataset_id, None)
        else:
            self._fp_of[dataset_id] = fingerprint

    def _note_choose_fingerprint(
        self, output_id: str, kept_ids: List[str], runtime: "_ScopeRuntime"
    ) -> None:
        """Derive a choose output's fingerprint from its kept members.

        The choose itself moves no data (Definition 3.3), so its output's
        lineage is exactly the set of kept member lineages.  Any member
        without a fingerprint — or an empty selection, whose partition
        layout depends on the cluster rather than on lineage — makes the
        output uncacheable downstream.
        """
        if self.config.cache is None:
            return
        member_fps: List[str] = []
        for branch_id in kept_ids:
            fp = self._fp_of.get(runtime.tail_dataset[branch_id])
            if fp is None:
                member_fps = []
                break
            member_fps.append(fp)
        if not member_fps:
            self._fp_of.pop(output_id, None)
        else:
            self._fp_of[output_id] = choose_fingerprint(member_fps)

    # ------------------------------------------------------------ main loop
    def run(self) -> JobResult:
        """Execute the MDF to completion and return the job result."""
        try:
            return self._run()
        finally:
            self.executor.close()

    def _run(self) -> JobResult:
        stage_index = 0
        obs = self.cluster.obs
        while self._ready:
            self._maybe_fail(stage_index)
            ready = list(self._ready)
            obs.gauge("ready_queue_depth").set(len(ready))
            obs.histogram(
                "ready_queue_depth_samples", buckets=_QUEUE_DEPTH_BUCKETS
            ).observe(len(ready))
            successors = (
                sorted(
                    self.stage_graph.post(self._last_executed),
                    key=lambda s: s.index,
                )
                if self._last_executed is not None
                else []
            )
            stage = self.scheduler.select(ready, self._last_executed, successors, self._context)
            if stage.id not in self._ready_ids:  # pragma: no cover - guard
                raise SchedulingError(f"scheduler picked non-ready stage {stage.id}")
            self.cluster.trace.emit(
                "stage_scheduled",
                stage=stage.id,
                branch=stage.branch_id,
                scheduler=self.scheduler.name,
                rationale=getattr(self.scheduler, "last_rationale", None),
                ready=[s.id for s in ready],
                ready_choose=[s.id for s in ready if s.is_choose],
                successors_ready=[s.id for s in successors if s.id in self._ready_ids],
            )
            self._prefetch_siblings(stage, ready)
            # Everything the stage causes — loads, stores, evictions, the
            # deferred choose evaluation — is attributed to it through the
            # ambient label context (the trace→metrics bridge applies the
            # same rule: events after a stage_scheduled belong to it).
            with obs.label_context(stage=stage.id, branch=stage.branch_id):
                if stage.is_choose:
                    self._execute_choose_stage(stage)
                else:
                    self._execute_stage(stage)
            self._last_executed = stage
            stage_index += 1
        obs.gauge("ready_queue_depth").set(0)
        if any(
            s.id not in self._executed and s.id not in self._pruned_stages
            for s in self.stage_graph.stages
        ):
            unfinished = [
                s.id
                for s in self.stage_graph.stages
                if s.id not in self._executed and s.id not in self._pruned_stages
            ]
            raise SchedulingError(f"schedule stalled with pending stages: {unfinished}")
        self._surface_unfired_failures()
        self.result.completion_time = self.cluster.clock.now
        return self.result

    def _prefetch_siblings(self, chosen: Stage, ready: List[Stage]) -> None:
        """Offer ready sibling stages to the backend ahead of their turn.

        Branch-level real parallelism: while the chosen stage executes,
        a parallel backend can already run the pure payload transforms of
        the other ready stages (independent explore branches).  Strictly
        invisible to the simulation — no accounting, no trace events, and
        results are only consumed by the very execution path that would
        have computed them.  Disabled under failure injection (recovery
        re-executes stages, so speculative payloads could go stale).
        """
        backend = self.executor.backend
        if not backend.supports_prefetch or self.config.failures is not None:
            return
        for stage in ready:
            if stage.id == chosen.id or stage.is_choose or stage.is_explore:
                continue
            head = stage.head
            if isinstance(head, (Source, Join)):
                continue
            if backend.has_prefetched(stage.id):
                continue
            preds = list(self.mdf.pre(head))
            if len(preds) != 1:
                continue
            input_id = self._output_of.get(preds[0].name)
            if input_id is None or not self.cluster.has_dataset(input_id):
                continue
            payloads = self.cluster.peek_payloads(input_id)
            kind = "narrow" if head.narrow else "wide"
            backend.prefetch_stage(stage.id, kind, stage.ops, payloads)

    def _maybe_fail(self, stage_index: int) -> None:
        """Fire due injected failures and *pay* for them (§5).

        Transient task failures within the retry budget are handed to the
        executor, which charges each attempt plus backoff on the next
        executed stage; beyond ``max_task_retries`` the node is declared
        dead and decommissioned.  Whole-node failures go through the
        :class:`~repro.engine.recovery.RecoveryManager`, which reloads,
        recomputes or drops every lost partition and advances the clock by
        the full recovery cost.
        """
        injector = self.config.failures
        if injector is None:
            return
        for task_event in injector.due_task_failures(stage_index):
            if task_event.attempts > self.config.max_task_retries:
                self.cluster.trace.emit(
                    "task_retries_exhausted",
                    node=task_event.node_id,
                    attempts=task_event.attempts,
                    max_retries=self.config.max_task_retries,
                )
                report = self.cluster.fail_node(
                    task_event.node_id, permanent=True, reason="retries-exhausted"
                )
                self.recovery.handle_failure(report, stage_index)
            else:
                self.executor.inject_task_faults(
                    {task_event.node_id: task_event.attempts}
                )
        for report in injector.maybe_fail(self.cluster, stage_index):
            self.recovery.handle_failure(report, stage_index)

    def _surface_unfired_failures(self) -> None:
        """An injected failure scheduled past the schedule's end is a rotten
        benchmark config: trace it, or raise under ``strict_failures``."""
        injector = self.config.failures
        if injector is None:
            return
        unfired = injector.unfired()
        for kind, event in unfired:
            self.cluster.trace.emit(
                "failure_unfired",
                failure_kind=kind,
                node=event.node_id,
                stage_index=event.stage_index,
            )
        if unfired and self.config.strict_failures:
            detail = ", ".join(
                f"{kind} failure of {event.node_id!r} at stage index "
                f"{event.stage_index}"
                for kind, event in unfired
            )
            raise FaultError(f"injected failure(s) never fired: {detail}")

    # --------------------------------------------------------- stage kinds
    def _execute_stage(self, stage: Stage) -> None:
        started = self.cluster.clock.now
        head = stage.head
        if stage.is_explore:
            # Definition 3.2: explore forwards its input dataset zero-copy.
            (pred,) = self.mdf.pre(head)
            self._output_of[head.name] = self._output_of[pred.name]
            self._advance(StageTimes(overhead=self.config.task_overhead), stage, started)
            self._mark_done(stage)
            return
        if isinstance(head, Join):
            self._execute_join_stage(stage, started)
            return
        input_id = self._stage_input(stage)
        # A branch-tail stage under incremental choose defers its store:
        # the evaluator pipelines with the stage (§4.2) and losing results
        # are never materialised at all (R3).
        entry = self._tail_stage_to_branch.get(stage.id)
        defer = (
            entry is not None
            and self.config.incremental_choose
            and input_id is not None
        )
        # AMM must see the future consumers of the output *while* it is
        # being stored, or the store itself would evict the fresh
        # partitions as acc = 0 data.
        self._consumers.setdefault(
            f"d:{stage.tail.name}", set()
        ).update(self._effective_consumers(stage.tail))
        fingerprint = self._stage_fingerprint(
            stage, [input_id] if input_id is not None else []
        )
        outcome = self.executor.execute(
            stage, input_id, defer_store=defer, fingerprint=fingerprint
        )
        self.cluster.trace.emit(
            "task_dispatched", stage=stage.id, num_tasks=outcome.num_tasks
        )
        self._advance(outcome.times, stage, started)
        self.cluster.metrics.stages_executed += 1
        if input_id is not None:
            self._consume(input_id, head)
        self._mark_done(stage)
        if defer:
            self._settle_deferred_tail(stage, outcome)
            return
        self._register_output(stage.tail, outcome.output_dataset_id)
        self._note_fingerprint(outcome.output_dataset_id, outcome.fingerprint)
        self._maybe_checkpoint(outcome.output_dataset_id)
        self._finalize_sinks(stage, outcome.output_dataset_id)
        self._after_stage(stage, outcome.output_dataset_id)

    def _execute_join_stage(self, stage: Stage, started: float) -> None:
        head = stage.head
        assert isinstance(head, Join)
        if len(head.input_names) != 2:
            raise SchedulingError(
                f"join {head.name!r} was not wired through Pipe.join"
            )
        try:
            left_id, right_id = (self._output_of[n] for n in head.input_names)
        except KeyError as exc:
            raise SchedulingError(
                f"join input {exc} of stage {stage.id} not yet produced"
            ) from None
        entry = self._tail_stage_to_branch.get(stage.id)
        defer = entry is not None and self.config.incremental_choose
        self._consumers.setdefault(
            f"d:{stage.tail.name}", set()
        ).update(self._effective_consumers(stage.tail))
        fingerprint = self._stage_fingerprint(stage, [left_id, right_id])
        outcome = self.executor.execute_join(
            stage, left_id, right_id, defer_store=defer, fingerprint=fingerprint
        )
        self.cluster.trace.emit(
            "task_dispatched", stage=stage.id, num_tasks=outcome.num_tasks
        )
        self._advance(outcome.times, stage, started)
        self.cluster.metrics.stages_executed += 1
        for input_id in (left_id, right_id):
            self._consume(input_id, head)
        self._mark_done(stage)
        if defer:
            self._settle_deferred_tail(stage, outcome)
            return
        self._register_output(stage.tail, outcome.output_dataset_id)
        self._note_fingerprint(outcome.output_dataset_id, outcome.fingerprint)
        self._maybe_checkpoint(outcome.output_dataset_id)
        self._finalize_sinks(stage, outcome.output_dataset_id)
        self._after_stage(stage, outcome.output_dataset_id)

    def _stage_input(self, stage: Stage) -> Optional[str]:
        preds = self.mdf.pre(stage.head)
        if not preds:
            return None
        if len(preds) > 1:
            raise SchedulingError(
                f"non-choose operator {stage.head.name!r} has multiple inputs"
            )
        (pred,) = preds
        try:
            return self._output_of[pred.name]
        except KeyError:
            raise SchedulingError(
                f"input of stage {stage.id} ({pred.name!r}) not yet produced"
            ) from None

    def _maybe_checkpoint(self, output_dataset_id: Optional[str]) -> None:
        """Charge the periodic checkpoint write of a stage output (§5)."""
        config = self.config.checkpointing
        if config is None or output_dataset_id is None:
            return
        self._stages_since_checkpoint += 1
        if self._stages_since_checkpoint < config.interval_stages:
            return
        self._stages_since_checkpoint = 0
        if not self.cluster.has_dataset(output_dataset_id):
            return
        record = self.cluster.record(output_dataset_id)
        seconds = (
            self.cluster.cost_model.disk_write_time(record.nbytes)
            * config.overhead_fraction
        )
        self.cluster.obs.counter(
            "bytes_written_disk", dataset=output_dataset_id
        ).inc(int(record.nbytes * config.overhead_fraction))
        self.cluster.trace.emit(
            "checkpoint_written",
            dataset=output_dataset_id,
            nbytes=int(record.nbytes * config.overhead_fraction),
        )
        self.cluster.mark_checkpointed(output_dataset_id)
        self._advance(
            StageTimes(io=seconds), None, self.cluster.clock.now, activity="checkpoint"
        )

    def _finalize_sinks(self, stage: Stage, output_dataset_id: Optional[str]) -> None:
        for op in stage.ops:
            if isinstance(op, Sink) and output_dataset_id is not None:
                dataset = self.cluster.materialize(output_dataset_id)
                self.result.outputs[op.name] = op.finalize(dataset)

    def _settle_deferred_tail(self, stage: Stage, outcome) -> None:
        """Score a just-produced branch result and store it only if kept.

        The evaluator runs in-flight on the pending dataset; the master's
        selection then decides immediately: knocked-out earlier branches
        are freed *before* the new result is stored (so the store never
        spills data that is about to be discarded), and a losing new
        result is dropped without ever being materialised.
        """
        explore_name, branch = self._tail_stage_to_branch[stage.id]
        runtime = self._scopes[explore_name]
        self.cluster.obs.counter("branches_executed", branch=branch.id).inc()
        choose = runtime.choose
        started = self.cluster.clock.now
        score, times = self.executor.evaluate_pipelined(choose.evaluator, outcome.pending)
        times.overhead += self.config.master_selection_cost
        self._advance(
            times, None, started, activity="choose_evaluation", branch=branch.id
        )
        runtime.scores[branch.id] = score
        self.score_store.put(choose.name, branch.id, score)
        self.cluster.trace.emit(
            "branch_evaluated",
            choose=choose.name,
            branch=branch.id,
            score=score,
            pipelined=True,
        )
        self._context.observed_scores.setdefault(branch.explore_name, []).append(
            (branch.params, score)
        )
        decision = runtime.selector.offer(branch.id, score)
        for discarded_id in decision.discarded:
            if discarded_id != branch.id:
                self._discard_branch_dataset(runtime, discarded_id)
        if branch.id in decision.discarded:
            runtime.discarded.add(branch.id)  # never stored: nothing to free
            # the consumer entry seeded for AMM before the stage ran would
            # otherwise leak and inflate acc(d) for any later dataset
            # reusing this id
            self._consumers.pop(outcome.pending.id, None)
            self.cluster.trace.emit(
                "branch_discarded",
                choose=choose.name,
                branch=branch.id,
                dataset=None,
                materialized=False,
            )
        else:
            runtime.alive.add(branch.id)
            store_started = self.cluster.clock.now
            store_times = self.executor.commit_store(
                outcome.pending, fingerprint=outcome.fingerprint
            )
            self._advance(
                store_times,
                None,
                store_started,
                activity="store_commit",
                branch=branch.id,
            )
            runtime.tail_dataset[branch.id] = outcome.pending.id
            self._register_output(stage.tail, outcome.pending.id)
            self._note_fingerprint(outcome.pending.id, outcome.fingerprint)
            self._maybe_checkpoint(outcome.pending.id)
        ordered = runtime.note_evaluation_order(branch.index)
        can_prune = self.config.pruning and runtime.plan.prune_superfluous
        if decision.done and can_prune:
            self._prune_remaining(runtime, reason="selection-done")
        elif (
            runtime.pruner is not None
            and can_prune
            and ordered
            and runtime.pruner.observe(score)
        ):
            self._prune_remaining(runtime, reason=self._pruner_reason(runtime))
        self._maybe_finalize(runtime)
        self._update_live_branches()

    def _after_stage(self, stage: Stage, output_dataset_id: str) -> None:
        """Event hook: incremental choose evaluation at branch completion.

        Used for branch tails whose dataset already exists on the cluster —
        a nested choose's aliased output, or any tail when the deferred
        path is off — so the evaluator reads it like any consumer.
        """
        entry = self._tail_stage_to_branch.get(stage.id)
        if entry is None:
            return
        explore_name, branch = entry
        runtime = self._scopes[explore_name]
        runtime.tail_dataset[branch.id] = output_dataset_id
        self.cluster.obs.counter("branches_executed", branch=branch.id).inc()
        if self.config.incremental_choose:
            self._evaluate_branch(runtime, branch)
            self._maybe_finalize(runtime)
        self._update_live_branches()

    # -------------------------------------------------------------- choose
    def _execute_choose_stage(self, stage: Stage) -> None:
        """A choose stage became ready: every branch is executed or pruned."""
        (choose,) = stage.ops
        assert isinstance(choose, ChooseOperator)
        runtime = self._scopes[self.mdf.scope_of_choose(choose).explore.name]
        if runtime.finalized:
            self._mark_done(stage)
            return
        # Non-incremental path: evaluate all branches now, in branch order.
        for branch in runtime.branches:
            if branch.id not in runtime.scores and branch.id not in runtime.pruned:
                self._evaluate_branch(runtime, branch)
                if runtime.finalized:
                    break
        self._maybe_finalize(runtime)
        if not runtime.finalized:  # pragma: no cover - defensive
            raise SchedulingError(f"choose {choose.name!r} could not finalize")

    def _evaluate_branch(self, runtime: _ScopeRuntime, branch: Branch) -> None:
        """Worker-side evaluator + master-side incremental selection."""
        if branch.id in runtime.scores or branch.id in runtime.pruned:
            return
        dataset_id = runtime.tail_dataset.get(branch.id)
        if dataset_id is None:
            return  # branch tail not executed yet
        choose = runtime.choose
        started = self.cluster.clock.now
        score, times = self.executor.evaluate_branch(choose.evaluator, dataset_id)
        # master runs the selection function (§5): tiny but accounted
        times.overhead += self.config.master_selection_cost
        self._advance(
            times, None, started, activity="choose_evaluation", branch=branch.id
        )
        runtime.scores[branch.id] = score
        runtime.alive.add(branch.id)
        self.score_store.put(choose.name, branch.id, score)
        self.cluster.trace.emit(
            "branch_evaluated",
            choose=choose.name,
            branch=branch.id,
            score=score,
            pipelined=False,
        )
        self._context.observed_scores.setdefault(branch.explore_name, []).append(
            (branch.params, score)
        )
        decision = runtime.selector.offer(branch.id, score)
        for discarded_id in decision.discarded:
            self._discard_branch_dataset(runtime, discarded_id)
        ordered = runtime.note_evaluation_order(branch.index)
        can_prune = self.config.pruning and runtime.plan.prune_superfluous
        if decision.done and can_prune:
            self._prune_remaining(runtime, reason="selection-done")
        elif runtime.pruner is not None and can_prune and ordered:
            if runtime.pruner.observe(score):
                self._prune_remaining(runtime, reason=self._pruner_reason(runtime))
        self._update_live_branches()

    def _update_live_branches(self) -> None:
        """Maintain the live-branch gauge the timeline sampler reads.

        A branch is *live* while its evaluated result is still materialised
        on the cluster (not yet discarded by its choose's selection).
        """
        total = sum(len(rt.alive) for rt in self._scopes.values())
        self.cluster.obs.gauge("live_branches").set(total)

    def _discard_branch_dataset(self, runtime: _ScopeRuntime, branch_id: str) -> None:
        if branch_id in runtime.discarded:
            return
        runtime.discarded.add(branch_id)
        runtime.alive.discard(branch_id)
        self._update_live_branches()
        dataset_id = runtime.tail_dataset.get(branch_id)
        self.cluster.trace.emit(
            "branch_discarded",
            choose=runtime.choose.name,
            branch=branch_id,
            dataset=dataset_id,
            materialized=dataset_id is not None,
        )
        if dataset_id is not None:
            self._release(dataset_id)

    def _pruner_reason(self, runtime: _ScopeRuntime) -> str:
        """Which Table 1 evaluator property the active pruner exploited."""
        if runtime.choose.evaluator.convex:
            return "convex-trend"
        return "monotone-trend"

    def _prune_justification(self, runtime: _ScopeRuntime) -> Tuple[Dict, Dict]:
        """The Table 1 row behind a prune: recorded plan + raw properties."""
        evaluator = runtime.choose.evaluator
        selection = runtime.choose.selection
        plan = {
            "discard_incrementally": runtime.plan.discard_incrementally,
            "prune_superfluous": runtime.plan.prune_superfluous,
        }
        properties = {
            "associative": selection.associative,
            "non_exhaustive": selection.non_exhaustive,
            "monotone": evaluator.monotone,
            "convex": evaluator.convex,
        }
        return plan, properties

    def _prune_remaining(self, runtime: _ScopeRuntime, reason: str) -> None:
        """Superfluous-branch pruning: dynamic topology rewrite (§5)."""
        for branch in runtime.unexecuted_branches():
            self._prune_branch(runtime, branch, reason)
        self._maybe_finalize(runtime)

    def _prune_branch(self, runtime: _ScopeRuntime, branch: Branch, reason: str) -> None:
        runtime.pruned.add(branch.id)
        self.cluster.obs.counter("branches_pruned", branch=branch.id).inc()
        pruned_ops: Set[str] = set()
        pruned_stage_ids: List[str] = []
        for stage_id in self._branch_stage_ids[branch.id]:
            if stage_id in self._executed or stage_id in self._pruned_stages:
                continue
            stage = self._stage_by_id[stage_id]
            pruned_ops.update(op.name for op in stage.ops)
            pruned_stage_ids.append(stage_id)
            self.executor.backend.drop_prefetched(stage_id)
            self._mark_done(stage, pruned=True)
            # nested scopes inside the pruned branch will never finalize
            inner = self._tail_stage_to_branch.get(stage_id)
            if inner is not None:
                inner_scope, inner_branch = inner
                self._scopes[inner_scope].pruned.add(inner_branch.id)
        plan, properties = self._prune_justification(runtime)
        self.cluster.trace.emit(
            "branch_pruned",
            choose=runtime.choose.name,
            branch=branch.id,
            reason=reason,
            stages=sorted(pruned_stage_ids),
            plan=plan,
            properties=properties,
        )
        # datasets whose only remaining readers were pruned are freed now
        for dataset_id in list(self._consumers):
            consumers = self._consumers[dataset_id]
            if not consumers:
                continue  # terminal outputs (empty consumer sets) stay alive
            consumers -= pruned_ops
            if not consumers:
                self._release(dataset_id)
        # datasets produced by pruned operators are dead as well
        for dataset_id, producer in list(self._producer_op.items()):
            if producer in pruned_ops and self.cluster.has_dataset(dataset_id):
                self._release(dataset_id)

    def _maybe_finalize(self, runtime: _ScopeRuntime) -> None:
        if runtime.finalized or not runtime.settled():
            return
        choose = runtime.choose
        kept_ids = [b for b in runtime.selector.finalize() if b in runtime.alive]
        selection = choose.selection
        if not selection.ranked and not selection.non_exhaustive:
            # Unranked exhaustive selections (Threshold, Interval, Mode)
            # keep a plain *set*; present it in branch-domain order so the
            # choose output (and the ⊕ composite built from it) does not
            # depend on the evaluation order the scheduler picked.  Ranked
            # selections keep their score order; non-exhaustive first-k
            # keeps arrival order (which *is* its semantics, Fig. 8).
            domain_order = {b.id: b.index for b in runtime.branches}
            kept_ids.sort(key=lambda b: domain_order[b])
        # branches that were evaluated but not selected lose their datasets
        for branch in runtime.branches:
            if branch.id in runtime.scores and branch.id not in kept_ids:
                self._discard_branch_dataset(runtime, branch.id)
        output_id = self._build_choose_output(runtime, kept_ids)
        self._output_of[choose.name] = output_id
        runtime.finalized = True
        decision = ChooseDecision(
            choose_name=choose.name,
            scores=dict(runtime.scores),
            kept=list(kept_ids),
            discarded=sorted(runtime.discarded),
            pruned=sorted(runtime.pruned),
        )
        self.result.decisions[choose.name] = decision
        self.cluster.trace.emit(
            "choose_finalized",
            choose=choose.name,
            kept=list(kept_ids),
            discarded=sorted(runtime.discarded),
            pruned=sorted(runtime.pruned),
            scores=dict(runtime.scores),
        )
        stage = self.stage_graph.stage_of(choose)
        self._mark_done(stage)
        # a choose may itself be the tail of an enclosing branch: feed the
        # outer scope (nested explores, Definition 3.1); the aliased output
        # was not just produced, so the outer evaluator reads it
        self._after_stage(stage, output_id)

    def _build_choose_output(self, runtime: _ScopeRuntime, kept_ids: List[str]) -> str:
        """Concatenate the kept branch datasets (Definition 3.3's ``⊕``)."""
        choose = runtime.choose
        downstream = self._effective_consumers(choose)
        if len(kept_ids) == 1:
            # single winner: alias the dataset, no copy
            dataset_id = runtime.tail_dataset[kept_ids[0]]
            self._note_choose_fingerprint(dataset_id, kept_ids, runtime)
            consumers = self._consumers.setdefault(dataset_id, set())
            consumers.discard(choose.name)
            consumers |= downstream
            self._producer_op[dataset_id] = choose.name
            if not consumers:
                self._release(dataset_id)
            return dataset_id
        if not kept_ids:
            empty = Dataset.from_data(
                [], num_partitions=self.cluster.num_workers, producer=choose.name
            )
            empty.partitions = [
                Partition(empty.id, p.index, p.data, 1) for p in empty.partitions
            ]
            self.cluster.register_dataset(empty)
            self._register_output(choose, empty.id)
            self._note_choose_fingerprint(empty.id, kept_ids, runtime)
            return empty.id
        # multiple winners: fuse the kept datasets into one zero-copy
        # composite — the selection function runs at the master and only
        # rewires references (Definition 3.3's ⊕ costs no data movement)
        comp_id = f"d:{choose.name}"
        member_ids = [runtime.tail_dataset[b] for b in kept_ids]
        base_ids: Set[str] = set()
        for member_id in member_ids:
            record = self.cluster.record(member_id)
            base_ids.update(key[0] for key in record.partition_keys)
        self.cluster.register_composite(comp_id, member_ids, producer=choose.name)
        for base in base_ids:
            self._composite_of[base] = comp_id
        for member_id in member_ids:
            self._consumers.pop(member_id, None)
        self._register_output(choose, comp_id)
        self._note_choose_fingerprint(comp_id, kept_ids, runtime)
        return comp_id

    # ------------------------------------------------------------- timing
    def _advance(
        self,
        times: StageTimes,
        stage: Optional[Stage],
        started: float,
        activity: Optional[str] = None,
        branch: Optional[str] = None,
    ) -> None:
        """Advance the simulated clock and record the advance as a span.

        This is the ONLY place the job's clock moves, and every advance
        emits either an extended ``stage_completed`` event (stage spans)
        or a ``span`` event tagged with ``activity`` (everything else:
        choose evaluation, deferred-tail stores, checkpoints, recovery
        reloads) — which is what lets ``repro.prof`` reconstruct a span
        timeline that tiles ``[0, completion_time]`` exactly
        (``check_profile_conserved``).
        """
        self.cluster.clock.advance(times.total)
        self.result.wall_compute += times.compute
        self.result.wall_io += times.io
        self.result.wall_network += times.network
        finished = self.cluster.clock.now
        for category, seconds in registry_categories(
            times.io,
            times.compute,
            times.network,
            times.overhead,
            activity=activity,
            recovery=self._in_recovery and stage is not None,
        ).items():
            self.cluster.obs.counter(f"profile_{category}_seconds").inc(seconds)
        if stage is not None:
            self.cluster.obs.histogram(
                "stage_seconds", stage=stage.id, branch=stage.branch_id
            ).observe(times.total)
            self.result.trace.append(
                StageTrace(
                    stage_id=stage.id,
                    ops=[op.name for op in stage.ops],
                    branch_id=stage.branch_id,
                    started=started,
                    finished=finished,
                )
            )
            self.cluster.trace.emit(
                "stage_completed",
                stage=stage.id,
                ops=[op.name for op in stage.ops],
                branch=stage.branch_id,
                started=started,
                finished=finished,
                io=times.io,
                compute=times.compute,
                network=times.network,
                overhead=times.overhead,
                per_node_io=dict(times.per_node_io),
                per_node_compute=dict(times.per_node_compute),
            )
        elif activity is not None:
            self.cluster.trace.emit(
                "span",
                activity=activity,
                branch=branch,
                started=started,
                finished=finished,
                io=times.io,
                compute=times.compute,
                network=times.network,
                overhead=times.overhead,
                per_node_io=dict(times.per_node_io),
                per_node_compute=dict(times.per_node_compute),
            )
