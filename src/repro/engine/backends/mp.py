"""The multiprocessing backend: real parallel payload execution.

Work is dispatched to a ``fork``-context process pool.  Two design
constraints shape everything here:

* **Operators are rarely picklable.**  Exploration branches are built
  from lambdas and closures (a parameter grid baked into a function), so
  tasks cannot ship operator objects through a pipe.  Instead the backend
  registers every operator of the upcoming run in a module-global table
  *before* forking; the forked workers inherit the table (closures, cell
  vars and all) and tasks reference operators by token.  When a later run
  introduces operators the current workers have never seen, the pool is
  re-forked — at most once per run, amortised over every dispatch.
* **Payloads are produced after the fork**, so they must cross the
  process boundary explicitly: large contiguous numpy arrays travel via
  :mod:`multiprocessing.shared_memory` (one copy each way, no pickling of
  the bulk), everything else via pickle protocol 5.  A payload that
  cannot be pickled at all falls back to in-process execution — identical
  results, just without the parallelism (``stats.fallbacks`` counts it).

The determinism contract of :class:`~.base.ExecutionBackend` holds by
construction: the fork start method means workers share the parent's
interpreter state (including the hash seed, so ``GroupBy``'s hash
partitioning is stable across the boundary), operators are pure, and the
backend touches no accounting or trace state.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from multiprocessing import shared_memory
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...core.errors import ExecutionError
from ...core.operators import Operator
from .base import ExecutionBackend

try:  # numpy is a hard dependency of the repo, but stay import-safe
    import numpy as np
except Exception:  # pragma: no cover - numpy is always present in CI
    np = None

__all__ = ["MPBackend"]

#: arrays at or above this size travel through shared memory; below it the
#: pickle-5 path is cheaper than two extra syscalls and a segment create
SHM_MIN_BYTES = 256 * 1024

#: operator token -> operator, inherited by pool workers at fork time.
#: Written only in the parent, immediately before the pool is (re)forked.
_WORKER_OPS: Dict[int, Operator] = {}


# ---------------------------------------------------------------- transport
def _encode(obj: Any) -> Tuple:
    """Parent/worker -> wire. ``("shm", ...)`` for big arrays else pickle-5."""
    if (
        np is not None
        and isinstance(obj, np.ndarray)
        and obj.nbytes >= SHM_MIN_BYTES
    ):
        data = np.ascontiguousarray(obj)
        seg = shared_memory.SharedMemory(create=True, size=data.nbytes)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=seg.buf)
        view[...] = data
        name = seg.name
        seg.close()  # receiver copies out and unlinks
        return ("shm", name, data.dtype.str, data.shape)
    return ("pkl", pickle.dumps(obj, protocol=5))


def _decode(wire: Tuple) -> Any:
    """Wire -> object.  Shared-memory segments are consumed (unlinked)."""
    if wire[0] == "shm":
        _, name, dtype, shape = wire
        seg = shared_memory.SharedMemory(name=name)
        try:
            out = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf).copy()
        finally:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
        return out
    return pickle.loads(wire[1])


def _encode_error(exc: BaseException) -> Tuple:
    try:
        return ("exc", pickle.dumps(exc, protocol=5))
    except Exception:
        return ("exc_repr", f"{type(exc).__name__}: {exc}")


def _raise_remote(result: Tuple) -> None:
    if result[0] == "exc":
        raise pickle.loads(result[1])
    raise ExecutionError("mp-backend", result[1])


# ------------------------------------------------------------- worker tasks
def _child_chain(args: Tuple) -> Tuple:
    """Apply a narrow operator chain to one partition payload."""
    tokens, wire = args
    try:
        payload = _decode(wire)
        for token in tokens:
            payload = _WORKER_OPS[token].apply_partition(payload)
        try:
            return ("ok", _encode(payload))
        except Exception:
            return ("unpicklable",)
    except BaseException as exc:  # noqa: BLE001 - ferried to the parent
        return _encode_error(exc)


def _child_stage(args: Tuple) -> Tuple:
    """Run a whole prefetched wide stage: global head, then the rest."""
    head_token, rest_tokens, wires = args
    try:
        payloads = [_decode(w) for w in wires]
        outs = _WORKER_OPS[head_token].apply_global(payloads)
        results = []
        for payload in outs:
            for token in rest_tokens:
                payload = _WORKER_OPS[token].apply_partition(payload)
            results.append(payload)
        try:
            return ("ok", [_encode(p) for p in results])
        except Exception:
            return ("unpicklable",)
    except BaseException as exc:  # noqa: BLE001 - ferried to the parent
        return _encode_error(exc)


class _Prefetch:
    """Bookkeeping of one dispatched stage (kind, futures, replay inputs)."""

    __slots__ = ("kind", "asyncs", "ops", "payloads")

    def __init__(self, kind, asyncs, ops, payloads):
        self.kind = kind
        self.asyncs = asyncs
        self.ops = ops
        self.payloads = payloads


class MPBackend(ExecutionBackend):
    """Process-pool backend: partition- and branch-level real parallelism."""

    name = "mp"

    def __init__(self, processes: Optional[int] = None):
        super().__init__()
        self._fork_ok = "fork" in multiprocessing.get_all_start_methods()
        self.supports_prefetch = self._fork_ok
        self.processes = processes or max(2, min(8, os.cpu_count() or 2))
        self._pool = None
        self._ops: Dict[int, Operator] = {}
        self._stale = False
        self._prefetched: Dict[str, _Prefetch] = {}
        #: dropped-but-unfinished futures; reaped so their shared-memory
        #: segments are consumed instead of leaked
        self._zombies: List = []

    # ----------------------------------------------------------- lifecycle
    def prepare(self, ops: Iterable[Operator]) -> None:
        for op in ops:
            token = id(op)
            if token not in self._ops:
                self._ops[token] = op
                self._stale = True  # current workers never saw this op

    def _ensure_pool(self):
        if not self._fork_ok:
            return None
        if self._pool is not None and not self._stale:
            return self._pool
        self._shutdown_pool()
        global _WORKER_OPS
        _WORKER_OPS = dict(self._ops)
        ctx = multiprocessing.get_context("fork")
        self._pool = ctx.Pool(self.processes)
        self._stale = False
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is None:
            return
        self._drain_zombies(block=True)
        self._pool.close()
        self._pool.join()
        self._pool = None

    def close(self) -> None:
        for key in list(self._prefetched):
            self.drop_prefetched(key)
        self._shutdown_pool()
        self._drain_zombies(block=True)

    def _drain_zombies(self, block: bool = False) -> None:
        """Consume finished dropped futures (frees their shm segments)."""
        remaining = []
        for async_result in self._zombies:
            if block or async_result.ready():
                try:
                    result = async_result.get()
                    if result[0] == "ok":
                        wires = result[1]
                        for wire in wires if isinstance(wires, list) else [wires]:
                            _decode(wire)
                except Exception:  # noqa: BLE001 - dropped work, best effort
                    pass
            else:
                remaining.append(async_result)
        self._zombies = remaining

    # ------------------------------------------------------------- helpers
    def _tokens(self, ops: List[Operator]) -> List[int]:
        self.prepare(ops)
        return [id(op) for op in ops]

    def _serial_chain(self, ops: List[Operator], payload: Any) -> Any:
        for op in ops:
            payload = op.apply_partition(payload)
        return payload

    def _count_wire(self, wire: Tuple) -> Tuple:
        if wire[0] == "shm":
            self.stats.shm_transfers += 1
        else:
            self.stats.pickle_transfers += 1
        return wire

    # ---------------------------------------------------------- data plane
    def map_chain(self, ops: List[Operator], payloads: List[Any]) -> List[Any]:
        pool = self._ensure_pool()
        self._drain_zombies()
        if pool is None:
            self.stats.fallbacks += len(payloads)
            self.stats.chains_run += len(payloads)
            return [self._serial_chain(ops, p) for p in payloads]
        tokens = self._tokens(ops)
        if self._stale:
            pool = self._ensure_pool()
        try:
            wires = [self._count_wire(_encode(p)) for p in payloads]
        except Exception:  # unpicklable payload: run the whole map inline
            self.stats.fallbacks += len(payloads)
            self.stats.chains_run += len(payloads)
            return [self._serial_chain(ops, p) for p in payloads]
        asyncs = [
            pool.apply_async(_child_chain, ((tokens, wire),)) for wire in wires
        ]
        out: List[Any] = []
        for index, async_result in enumerate(asyncs):
            result = async_result.get()
            if result[0] == "ok":
                out.append(_decode(result[1]))
            elif result[0] == "unpicklable":
                # ran fine in the worker but its result cannot cross back;
                # operators are pure, so recompute inline
                self.stats.fallbacks += 1
                out.append(self._serial_chain(ops, payloads[index]))
            else:
                _raise_remote(result)
            self.stats.chains_run += 1
        return out

    # ------------------------------------------------------------ prefetch
    def prefetch_stage(
        self,
        key: str,
        kind: str,
        ops: List[Operator],
        payloads: List[Any],
    ) -> bool:
        if key in self._prefetched:
            return True
        pool = self._ensure_pool()
        self._drain_zombies()
        if pool is None:
            return False
        tokens = self._tokens(ops)
        if self._stale:
            pool = self._ensure_pool()
        try:
            wires = [self._count_wire(_encode(p)) for p in payloads]
        except Exception:  # unpicklable input: execute normally later
            return False
        if kind == "narrow":
            asyncs = [
                pool.apply_async(_child_chain, ((tokens, wire),))
                for wire in wires
            ]
        else:
            asyncs = [
                pool.apply_async(
                    _child_stage, ((tokens[0], tokens[1:], wires),)
                )
            ]
        self._prefetched[key] = _Prefetch(kind, asyncs, list(ops), list(payloads))
        self.stats.prefetches += 1
        return True

    def has_prefetched(self, key: str) -> bool:
        return key in self._prefetched

    def take_prefetched(self, key: str) -> Optional[List[Any]]:
        entry = self._prefetched.pop(key, None)
        if entry is None:
            return None
        self.stats.prefetch_hits += 1
        if entry.kind == "narrow":
            out: List[Any] = []
            for index, async_result in enumerate(entry.asyncs):
                result = async_result.get()
                if result[0] == "ok":
                    out.append(_decode(result[1]))
                elif result[0] == "unpicklable":
                    self.stats.fallbacks += 1
                    out.append(
                        self._serial_chain(entry.ops, entry.payloads[index])
                    )
                else:
                    _raise_remote(result)
                self.stats.chains_run += 1
            return out
        result = entry.asyncs[0].get()
        if result[0] == "ok":
            self.stats.chains_run += len(result[1])
            return [_decode(wire) for wire in result[1]]
        if result[0] == "unpicklable":
            self.stats.fallbacks += 1
            outs = entry.ops[0].apply_global(entry.payloads)
            return [self._serial_chain(entry.ops[1:], p) for p in outs]
        _raise_remote(result)
        return None  # pragma: no cover - _raise_remote always raises

    def drop_prefetched(self, key: str) -> None:
        entry = self._prefetched.pop(key, None)
        if entry is None:
            return
        self.stats.prefetch_drops += 1
        # don't block a prune on wasted work: park the futures and reap
        # them opportunistically so their shm segments are still consumed
        self._zombies.extend(entry.asyncs)
        self._drain_zombies()
