"""The execution-backend contract: who runs the *real* operator work.

The engine keeps two strictly separated planes:

* the **control plane** — scheduling, cost accounting, trace emission and
  the simulated clock — always runs in-process on the master, and is what
  every simulated number and trace byte is derived from;
* the **data plane** — the actual Python execution of operator functions
  over partition payloads — is pure (``nominal bytes in → nominal bytes
  out`` never depends on payload values), so *where* it runs cannot be
  observed by the cost model.

An :class:`ExecutionBackend` owns the data plane only.  The determinism
invariant every backend must uphold: for the same job, simulated
completion times, canonical traces, validator verdicts and final outputs
are byte-identical to the ``serial`` backend's.  Backends may only change
real wall-clock time.

Operator purity is the contract's precondition: ``apply_partition`` /
``apply_global`` must depend only on their arguments.  Operators that
lean on cross-process host state (module globals mutated at run time)
still execute correctly under the in-process paths, but are not eligible
for cross-process prefetch — see ``docs/parallel_execution.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ...core.operators import Operator

__all__ = ["BackendStats", "ExecutionBackend"]


@dataclass
class BackendStats:
    """Process-level counters of one backend instance (feeds BENCH/docs)."""

    #: partition chains applied (one per partition per map_chain call)
    chains_run: int = 0
    #: chains that a parallel backend had to run in-process instead
    #: (unpicklable payload, pool unavailable, ...)
    fallbacks: int = 0
    #: stages dispatched ahead of their turn (branch-level parallelism)
    prefetches: int = 0
    #: prefetched stages whose results were actually consumed
    prefetch_hits: int = 0
    #: prefetched stages dropped unused (pruned branch or cache hit)
    prefetch_drops: int = 0
    #: payloads that crossed a process boundary via shared memory
    shm_transfers: int = 0
    #: payloads that crossed a process boundary via pickle protocol 5
    pickle_transfers: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "chains_run": self.chains_run,
            "fallbacks": self.fallbacks,
            "prefetches": self.prefetches,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_drops": self.prefetch_drops,
            "shm_transfers": self.shm_transfers,
            "pickle_transfers": self.pickle_transfers,
        }


class ExecutionBackend:
    """Where partition payload work runs (the data plane).

    The executor charges every cost and emits every trace event *before*
    handing the pure payload transformation to the backend, so a backend
    cannot perturb the simulation — only the process's real wall clock.
    """

    #: registry name (set by subclasses)
    name: str = "base"
    #: whether the master should offer ready sibling stages via
    #: :meth:`prefetch_stage` (only useful when work can overlap)
    supports_prefetch: bool = False

    def __init__(self) -> None:
        self.stats = BackendStats()

    # ----------------------------------------------------------- lifecycle
    def prepare(self, ops: Iterable[Operator]) -> None:
        """Register the operators of an upcoming run.

        Called once per job before any dispatch, with every operator in
        the stage graph.  Process-pool backends use this to make operator
        objects (closures included) reachable from worker processes via
        fork inheritance; the serial backend ignores it.
        """

    def close(self) -> None:
        """Release any resources (pools, shared memory).  Idempotent."""

    # ---------------------------------------------------------- data plane
    def map_chain(self, ops: List[Operator], payloads: List[Any]) -> List[Any]:
        """Apply a narrow operator chain to each payload, preserving order.

        Equivalent to ``[chain(ops, p) for p in payloads]``; parallel
        backends may run partitions concurrently.  Exceptions raised by an
        operator propagate to the caller (as they would in-process).
        """
        raise NotImplementedError

    def run_global(self, op: Operator, payloads: List[Any]) -> List[Any]:
        """Run a wide head's global computation over all partitions.

        A single task with a hard barrier on its result — backends default
        to in-process execution (offloading a lone task buys nothing);
        kept on the interface so distributed backends can override it.
        """
        return op.apply_global(payloads)

    def run_join(self, op: Operator, left: Any, right: Any) -> Any:
        """Run a join head over the gathered operand payloads."""
        return op.apply_join(left, right)

    # ------------------------------------------------------------ prefetch
    def prefetch_stage(
        self,
        key: str,
        kind: str,
        ops: List[Operator],
        payloads: List[Any],
    ) -> bool:
        """Start computing a ready stage's payload transform ahead of turn.

        ``kind`` is ``"narrow"`` (apply the full chain per partition) or
        ``"wide"`` (``ops[0].apply_global`` then the rest of the chain per
        output partition).  Returns True when the work was dispatched; a
        backend that cannot ship the inputs returns False and the stage
        runs normally later.  Must be invisible to the simulation: no
        accounting, no trace events.
        """
        return False

    def has_prefetched(self, key: str) -> bool:
        """True when ``key`` was dispatched and not yet taken or dropped."""
        return False

    def take_prefetched(self, key: str) -> Optional[List[Any]]:
        """Collect a prefetched stage's final payloads (blocking), or None.

        For ``"narrow"`` dispatches the list has one entry per input
        partition; for ``"wide"`` one entry per global-output partition
        (the rest of the chain already applied).  Consumes the entry.
        """
        return None

    def drop_prefetched(self, key: str) -> None:
        """Discard a prefetched entry (pruned branch / cache hit)."""
