"""Pluggable execution backends (the engine's data plane).

The registry maps names accepted by ``EngineConfig.backend`` /
``run_mdf(backend=...)`` to backend classes.  Third parties can add their
own with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Dict, List, Type, Union

from .base import BackendStats, ExecutionBackend
from .mp import MPBackend
from .serial import SerialBackend

__all__ = [
    "BackendStats",
    "ExecutionBackend",
    "SerialBackend",
    "MPBackend",
    "BACKENDS",
    "register_backend",
    "available_backends",
    "make_backend",
]

BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "mp": MPBackend,
}


def register_backend(name: str, cls: Type[ExecutionBackend]) -> None:
    """Register a backend class under ``name`` (overwrites silently)."""
    BACKENDS[name] = cls


def available_backends() -> List[str]:
    return sorted(BACKENDS)


def make_backend(spec: Union[str, ExecutionBackend, None]) -> ExecutionBackend:
    """Resolve a config spec (name, instance or None) to a backend instance."""
    if spec is None:
        spec = "serial"
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = BACKENDS[spec]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {spec!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return cls()
