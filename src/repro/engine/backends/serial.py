"""The serial backend: today's in-process execution, byte-for-byte.

Every partition chain runs in the calling process, in partition order,
operator by operator — exactly the loop the executor inlined before the
backend split, so a ``serial`` run is indistinguishable (traces, outputs,
and real wall clock alike) from the pre-backend engine.
"""

from __future__ import annotations

from typing import Any, List

from ...core.operators import Operator
from .base import ExecutionBackend

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """In-process reference backend (the determinism baseline)."""

    name = "serial"
    supports_prefetch = False

    def map_chain(self, ops: List[Operator], payloads: List[Any]) -> List[Any]:
        out: List[Any] = []
        for payload in payloads:
            cur = payload
            for op in ops:
                cur = op.apply_partition(cur)
            out.append(cur)
            self.stats.chains_run += 1
        return out
