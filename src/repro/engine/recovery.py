"""Master-driven lineage recovery (§5: "failures are cheap, not free").

When a worker fails, the master classifies every partition the failure
destroyed:

(a) **reloadable** — a checkpoint copy survives on stable storage: charge a
    disk reload via the cost model and promote the partition back to its
    pre-failure residency;
(b) **recomputable** — no copy exists but the producing operator is known:
    walk the ``_producer_op``/``_output_of`` lineage back to surviving
    inputs and re-execute the producing stages, re-entering the master's
    normal bookkeeping so the re-runs advance the clock, the metrics and
    the decision trace exactly like first-class stages;
(c) **dead** — the data already lost its last consumer (``acc = 0``) or
    its dataset was discarded by a choose: drop it for free (R4).

Choose *decisions* never recompute: the :class:`ChooseScoreStore` lives at
the master and survives every worker failure, so a branch tail is re-run
only for its bytes, never for its score — the recovery path records
``score_reused=True`` on such re-executions and the §5 benchmark asserts
no extra ``choose_evaluations`` happen.

Every re-executed stage emits ``stage_reexecuted`` before any of its work,
so the trace→metrics bridge attributes the recovery loads/stores to the
re-executed stage the same way the live registry's ambient label context
does.  The total charge of one failure lands in the ``recovery_seconds``
histogram (per failed node), making the §5 exactness claim checkable:
``completion_time(failed) - completion_time(clean) == Σ recovery_seconds``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..cluster.cluster import FailureReport
from ..cluster.node import PartitionKey
from ..core.errors import FaultError
from ..core.operators import Join, Source
from ..core.stages import Stage
from .executor import StageTimes

if TYPE_CHECKING:  # pragma: no cover
    from .master import Master


class RecoveryManager:
    """Rebuilds lost partitions for one :class:`~repro.engine.master.Master`."""

    def __init__(self, master: "Master"):
        self.master = master
        self.cluster = master.cluster
        self.executor = master.executor
        #: operator name -> the stage whose tail produces its output
        self._stage_of_tail: Dict[str, Stage] = {
            s.tail.name: s for s in master.stage_graph.stages
        }
        #: choose name -> its scope runtime (choose outputs recover through
        #: the surviving ChooseScoreStore, never by re-evaluating branches)
        self._scope_of_choose = {
            rt.choose.name: rt for rt in master._scopes.values()
        }
        #: discarded inputs transiently rebuilt during one recovery; freed
        #: again once the recompute that needed them finishes
        self._transients: List[str] = []

    # ------------------------------------------------------------ entrypoint
    def handle_failure(self, report: FailureReport, stage_index: int) -> float:
        """Recover from one node failure; returns the charged seconds."""
        cluster = self.cluster
        master = self.master
        started = cluster.clock.now
        # everything the clock pays for until we return is §5 recovery:
        # the profiler's "recovery" category and the live profile counters
        # both key off this flag (re-executed stages) plus the
        # recovery_reload activity tag (checkpoint reloads)
        master._in_recovery = True
        try:
            return self._handle_failure(report, stage_index, started)
        finally:
            master._in_recovery = False

    def _handle_failure(
        self, report: FailureReport, stage_index: int, started: float
    ) -> float:
        cluster = self.cluster
        master = self.master
        dropped: Dict[Optional[str], List[PartitionKey]] = {}
        recompute: Dict[str, List[PartitionKey]] = {}
        for key in report.lost:
            live = self._resolve_live(key[0])
            if live is None:
                dropped.setdefault(None, []).append(key)
                continue
            record = cluster.record(live)
            if master._future_accesses(live) == 0 and not record.pinned:
                dropped.setdefault(live, []).append(key)
            else:
                recompute.setdefault(live, []).append(key)
        reload_keys = self._live_only(report.reload)
        relocated_keys = self._live_only(report.relocated)
        cluster.trace.emit(
            "recovery_started",
            node=report.node_id,
            stage_index=stage_index,
            permanent=report.permanent,
            reloaded=[list(k) for k in reload_keys + relocated_keys],
            recomputed=sorted(
                [list(k) for keys in recompute.values() for k in keys]
            ),
            dropped=sorted(
                [list(k) for keys in dropped.values() for k in keys]
            ),
        )
        self._drop_dead(report.node_id, dropped)
        self._reload(reload_keys, promote=True)
        self._reload(relocated_keys, promote=False)
        for live_id in sorted(recompute):
            if not cluster.has_dataset(live_id):
                continue  # released as dead data in the meantime
            if not cluster.missing_partitions(live_id):
                continue  # already rebuilt while recovering another target
            self._recompute_dataset(live_id, cause="node-failure")
        self._drop_transients()
        cache = self.master.config.cache
        if cache is not None:
            # lineage recovery restored byte-identical content under the
            # original keys, so surviving entries refresh in place; anything
            # whose backing really is gone (dead data, dropped transients)
            # is invalidated here rather than lazily at its next lookup
            cache.revalidate(cluster, reason="node-failure")
        seconds = cluster.clock.now - started
        cluster.obs.histogram("recovery_seconds", node=report.node_id).observe(
            seconds
        )
        return seconds

    # ---------------------------------------------------------- classification
    def _resolve_live(self, dataset_id: str) -> Optional[str]:
        """Follow composite absorption to the live dataset owning an id."""
        seen: Set[str] = set()
        current = dataset_id
        while not self.cluster.has_dataset(current):
            if current in seen or current not in self.master._composite_of:
                return None
            seen.add(current)
            current = self.master._composite_of[current]
        return current

    def _drop_dead(
        self,
        node_id: str,
        dropped: Dict[Optional[str], List[PartitionKey]],
    ) -> None:
        """Free already-dead data (R4): no cost, but the trace records it."""
        for live_id, keys in sorted(
            dropped.items(), key=lambda kv: (kv[0] is not None, kv[0] or "")
        ):
            if live_id is None:
                continue  # slots of long-discarded datasets: nothing to do
            record = self.cluster.record(live_id)
            for key in sorted(keys):
                pos = record.partition_keys.index(key)
                self.cluster.trace.emit(
                    "recovery",
                    dataset=live_id,
                    index=pos,
                    nbytes=record.partition_bytes[pos],
                    node=node_id,
                    action="dropped",
                )
            self.master._release(live_id)

    # --------------------------------------------------------------- reloads
    def _live_only(self, keys: List[PartitionKey]) -> List[PartitionKey]:
        """Keep only reloadable keys something will still read (R4 again:
        a checkpointed partition of dead data stays on disk, free)."""
        out: List[PartitionKey] = []
        for key in keys:
            live = self._resolve_live(key[0])
            if live is None:
                continue
            if (
                self.master._future_accesses(live) == 0
                and not self.cluster.record(live).pinned
            ):
                continue
            out.append(key)
        return out

    def _reload(self, keys: List[PartitionKey], promote: bool) -> None:
        """Charge the checkpoint reloads of class-(a) partitions."""
        if not keys:
            return
        started = self.cluster.clock.now
        seconds = 0.0
        for key in sorted(keys):
            seconds += self.cluster.recover_reload(key, promote=promote)
        if seconds:
            self.master._advance(
                StageTimes(io=seconds), None, started, activity="recovery_reload"
            )

    # ------------------------------------------------------------ recomputes
    def _recompute_dataset(self, live_id: str, cause: str) -> None:
        """Re-execute the producing stage(s) of a dataset's lost partitions."""
        master = self.master
        producer = master._producer_op.get(live_id)
        if producer is None:
            raise FaultError(
                f"no lineage for lost dataset {live_id!r}: cannot recompute"
            )
        runtime = self._scope_of_choose.get(producer)
        if runtime is not None:
            self._recompute_choose_output(live_id, runtime, cause)
            return
        stage = self._stage_of_tail.get(producer)
        if stage is None:
            raise FaultError(
                f"producer {producer!r} of lost dataset {live_id!r} has no "
                f"stage to re-execute"
            )
        self._reexecute_stage(
            stage, live_id, cause, score_reused=self._score_survives(stage)
        )

    def _score_survives(self, stage: Stage) -> bool:
        """Whether the stage is a branch tail whose choose score is banked."""
        entry = self.master._tail_stage_to_branch.get(stage.id)
        if entry is None:
            return False
        explore_name, branch = entry
        choose = self.master._scopes[explore_name].choose
        return self.master.score_store.has(choose.name, branch.id)

    def _recompute_choose_output(self, live_id: str, runtime, cause: str) -> None:
        """Rebuild a choose's output without re-running any choose logic.

        The output is an alias or composite over kept branch tails; each
        missing partition belongs to one member, whose tail stage re-runs
        for its *bytes only* — the selection already happened and its
        scores survive at the master (§5), which this path asserts.
        """
        master = self.master
        choose = runtime.choose
        members: Dict[str, List[PartitionKey]] = {}
        for key in self.cluster.missing_partitions(live_id):
            members.setdefault(key[0], []).append(key)
        for member_id in sorted(members):
            tail_name = member_id[2:] if member_id.startswith("d:") else None
            stage = self._stage_of_tail.get(tail_name) if tail_name else None
            if stage is None:
                raise FaultError(
                    f"cannot rebuild choose output {live_id!r}: no lineage "
                    f"for member {member_id!r}"
                )
            entry = master._tail_stage_to_branch.get(stage.id)
            if entry is not None:
                _, branch = entry
                if not master.score_store.has(choose.name, branch.id):
                    raise FaultError(
                        f"choose {choose.name!r} kept branch {branch.id!r} "
                        f"but its score is missing from the master's store"
                    )
            self._reexecute_stage(stage, live_id, cause, score_reused=True)

    def _reexecute_stage(
        self,
        stage: Stage,
        into_id: str,
        cause: str,
        score_reused: bool,
        transient: bool = False,
    ) -> str:
        """Re-run one stage and land its output in the existing record.

        Inputs are secured *first* (recursively recomputing or transiently
        rebuilding them), then ``stage_reexecuted`` is emitted, so by the
        time the bridge re-attributes metrics to this stage every read it
        performs is backed by real data — exactly what
        ``check_recovery_sound`` verifies.
        """
        master = self.master
        cluster = self.cluster
        head = stage.head
        input_ids: List[str] = []
        if isinstance(head, Source):
            pass
        elif isinstance(head, Join):
            for name in head.input_names:
                input_ids.append(self._ensure_available(master._output_of[name]))
        else:
            (pred,) = master.mdf.pre(head)
            input_ids.append(self._ensure_available(master._output_of[pred.name]))
        cluster.trace.emit(
            "stage_reexecuted",
            stage=stage.id,
            branch=stage.branch_id,
            dataset=into_id,
            cause=cause,
            score_reused=score_reused,
        )
        produced_id = f"d:{stage.tail.name}"
        missing: List[PartitionKey] = (
            []
            if transient
            else [
                k
                for k in cluster.missing_partitions(into_id)
                if k[0] == produced_id
            ]
        )
        with cluster.obs.label_context(stage=stage.id, branch=stage.branch_id):
            cluster.obs.counter("stages_reexecuted").inc()
            started = cluster.clock.now
            if isinstance(head, Source):
                # sources re-read the job input and re-register wholesale
                # (the partition count may have changed after a decommission);
                # drop the holed record first so no surviving slot leaks
                if cluster.has_dataset(into_id):
                    cluster.discard_dataset(into_id)
                outcome = self.executor.execute(stage, None)
                produced_id = outcome.output_dataset_id
            else:
                if isinstance(head, Join):
                    outcome = self.executor.execute_join(
                        stage, input_ids[0], input_ids[1], defer_store=True
                    )
                else:
                    outcome = self.executor.execute(
                        stage, input_ids[0], defer_store=True
                    )
                if transient:
                    store_times = self.executor.commit_store(outcome.pending)
                    self._transients.append(outcome.pending.id)
                else:
                    store_times = self._restore(outcome.pending, into_id, missing)
                outcome.times.io += store_times.io
                for node_id, io_seconds in store_times.per_node_io.items():
                    outcome.times.per_node_io[node_id] = (
                        outcome.times.per_node_io.get(node_id, 0.0) + io_seconds
                    )
            cluster.trace.emit(
                "task_dispatched", stage=stage.id, num_tasks=outcome.num_tasks
            )
            cluster.metrics.stages_executed += 1
            master._advance(outcome.times, stage, started)
            if missing:
                self._note_recovered(into_id, missing)
        return produced_id

    def _restore(self, pending, into_id: str, missing: List[PartitionKey]) -> StageTimes:
        """Write a re-executed stage's output back into its record."""
        pending_keys = {p.key for p in pending.partitions}
        uncovered = [k for k in missing if k not in pending_keys]
        if uncovered:
            if pending.id == into_id:
                # the stage repartitioned (topology changed after a
                # decommission): replace the record wholesale
                self.cluster.discard_dataset(into_id)
                return self.executor.commit_store(pending)
            raise FaultError(
                f"re-executed stage produced {sorted(pending_keys)} but "
                f"composite {into_id!r} still misses {sorted(uncovered)} "
                f"(members cannot be repartitioned in place)"
            )
        return self.executor.commit_restore(pending, into_id, keys=missing)

    def _ensure_available(self, dataset_id: str) -> str:
        """Make a re-execution input readable, recomputing it if needed."""
        live = self._resolve_live(dataset_id)
        if live is not None:
            if self.cluster.missing_partitions(live):
                self._recompute_dataset(live, cause="lost-input")
            return live
        # the input itself was discarded (e.g. consumed and released):
        # rebuild it transiently, to be freed again after the recovery
        tail_name = dataset_id[2:] if dataset_id.startswith("d:") else None
        stage = self._stage_of_tail.get(tail_name) if tail_name else None
        if stage is None:
            raise FaultError(
                f"input {dataset_id!r} of a recovery re-execution was "
                f"discarded and has no lineage to rebuild it"
            )
        return self._reexecute_stage(
            stage,
            dataset_id,
            cause="lost-input",
            score_reused=self._score_survives(stage),
            transient=True,
        )

    def _drop_transients(self) -> None:
        """Free transiently rebuilt inputs nothing will read again (R4)."""
        for dataset_id in self._transients:
            if (
                self.cluster.has_dataset(dataset_id)
                and self.master._future_accesses(dataset_id) == 0
            ):
                self.master._release(dataset_id)
        self._transients = []

    def _note_recovered(self, into_id: str, missing: List[PartitionKey]) -> None:
        """Count and trace each partition a re-execution brought back."""
        record = self.cluster.record(into_id)
        for key in sorted(missing):
            try:
                pos = record.partition_keys.index(key)
            except ValueError:
                continue  # record was replaced wholesale (repartitioned)
            node_id = record.partition_nodes[pos]
            self.cluster.obs.counter("recoveries", node=node_id).inc()
            self.cluster.obs.counter("recovery_reexecutions", node=node_id).inc()
            self.cluster.trace.emit(
                "recovery",
                dataset=into_id,
                index=pos,
                nbytes=record.partition_bytes[pos],
                node=node_id,
                action="recompute",
            )
