"""Pluggable stage-scheduling policies and the string→policy registry.

The engine's scheduling seam is :meth:`~repro.engine.scheduler.Scheduler.
select`; this module populates it with the contender policies the
workflow-scheduling literature catalogues, next to the paper's own
:class:`~repro.engine.scheduler.BranchAwareScheduler` (Algorithm 1) and
the :class:`~repro.engine.scheduler.BFSScheduler` baseline:

* :class:`ListScheduler` (``"heft"``) — HEFT-style list scheduling: ready
  stages are ranked by *upward rank* (the stage's modelled cost plus its
  longest downstream cost chain, from the static estimator), so the
  critical path drains first;
* :class:`SpeculativeScheduler` (``"speculative"``) — depth-first like
  Algorithm 1, but sibling branches are *speculative*: a not-yet-started
  sibling is dispatched only when no already-started branch has ready
  work (idle-resource speculation, as in speculative task execution);
* :class:`WorkStealingScheduler` (``"wsteal"``) — cost-aware work
  stealing: virtual per-worker lanes each take the largest ready stage
  (longest-processing-time-first), the classic steal-biggest-item
  heuristic;
* :class:`RandomScheduler` (``"random"``) — seeded uniform choice over
  the ready set, the control policy of the scheduler lab.

Every policy records its pick's rationale in ``last_rationale`` (flowing
into the ``stage_scheduled`` trace event) and must honour the lab's
differential contract: a policy changes **when** stages run, never
**what** the job computes (``repro.lab.differential``).

Register a custom policy with :func:`register_scheduler`; resolve names
through :func:`make_scheduler` (used by ``run_mdf``, the bench harness,
the lab and the CLI).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.stages import Stage
from .scheduler import BFSScheduler, BranchAwareScheduler, Scheduler, SchedulerContext


def _choose_candidates(candidates: List[Stage]) -> List[Stage]:
    """Ready choose stages among ``candidates`` (run them ASAP: a choose
    finalises its scope at metadata cost and frees losing datasets)."""
    return [s for s in candidates if s.is_choose]


class ListScheduler(Scheduler):
    """HEFT-style list scheduling over static upward ranks.

    The classic heterogeneous-earliest-finish-time heuristic degenerates,
    on a homogeneous simulated cluster with a serial master, to ordering
    the ready list by upward rank: pick the ready stage whose downstream
    cost chain is longest, so the critical path is never starved.  Ranks
    come from the static estimator's pessimistic per-stage seconds
    (``SchedulerContext.stage_costs``).
    """

    name = "heft"
    needs_estimates = True

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        chooses = _choose_candidates(ready)
        if chooses:
            self.last_rationale = "choose-first"
            return self._record(context, min(chooses, key=lambda s: s.index))
        best = max(ready, key=lambda s: (context.upward_rank(s), -s.index))
        self.last_rationale = "max-upward-rank"
        return self._record(context, best)


class SpeculativeScheduler(Scheduler):
    """Speculative branch execution: siblings start only when lanes idle.

    Depth-first on the last stage's ready successors (like Algorithm 1).
    On fallback, stages of branches that already started — or stages
    outside any explore scope — are *committed work* and run first; a
    fresh sibling branch is only *speculated* on when no committed work
    is ready.  Deeper scopes win ties (finish inner explores first), and
    within a scope siblings start in domain order.
    """

    name = "speculative"

    def __init__(self):
        self._started: set = set()  # branch ids with at least one stage run

    def _pick(self, context: SchedulerContext, stage: Stage) -> Stage:
        if stage.branch_id is not None:
            self._started.add(stage.branch_id)
        return self._record(context, stage)

    def _depth(self, context: SchedulerContext, stage: Stage) -> int:
        info = context.branch_info(stage)
        if info is None:
            return 0
        return context.scope_depth.get(info[0], 0)

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        ready_ids = {s.id for s in ready}
        candidates = [s for s in successors_of_last if s.id in ready_ids]
        fell_back = not candidates
        if fell_back:
            candidates = list(ready)
        chooses = _choose_candidates(candidates)
        if chooses:
            self.last_rationale = "choose-first"
            return self._pick(context, chooses[0])
        if not fell_back:
            self.last_rationale = "dfs-successor"
            return self._pick(context, candidates[0])
        committed = [
            s
            for s in candidates
            if s.branch_id is None or s.branch_id in self._started
        ]
        if committed:
            self.last_rationale = "continue-branch"
            pool = committed
        else:
            self.last_rationale = "speculate-sibling"
            pool = candidates
        best = max(pool, key=lambda s: (self._depth(context, s), -s.index))
        return self._pick(context, best)


class WorkStealingScheduler(Scheduler):
    """Cost-aware work stealing over virtual per-worker lanes.

    Models the cluster's workers as lanes accumulating modelled stage
    seconds.  Each ``select`` the least-loaded lane steals the *largest*
    ready stage (longest-processing-time-first) — the greedy balance
    heuristic work-stealing deques approximate — so big branch bodies
    spread across lanes before small tails pile onto one.  Lane loads are
    bookkeeping only: the master still executes one stage at a time on
    the simulated cluster.
    """

    name = "wsteal"
    needs_estimates = True

    def __init__(self):
        self._lane_load: Optional[List[float]] = None

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        if self._lane_load is None:
            self._lane_load = [0.0] * max(1, context.num_workers)
        chooses = _choose_candidates(ready)
        if chooses:
            self.last_rationale = "choose-first"
            stage = min(chooses, key=lambda s: s.index)
        else:
            stage = max(ready, key=lambda s: (context.stage_cost(s), -s.index))
            self.last_rationale = "steal-largest"
        lane = min(range(len(self._lane_load)), key=lambda i: (self._lane_load[i], i))
        self._lane_load[lane] += context.stage_cost(stage)
        return self._record(context, stage)


class RandomScheduler(Scheduler):
    """Uniform random choice over the ready set (seeded, deterministic).

    The lab's control policy: any contender worth keeping must beat it.
    A fixed seed keeps runs reproducible (golden traces pin its order).
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def select(self, ready, last_executed, successors_of_last, context) -> Stage:
        self.last_rationale = "uniform-random"
        return self._record(context, ready[int(self.rng.integers(len(ready)))])


# ------------------------------------------------------------------ registry

#: name -> factory(config) -> Scheduler.  Factories take the job's
#: :class:`~repro.engine.job.EngineConfig` (or None) so policies that read
#: engine knobs (BAS takes the scheduling hint) can; most ignore it.
SCHEDULERS: Dict[str, Callable[[Optional[object]], Scheduler]] = {}


def register_scheduler(
    name: str, factory: Callable[[Optional[object]], Scheduler]
) -> None:
    """Register a scheduler under ``name`` for string resolution.

    ``factory(config)`` must return a *fresh* policy object per call —
    schedulers are single-job (they may keep per-run state).
    """
    if name in SCHEDULERS:
        raise ValueError(f"scheduler {name!r} already registered")
    SCHEDULERS[name] = factory


def available_schedulers() -> List[str]:
    """Registered scheduler names, sorted."""
    return sorted(SCHEDULERS)


def make_scheduler(name: str, config=None) -> Scheduler:
    """Resolve a scheduler name to a fresh policy instance."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r} (registered: {available_schedulers()})"
        ) from None
    return factory(config)


register_scheduler("bfs", lambda config: BFSScheduler())
register_scheduler(
    "bas",
    lambda config: BranchAwareScheduler(
        config.hint if config is not None else None
    ),
)
register_scheduler("heft", lambda config: ListScheduler())
register_scheduler("speculative", lambda config: SpeculativeScheduler())
register_scheduler("wsteal", lambda config: WorkStealingScheduler())
register_scheduler("random", lambda config: RandomScheduler())
