"""Job results and execution configuration.

A :class:`JobResult` captures everything the benchmarks report: simulated
completion time (split into compute / IO / network walls), the cluster
metrics (hit ratios, evictions, pruning counts), choose decisions, and the
final sink outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.fault import CheckpointConfig, FailureInjector
from ..cluster.metrics import Metrics
from ..cluster.stragglers import SpeculationConfig, StragglerProfile
from ..trace import Trace
from .hints import SchedulingHint, SortedHint


@dataclass
class EngineConfig:
    """Execution knobs for one MDF job.

    ``incremental_choose`` and ``pruning`` correspond to the paper's
    *incremental* evaluation (§3.1) and superfluous-branch pruning (Table 1);
    both default on, and both are automatically restricted to what the
    choose's evaluator/selection properties permit.
    """

    incremental_choose: bool = True
    pruning: bool = True
    hint: SchedulingHint = field(default_factory=SortedHint)
    partitions_per_worker: int = 1
    #: master-side cost per selection-function invocation (§5 reports the
    #: master sustaining 2M invocations/s on low-end hardware)
    master_selection_cost: float = 5e-7
    #: serial master overhead per task (drives sublinear worker scaling)
    task_overhead: float = 0.0005
    #: run the evaluator at the master instead of the workers (ablation of
    #: the §4.2 choose split; charges a network transfer of branch results)
    evaluator_on_master: bool = False
    stragglers: Optional[StragglerProfile] = None
    speculation: SpeculationConfig = field(default_factory=SpeculationConfig)
    failures: Optional[FailureInjector] = None
    #: periodic checkpointing of stage outputs (None = rely on spills)
    checkpointing: Optional[CheckpointConfig] = None
    #: bounded retry for transiently failing tasks (§5): a task may fail
    #: and be retried this many times, each attempt charged in full, before
    #: its node is declared dead and decommissioned
    max_task_retries: int = 3
    #: base of the exponential backoff charged between task retry attempts
    #: (seconds; attempt i waits ``retry_backoff · 2^i``)
    retry_backoff: float = 0.05
    #: raise instead of tracing ``failure_unfired`` when an injected
    #: failure is scheduled past the last stage index and never fires
    strict_failures: bool = False
    #: operator names whose output datasets are pinned in memory — the
    #: Spark ``cache()`` emulation used by the Spark (cache) baseline
    pin_producers: frozenset = frozenset()
    #: free intermediates the moment their last consumer ran.  Off by
    #: default: real dataflow systems keep consumed datasets around until
    #: evicted; the MDF's structural knowledge reaches the memory manager
    #: through AMM (dead data is dropped free of charge) and through the
    #: choose's explicit discards instead.
    eager_release: bool = False
    #: lineage-fingerprint result cache (:class:`repro.cache.ResultCache`).
    #: ``None`` (the default) disables caching entirely — a disabled run is
    #: byte-identical to one without the cache subsystem.  Pass the *same*
    #: instance across ``run_mdf`` calls (with ``reset=False`` for the
    #: cluster tier, or a ``DiskCacheStore`` for cross-reset persistence)
    #: to reuse results in warm exploratory re-runs.
    cache: Optional[Any] = None
    #: execution backend for the real operator work (the data plane): a
    #: registry name (``"serial"``, ``"mp"``) or an
    #: :class:`~repro.engine.backends.ExecutionBackend` instance.  Every
    #: backend is required to leave simulated times, traces and outputs
    #: byte-identical to ``"serial"`` — only real wall-clock changes.
    #: Instances are caller-owned (closed by the caller, reusable across
    #: runs); names are instantiated and closed by the engine per run.
    backend: Any = "serial"


@dataclass
class ChooseDecision:
    """Outcome of one choose operator."""

    choose_name: str
    scores: Dict[str, float] = field(default_factory=dict)
    kept: List[str] = field(default_factory=list)
    discarded: List[str] = field(default_factory=list)
    pruned: List[str] = field(default_factory=list)


@dataclass
class StageTrace:
    """Per-stage timing entry of the executed schedule."""

    stage_id: str
    ops: List[str]
    branch_id: Optional[str]
    started: float
    finished: float


@dataclass
class JobResult:
    """Everything observable about one executed job."""

    completion_time: float = 0.0
    wall_compute: float = 0.0
    wall_io: float = 0.0
    wall_network: float = 0.0
    metrics: Metrics = field(default_factory=Metrics)
    outputs: Dict[str, Any] = field(default_factory=dict)
    decisions: Dict[str, ChooseDecision] = field(default_factory=dict)
    trace: List[StageTrace] = field(default_factory=list)
    #: full decision trace of the run (``repro.trace``); None when the
    #: cluster recorded no events (tracing disabled)
    events: Optional[Trace] = None
    #: :class:`~repro.obs.telemetry.Telemetry` bundle (labeled registry +
    #: timeline samples + exporters); None unless ``run_mdf(telemetry=...)``
    telemetry: Optional[Any] = None
    #: the :class:`~repro.live.monitor.LiveMonitor` that observed the run
    #: (final progress snapshot, alerts, stream); None unless
    #: ``run_mdf(live=...)`` attached one
    live: Optional[Any] = None

    @property
    def output(self) -> Any:
        """The single sink output (convenience for one-sink jobs)."""
        if not self.outputs:
            return None
        return next(iter(self.outputs.values()))

    @property
    def memory_hit_ratio(self) -> float:
        return self.metrics.memory_hit_ratio

    def decision_for(self, choose_name: str) -> ChooseDecision:
        return self.decisions[choose_name]

    def summary(self) -> str:
        """A human-readable report of the job's execution."""
        m = self.metrics
        lines = [
            f"completion time   : {self.completion_time:.3f} s "
            f"(compute {self.wall_compute:.3f}, io {self.wall_io:.3f}, "
            f"network {self.wall_network:.3f})",
            f"stages / tasks    : {m.stages_executed} / {m.tasks_executed}",
            f"memory hit ratio  : {m.memory_hit_ratio:.3f} "
            f"(evictions {m.evictions}, peak datasets {m.peak_datasets_stored})",
            f"branches          : {m.branches_executed} executed, "
            f"{m.branches_pruned} pruned, {m.datasets_discarded} datasets discarded",
        ]
        for name, decision in self.decisions.items():
            lines.append(
                f"choose {name!r}: kept {decision.kept} "
                f"of {len(decision.scores)} scored "
                f"(+{len(decision.pruned)} pruned)"
            )
        return "\n".join(lines)
