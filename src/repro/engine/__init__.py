"""MDF execution engine: schedulers (Alg. 1), executor, master, runner."""

from .estimate import CostEstimate, StageEstimate, estimate_mdf
from .executor import StageExecutor, StageOutcome, StageTimes
from .hints import (
    ModelBasedHint,
    PriorityHint,
    RandomHint,
    SchedulingHint,
    SortedHint,
)
from .job import ChooseDecision, EngineConfig, JobResult, StageTrace
from .master import Master
from .policies import (
    ListScheduler,
    RandomScheduler,
    SpeculativeScheduler,
    WorkStealingScheduler,
    available_schedulers,
    register_scheduler,
)
from .recovery import RecoveryManager
from .runner import make_scheduler, run_mdf
from .scheduler import (
    BFSScheduler,
    BranchAwareScheduler,
    Scheduler,
    SchedulerContext,
)
from .tasks import Task, expand_stage

__all__ = [
    "BFSScheduler",
    "BranchAwareScheduler",
    "ChooseDecision",
    "CostEstimate",
    "EngineConfig",
    "JobResult",
    "ListScheduler",
    "Master",
    "ModelBasedHint",
    "PriorityHint",
    "RandomHint",
    "RandomScheduler",
    "RecoveryManager",
    "Scheduler",
    "SchedulerContext",
    "SchedulingHint",
    "SortedHint",
    "SpeculativeScheduler",
    "StageExecutor",
    "StageOutcome",
    "StageTimes",
    "StageEstimate",
    "StageTrace",
    "Task",
    "WorkStealingScheduler",
    "available_schedulers",
    "estimate_mdf",
    "expand_stage",
    "make_scheduler",
    "register_scheduler",
    "run_mdf",
]
