"""Worker-side stage execution on the simulated cluster.

A stage is a pipelined chain of narrow operators, optionally headed by a
source (which reads the job input from distributed storage) or a wide
operator (which shuffles all partitions).  Execution

1. loads the input partitions — memory hits cost memory-read time, misses
   cost disk-read time plus promotion (which may trigger evictions),
2. runs the real operator functions partition by partition, charging the
   operator cost model against the node's compute rate, and
3. stores the output partitions, which may again evict under pressure.

Per-node times are combined into stage *wall* times (the slowest node
gates the stage), after straggler stretching and speculative mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..cluster.stragglers import apply_stragglers
from ..core.datasets import Dataset, Partition, split_payload
from ..core.errors import SchedulingError
from ..core.operators import Join, Operator, Sink, Source
from ..core.stages import Stage
from .job import EngineConfig


@dataclass
class StageTimes:
    """Wall-clock components of one executed stage (simulated seconds)."""

    io: float = 0.0
    compute: float = 0.0
    network: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.compute + self.network + self.overhead


@dataclass
class StageOutcome:
    """Result of executing one stage.

    With ``defer_store=True`` the produced dataset is returned in
    ``pending`` instead of being registered on the cluster: the master
    evaluates the branch result in-flight first and only materialises it
    if the choose keeps it (R3: losers are never stored at all).
    """

    output_dataset_id: Optional[str]
    times: StageTimes
    num_tasks: int
    pending: Optional[Dataset] = None


class StageExecutor:
    """Executes stages against a cluster under an :class:`EngineConfig`."""

    def __init__(self, cluster: Cluster, config: EngineConfig):
        self.cluster = cluster
        self.config = config
        #: node id -> pending transient task-failure attempts, consumed by
        #: the next executed stage (retry-with-backoff, §5)
        self._pending_task_faults: Dict[str, int] = {}

    def inject_task_faults(self, faults: Dict[str, int]) -> None:
        """Schedule transient task failures for the next executed stage."""
        for node_id, attempts in faults.items():
            self._pending_task_faults[node_id] = (
                self._pending_task_faults.get(node_id, 0) + attempts
            )

    # ------------------------------------------------------------- helpers
    def _wall(
        self,
        per_node_io: Dict[str, float],
        per_node_compute: Dict[str, float],
        network: float,
        num_tasks: int,
        per_node_tasks: Optional[Dict[str, int]] = None,
    ) -> StageTimes:
        """Combine per-node times into stage walls, honouring stragglers.

        Also attributes the (straggler-adjusted) per-node times, the task
        counts, and a per-task latency estimate to the labeled registry;
        the ambient label context supplies stage/branch.
        """
        profile = self.config.stragglers
        if profile is not None:
            per_node_io = apply_stragglers(
                per_node_io, profile, self.config.speculation, self.cluster.metrics
            )
            per_node_compute = apply_stragglers(
                per_node_compute, profile, self.config.speculation, self.cluster.metrics
            )
        if self._pending_task_faults:
            faults, self._pending_task_faults = self._pending_task_faults, {}
            per_node_io = dict(per_node_io)
            per_node_compute = dict(per_node_compute)
            for node_id, attempts in sorted(faults.items()):
                if attempts <= 0:
                    continue
                # each failed attempt redoes the node's full IO + compute
                # share, plus exponential backoff between attempts
                node_io = per_node_io.get(node_id, 0.0)
                node_compute = per_node_compute.get(node_id, 0.0)
                backoff = sum(
                    self.config.retry_backoff * (2 ** i) for i in range(attempts)
                )
                per_node_io[node_id] = node_io * (1 + attempts)
                per_node_compute[node_id] = node_compute * (1 + attempts) + backoff
                self.cluster.obs.counter("task_retries", node=node_id).inc(attempts)
                self.cluster.trace.emit(
                    "task_retried",
                    node=node_id,
                    attempts=attempts,
                    seconds=(node_io + node_compute) * attempts + backoff,
                )
        io = max(per_node_io.values(), default=0.0)
        compute = max(per_node_compute.values(), default=0.0)
        overhead = num_tasks * self.config.task_overhead
        obs = self.cluster.obs
        for node_id, seconds in per_node_io.items():
            obs.counter("time_io", node=node_id).inc(seconds)
        for node_id, seconds in per_node_compute.items():
            obs.counter("time_compute", node=node_id).inc(seconds)
        if network:
            obs.counter("time_network").inc(network)
        attributed = 0
        if per_node_tasks:
            for node_id, count in per_node_tasks.items():
                if count <= 0:
                    continue
                obs.counter("tasks_executed", node=node_id).inc(count)
                attributed += count
                per_task = (
                    per_node_io.get(node_id, 0.0) + per_node_compute.get(node_id, 0.0)
                ) / count
                histogram = obs.histogram("task_seconds", node=node_id)
                for _ in range(count):
                    histogram.observe(per_task)
        if num_tasks > attributed:
            obs.counter("tasks_executed").inc(num_tasks - attributed)
        return StageTimes(io=io, compute=compute, network=network, overhead=overhead)

    def _run_chain(
        self,
        ops: List[Operator],
        payload: Any,
        nbytes: int,
        node_id: str,
        per_node_compute: Dict[str, float],
    ) -> Tuple[Any, int]:
        """Apply a narrow operator chain to one partition payload."""
        cur, cur_bytes = payload, nbytes
        for op in ops:
            cost = op.compute_cost(cur_bytes)
            per_node_compute[node_id] = per_node_compute.get(node_id, 0.0) + (
                self.cluster.cost_model.compute_time(cost)
            )
            cur = op.apply_partition(cur)
            cur_bytes = op.output_bytes(cur_bytes)
        return cur, cur_bytes

    # ------------------------------------------------------------- execute
    def execute(
        self,
        stage: Stage,
        input_dataset_id: Optional[str],
        defer_store: bool = False,
    ) -> StageOutcome:
        """Run one non-choose stage; returns its output dataset and times."""
        head = stage.head
        if isinstance(head, Source):
            return self._execute_source_stage(stage)
        if input_dataset_id is None:
            raise SchedulingError(f"stage {stage.id} has no input dataset")
        if head.narrow:
            return self._execute_narrow_stage(stage, input_dataset_id, defer_store)
        return self._execute_wide_stage(stage, input_dataset_id, defer_store)

    def execute_join(
        self,
        stage: Stage,
        left_id: str,
        right_id: str,
        defer_store: bool = False,
    ) -> StageOutcome:
        """Run a stage headed by a two-input :class:`Join` operator.

        Both operands are gathered (each partition read where it lives,
        bytes crossing the network once), the join function runs over the
        concatenated payloads, and the result is re-partitioned and fed
        through the rest of the stage's narrow chain.
        """
        head, rest = stage.ops[0], stage.ops[1:]
        assert isinstance(head, Join)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        operands = []
        total_bytes = 0
        with self.cluster.protect([left_id, right_id]):
            for dataset_id in (left_id, right_id):
                record = self.cluster.record(dataset_id)
                payloads = []
                for index in range(record.num_partitions):
                    payload, seconds, node_id = self.cluster.load_partition(
                        dataset_id, index
                    )
                    per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                    per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                    payloads.append(payload)
                total_bytes += record.nbytes
                operands.append(payloads)
            share = total_bytes / max(1, self.cluster.num_workers)
            network = self.cluster.cost_model.network_time(int(share))
            per_worker_compute = self.cluster.cost_model.compute_time(
                head.compute_cost(total_bytes) / self.cluster.num_workers
            )
            for node in self.cluster.alive_nodes:
                per_node_compute[node.id] = (
                    per_node_compute.get(node.id, 0.0) + per_worker_compute
                )
            from ..core.datasets import concat_payloads

            left_payload = concat_payloads(operands[0])
            right_payload = concat_payloads(operands[1])
            joined = head.apply_join(left_payload, right_payload)
            out_payloads = split_payload(joined, self.cluster.num_workers)
            out_total = head.output_bytes(total_bytes)
            per_part_bytes = max(1, out_total // max(1, len(out_payloads)))
            out_parts: List[Partition] = []
            for index, payload in enumerate(out_payloads):
                node = self.cluster.node_for_partition(index)
                out_payload, out_bytes = self._run_chain(
                    rest, payload, per_part_bytes, node.id, per_node_compute
                )
                out_parts.append(Partition("", index, out_payload, out_bytes))
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        num_tasks = sum(len(p) for p in operands)
        if defer_store:
            times = self._wall(
                per_node_io, per_node_compute, network, num_tasks, per_node_tasks
            )
            return StageOutcome(output.id, times, num_tasks, pending=output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io, per_node_compute, network, num_tasks, per_node_tasks
        )
        return StageOutcome(output.id, times, num_tasks)

    def commit_store(self, dataset: Dataset) -> StageTimes:
        """Materialise a deferred stage output (charge the store)."""
        store_seconds = self.cluster.register_dataset(dataset)
        io = max(store_seconds.values(), default=0.0)
        for node_id, seconds in store_seconds.items():
            self.cluster.obs.counter("time_io", node=node_id).inc(seconds)
        return StageTimes(io=io)

    def commit_restore(
        self,
        dataset: Dataset,
        into: str,
        keys: Optional[List[Tuple[str, int]]] = None,
    ) -> StageTimes:
        """Store a re-executed stage's output back into an existing record.

        Recovery counterpart of :meth:`commit_store`: the dataset id is
        already registered — only the (missing) partitions in ``keys`` are
        written back into their original slots, so surviving partitions
        keep their residency and the record's identity is preserved.
        """
        store_seconds = self.cluster.restore_partitions(dataset, into=into, keys=keys)
        io = max(store_seconds.values(), default=0.0)
        for node_id, seconds in store_seconds.items():
            self.cluster.obs.counter("time_io", node=node_id).inc(seconds)
        return StageTimes(io=io)

    def _execute_source_stage(self, stage: Stage) -> StageOutcome:
        source = stage.head
        assert isinstance(source, Source)
        nparts = self.cluster.num_workers * self.config.partitions_per_worker
        raw = source.generate(nparts, producer=stage.tail.name)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        # Reading the job input from distributed storage is a disk read.
        out_parts: List[Partition] = []
        for partition in raw.partitions:
            node = self.cluster.node_for_partition(partition.index)
            self.cluster.obs.counter(
                "bytes_read_disk", node=node.id, dataset=raw.id
            ).inc(partition.nominal_bytes)
            self.cluster.trace.emit(
                "source_read",
                dataset=raw.id,
                index=partition.index,
                node=node.id,
                nbytes=partition.nominal_bytes,
            )
            per_node_io[node.id] = per_node_io.get(node.id, 0.0) + (
                self.cluster.cost_model.disk_read_time(partition.nominal_bytes)
            )
            per_node_tasks[node.id] = per_node_tasks.get(node.id, 0) + 1
            payload, nbytes = self._run_chain(
                stage.ops[1:], partition.data, partition.nominal_bytes, node.id, per_node_compute
            )
            out_parts.append(Partition(raw.id, partition.index, payload, nbytes))
        output = Dataset(out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name)
        store_seconds = self.cluster.register_dataset(output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io, per_node_compute, 0.0, len(out_parts), per_node_tasks
        )
        return StageOutcome(output.id, times, len(out_parts))

    def _execute_narrow_stage(
        self, stage: Stage, input_dataset_id: str, defer_store: bool = False
    ) -> StageOutcome:
        record = self.cluster.record(input_dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        out_parts: List[Partition] = []
        with self.cluster.protect([input_dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(
                    input_dataset_id, index
                )
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                nbytes = record.partition_bytes[index]
                out_payload, out_bytes = self._run_chain(
                    stage.ops, payload, nbytes, node_id, per_node_compute
                )
                out_parts.append(Partition("", index, out_payload, out_bytes))
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        if defer_store:
            times = self._wall(
                per_node_io, per_node_compute, 0.0, len(out_parts), per_node_tasks
            )
            return StageOutcome(output.id, times, len(out_parts), pending=output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io, per_node_compute, 0.0, len(out_parts), per_node_tasks
        )
        return StageOutcome(output.id, times, len(out_parts))

    def _execute_wide_stage(
        self, stage: Stage, input_dataset_id: str, defer_store: bool = False
    ) -> StageOutcome:
        """Wide head: gather all partitions (shuffle), then pipeline the rest."""
        record = self.cluster.record(input_dataset_id)
        head, rest = stage.ops[0], stage.ops[1:]
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        payloads: List[Any] = []
        total_bytes = 0
        with self.cluster.protect([input_dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(
                    input_dataset_id, index
                )
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                payloads.append(payload)
                total_bytes += record.partition_bytes[index]
            # all-to-all shuffle: every byte crosses the network once; each
            # node sends its share in parallel
            share = total_bytes / max(1, self.cluster.num_workers)
            network = self.cluster.cost_model.network_time(int(share))
            head_cost = head.compute_cost(total_bytes)
            # global computation is spread across the workers
            per_worker_compute = self.cluster.cost_model.compute_time(
                head_cost / self.cluster.num_workers
            )
            for node in self.cluster.alive_nodes:
                per_node_compute[node.id] = (
                    per_node_compute.get(node.id, 0.0) + per_worker_compute
                )
            out_payloads = head.apply_global(payloads)
            out_total = head.output_bytes(total_bytes)
            per_part_bytes = max(1, out_total // max(1, len(out_payloads)))
            out_parts: List[Partition] = []
            for index, payload in enumerate(out_payloads):
                node = self.cluster.node_for_partition(index)
                out_payload, out_bytes = self._run_chain(
                    rest, payload, per_part_bytes, node.id, per_node_compute
                )
                out_parts.append(Partition("", index, out_payload, out_bytes))
            output = Dataset(
                out_parts, dataset_id=f"d:{stage.tail.name}", producer=stage.tail.name
            )
            if not defer_store:
                store_seconds = self.cluster.register_dataset(output)
        if defer_store:
            times = self._wall(
                per_node_io, per_node_compute, network, len(payloads), per_node_tasks
            )
            return StageOutcome(output.id, times, len(payloads), pending=output)
        for node_id, seconds in store_seconds.items():
            per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
        times = self._wall(
            per_node_io, per_node_compute, network, len(payloads), per_node_tasks
        )
        return StageOutcome(output.id, times, len(payloads))

    # ------------------------------------------------------------ evaluate
    def evaluate_pipelined(self, evaluator, dataset: Dataset) -> Tuple[float, StageTimes]:
        """Evaluate a branch result as part of the stage that produced it.

        §4.2: "the evaluator function is executed by worker nodes and
        applied directly to the result datasets of each branch" — when the
        choose runs incrementally, the evaluator pipelines with the tail
        stage, so the freshly produced partitions are scored without being
        re-read (they may not even be stored yet).  Only the evaluator's
        compute cost is charged.
        """
        per_node_compute: Dict[str, float] = {}
        for partition in dataset.partitions:
            node = self.cluster.node_for_partition(partition.index)
            cost = evaluator.cost_factor * partition.nominal_bytes
            per_node_compute[node.id] = per_node_compute.get(node.id, 0.0) + (
                self.cluster.cost_model.compute_time(cost)
            )
        score = evaluator.score(dataset)
        self.cluster.obs.counter("choose_evaluations", dataset=dataset.id).inc()
        self.cluster.trace.emit(
            "choose_evaluation",
            evaluator=evaluator.name,
            dataset=dataset.id,
            pipelined=True,
        )
        times = self._wall({}, per_node_compute, 0.0, 0)
        self.cluster.obs.histogram(
            "choose_evaluation_seconds", dataset=dataset.id
        ).observe(times.total)
        return score, times

    def evaluate_branch(self, evaluator, dataset_id: str) -> Tuple[float, StageTimes]:
        """Run a choose evaluator over a branch result (worker side).

        Reads the branch dataset (normal hit/miss accounting) and charges
        the evaluator's compute cost on each node.  With the
        ``evaluator_on_master`` ablation, the branch result additionally
        crosses the network to the master and the evaluation runs serially
        there.
        """
        record = self.cluster.record(dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_compute: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        parts: List[Partition] = []
        with self.cluster.protect([dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(dataset_id, index)
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                nbytes = record.partition_bytes[index]
                parts.append(Partition(dataset_id, index, payload, nbytes))
                cost = evaluator.cost_factor * nbytes
                per_node_compute[node_id] = per_node_compute.get(node_id, 0.0) + (
                    self.cluster.cost_model.compute_time(cost)
                )
        dataset = Dataset(parts, dataset_id=dataset_id, producer=record.producer)
        score = evaluator.score(dataset)
        network = 0.0
        if self.config.evaluator_on_master:
            # ship the branch result to the master and evaluate serially
            network = self.cluster.cost_model.network_time(record.nbytes)
            serial = sum(per_node_compute.values())
            per_node_compute = {"master": serial}
            per_node_tasks = {"master": record.num_partitions}
        self.cluster.obs.counter("choose_evaluations", dataset=dataset_id).inc()
        self.cluster.trace.emit(
            "choose_evaluation",
            evaluator=evaluator.name,
            dataset=dataset_id,
            pipelined=False,
        )
        times = self._wall(
            per_node_io, per_node_compute, network, record.num_partitions, per_node_tasks
        )
        self.cluster.obs.histogram(
            "choose_evaluation_seconds", dataset=dataset_id
        ).observe(times.total)
        return score, times

    def finalize_sink(self, sink: Sink, dataset_id: str) -> Tuple[Any, StageTimes]:
        """Collect a dataset at the sink and run the sink function."""
        record = self.cluster.record(dataset_id)
        per_node_io: Dict[str, float] = {}
        per_node_tasks: Dict[str, int] = {}
        parts: List[Partition] = []
        with self.cluster.protect([dataset_id]):
            for index in range(record.num_partitions):
                payload, seconds, node_id = self.cluster.load_partition(dataset_id, index)
                per_node_io[node_id] = per_node_io.get(node_id, 0.0) + seconds
                per_node_tasks[node_id] = per_node_tasks.get(node_id, 0) + 1
                parts.append(Partition(dataset_id, index, payload, record.partition_bytes[index]))
        dataset = Dataset(parts, dataset_id=dataset_id, producer=record.producer)
        value = sink.finalize(dataset)
        times = self._wall(per_node_io, {}, 0.0, record.num_partitions, per_node_tasks)
        return value, times
